//! The paper's *enhanced schema* (§3.3.2).
//!
//! Wraps a [`Schema`] with per-column metadata that (a) constrains the
//! synthetic SQL generator (non-aggregatable / categorical / math-group
//! flags) and (b) supplies human-readable aliases for the SQL-to-NL
//! realizer and the schema linker.

use crate::profile::DataProfile;
use crate::{ColumnType, Schema};
use std::collections::HashMap;

/// Metadata attached to one column in the enhanced schema.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ColumnMeta {
    /// Human-readable alias, e.g. `"right ascension"` for `ra`. Empty means
    /// "use the spelled-out column name".
    pub alias: String,
    /// Must never appear under `SUM`/`AVG`/`MIN`/`MAX` (e.g. IDs — the
    /// paper's `AVG(s.specobjid)` counter-example).
    pub non_aggregatable: bool,
    /// Low-cardinality column appropriate for `GROUP BY` (the paper's
    /// `specobj.class` example; the anti-example is `specobj.ra`).
    pub categorical: bool,
    /// Unit group for arithmetic: columns sharing a group may be combined
    /// with math operators (e.g. SDSS magnitudes `u g r i z` share
    /// `"magnitude"`). `None` means no arithmetic on this column.
    pub math_group: Option<String>,
}

/// A schema enriched with per-table and per-column metadata.
#[derive(Debug, Clone, Default)]
pub struct EnhancedSchema {
    /// The underlying relational schema.
    pub schema: Schema,
    table_aliases: HashMap<String, String>,
    column_meta: HashMap<(String, String), ColumnMeta>,
}

impl EnhancedSchema {
    /// Wrap a schema with no metadata.
    pub fn new(schema: Schema) -> Self {
        EnhancedSchema {
            schema,
            table_aliases: HashMap::new(),
            column_meta: HashMap::new(),
        }
    }

    /// Infer metadata automatically from a data profile, mirroring the
    /// paper's automatic enhanced-schema creation (manual refinement can
    /// follow via the setters):
    ///
    /// - primary keys, foreign keys, and `*id`/`*_id` columns become
    ///   non-aggregatable;
    /// - low-cardinality columns become categorical;
    /// - float columns in the same table that are not keys are placed in a
    ///   per-table `"measure"` math group (refine manually for precise unit
    ///   groups).
    pub fn infer(schema: Schema, profile: &DataProfile) -> Self {
        let mut enhanced = EnhancedSchema::new(schema);
        let fk_cols: Vec<(String, String)> = enhanced
            .schema
            .foreign_keys
            .iter()
            .flat_map(|fk| {
                [
                    (
                        fk.from_table.to_ascii_lowercase(),
                        fk.from_column.to_ascii_lowercase(),
                    ),
                    (
                        fk.to_table.to_ascii_lowercase(),
                        fk.to_column.to_ascii_lowercase(),
                    ),
                ]
            })
            .collect();
        let tables: Vec<_> = enhanced.schema.tables.clone();
        for t in &tables {
            for c in &t.columns {
                let key = (t.name.to_ascii_lowercase(), c.name.to_ascii_lowercase());
                let mut meta = ColumnMeta::default();
                let lower = c.name.to_ascii_lowercase();
                let id_like = lower == "id" || lower.ends_with("id") || lower.ends_with("_id");
                meta.non_aggregatable =
                    c.primary_key || id_like || fk_cols.contains(&key) || !c.ty.is_numeric();
                if let Some(p) = profile.column(&t.name, &c.name) {
                    meta.categorical = p.looks_categorical() && !c.primary_key;
                }
                if c.ty == ColumnType::Float && !meta.non_aggregatable {
                    meta.math_group = Some(format!("{}:measure", t.name.to_ascii_lowercase()));
                }
                enhanced.column_meta.insert(key, meta);
            }
        }
        enhanced
    }

    /// Set a human-readable alias for a table.
    pub fn set_table_alias(&mut self, table: &str, alias: &str) {
        self.table_aliases
            .insert(table.to_ascii_lowercase(), alias.to_string());
    }

    /// Set (replace) the metadata for a column.
    pub fn set_column_meta(&mut self, table: &str, column: &str, meta: ColumnMeta) {
        self.column_meta.insert(
            (table.to_ascii_lowercase(), column.to_ascii_lowercase()),
            meta,
        );
    }

    /// Set just the alias of a column, preserving the other flags.
    pub fn set_column_alias(&mut self, table: &str, column: &str, alias: &str) {
        self.column_meta
            .entry((table.to_ascii_lowercase(), column.to_ascii_lowercase()))
            .or_default()
            .alias = alias.to_string();
    }

    /// Mark a column non-aggregatable (or not), preserving other flags.
    pub fn set_non_aggregatable(&mut self, table: &str, column: &str, flag: bool) {
        self.column_meta
            .entry((table.to_ascii_lowercase(), column.to_ascii_lowercase()))
            .or_default()
            .non_aggregatable = flag;
    }

    /// Mark a column categorical (or not), preserving other flags.
    pub fn set_categorical(&mut self, table: &str, column: &str, flag: bool) {
        self.column_meta
            .entry((table.to_ascii_lowercase(), column.to_ascii_lowercase()))
            .or_default()
            .categorical = flag;
    }

    /// Remove a column from any math-operator unit group.
    pub fn clear_math_group(&mut self, table: &str, column: &str) {
        self.column_meta
            .entry((table.to_ascii_lowercase(), column.to_ascii_lowercase()))
            .or_default()
            .math_group = None;
    }

    /// Put a column into a math-operator unit group, preserving other flags.
    pub fn set_math_group(&mut self, table: &str, column: &str, group: &str) {
        self.column_meta
            .entry((table.to_ascii_lowercase(), column.to_ascii_lowercase()))
            .or_default()
            .math_group = Some(group.to_string());
    }

    /// Metadata for a column, when recorded.
    pub fn column_meta(&self, table: &str, column: &str) -> Option<&ColumnMeta> {
        self.column_meta
            .get(&(table.to_ascii_lowercase(), column.to_ascii_lowercase()))
    }

    /// Human-readable name of a table: its alias when set, otherwise the
    /// table name with underscores spelled as spaces.
    pub fn readable_table(&self, table: &str) -> String {
        self.table_aliases
            .get(&table.to_ascii_lowercase())
            .cloned()
            .unwrap_or_else(|| table.replace('_', " "))
    }

    /// Human-readable name of a column: its alias when set, otherwise the
    /// column name with underscores spelled as spaces.
    pub fn readable_column(&self, table: &str, column: &str) -> String {
        match self.column_meta(table, column) {
            Some(m) if !m.alias.is_empty() => m.alias.clone(),
            _ => column.replace('_', " "),
        }
    }

    /// Whether an aggregation other than `COUNT` may be applied to this
    /// column.
    pub fn aggregatable(&self, table: &str, column: &str) -> bool {
        match self.column_meta(table, column) {
            Some(m) => !m.non_aggregatable,
            // Unknown columns default to the conservative choice.
            None => false,
        }
    }

    /// Whether the column is flagged categorical.
    pub fn categorical(&self, table: &str, column: &str) -> bool {
        self.column_meta(table, column)
            .map(|m| m.categorical)
            .unwrap_or(false)
    }

    /// Categorical column names of a table, in declaration order.
    pub fn categorical_columns(&self, table: &str) -> Vec<String> {
        match self.schema.table(table) {
            Some(t) => t
                .columns
                .iter()
                .filter(|c| self.categorical(table, &c.name))
                .map(|c| c.name.clone())
                .collect(),
            None => Vec::new(),
        }
    }

    /// Aggregatable (numeric, non-id) column names of a table.
    pub fn aggregatable_columns(&self, table: &str) -> Vec<String> {
        match self.schema.table(table) {
            Some(t) => t
                .columns
                .iter()
                .filter(|c| c.ty.is_numeric() && self.aggregatable(table, &c.name))
                .map(|c| c.name.clone())
                .collect(),
            None => Vec::new(),
        }
    }

    /// Columns of `table` sharing a math group, keyed by group name. Only
    /// groups with at least two members are returned, because a single
    /// column cannot form a binary math expression.
    pub fn math_groups(&self, table: &str) -> HashMap<String, Vec<String>> {
        let mut groups: HashMap<String, Vec<String>> = HashMap::new();
        if let Some(t) = self.schema.table(table) {
            for c in &t.columns {
                if let Some(meta) = self.column_meta(table, &c.name) {
                    if let Some(g) = &meta.math_group {
                        groups.entry(g.clone()).or_default().push(c.name.clone());
                    }
                }
            }
        }
        groups.retain(|_, v| v.len() >= 2);
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{ColumnProfile, DataProfile};
    use crate::{Column, ColumnType, ForeignKey, Schema, TableDef};

    fn sdss_like() -> (Schema, DataProfile) {
        let schema = Schema::new("sdss")
            .with_table(TableDef::new(
                "specobj",
                vec![
                    Column::pk("specobjid", ColumnType::Int),
                    Column::new("class", ColumnType::Text),
                    Column::new("z", ColumnType::Float),
                    Column::new("ra", ColumnType::Float),
                    Column::new("bestobjid", ColumnType::Int),
                ],
            ))
            .with_table(TableDef::new(
                "photoobj",
                vec![
                    Column::pk("objid", ColumnType::Int),
                    Column::new("u", ColumnType::Float),
                    Column::new("r", ColumnType::Float),
                ],
            ))
            .with_fk(ForeignKey::new("specobj", "bestobjid", "photoobj", "objid"));
        let mut profile = DataProfile::new();
        profile.insert(
            "specobj",
            "class",
            ColumnProfile {
                count: 10_000,
                distinct: 3,
                ..Default::default()
            },
        );
        profile.insert(
            "specobj",
            "ra",
            ColumnProfile {
                count: 10_000,
                distinct: 9_999,
                ..Default::default()
            },
        );
        (schema, profile)
    }

    #[test]
    fn infer_flags_ids_non_aggregatable() {
        let (schema, profile) = sdss_like();
        let e = EnhancedSchema::infer(schema, &profile);
        assert!(!e.aggregatable("specobj", "specobjid"), "pk");
        assert!(!e.aggregatable("specobj", "bestobjid"), "fk / id suffix");
        assert!(e.aggregatable("specobj", "z"), "measure column");
        assert!(!e.aggregatable("specobj", "class"), "text");
    }

    #[test]
    fn infer_flags_categorical_from_profile() {
        let (schema, profile) = sdss_like();
        let e = EnhancedSchema::infer(schema, &profile);
        assert!(e.categorical("specobj", "class"));
        assert!(!e.categorical("specobj", "ra"), "high cardinality");
        assert_eq!(e.categorical_columns("specobj"), vec!["class".to_string()]);
    }

    #[test]
    fn math_groups_need_two_members() {
        let (schema, profile) = sdss_like();
        let mut e = EnhancedSchema::infer(schema, &profile);
        // Manual refinement: u and r are magnitudes (like the paper's
        // u - r < 2.22); z alone is a redshift.
        e.set_math_group("photoobj", "u", "magnitude");
        e.set_math_group("photoobj", "r", "magnitude");
        e.set_math_group("specobj", "z", "redshift");
        let photo = e.math_groups("photoobj");
        assert_eq!(photo["magnitude"].len(), 2);
        assert!(
            !e.math_groups("specobj").contains_key("redshift"),
            "singleton groups are dropped"
        );
    }

    #[test]
    fn readable_names_fall_back_to_spelling_out() {
        let (schema, profile) = sdss_like();
        let mut e = EnhancedSchema::infer(schema, &profile);
        e.set_column_alias("specobj", "ra", "right ascension");
        e.set_column_alias("specobj", "z", "redshift");
        e.set_table_alias("specobj", "spectroscopic object");
        assert_eq!(e.readable_column("specobj", "ra"), "right ascension");
        assert_eq!(e.readable_column("specobj", "class"), "class");
        assert_eq!(e.readable_table("specobj"), "spectroscopic object");
        assert_eq!(e.readable_table("photoobj"), "photoobj");
    }

    #[test]
    fn unknown_column_is_conservatively_non_aggregatable() {
        let (schema, profile) = sdss_like();
        let e = EnhancedSchema::infer(schema, &profile);
        assert!(!e.aggregatable("specobj", "nonexistent"));
    }
}
