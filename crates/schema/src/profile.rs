//! Data profiles: per-column statistics extracted from database content.
//!
//! The enhanced-schema inference ([`crate::EnhancedSchema::infer`]) consumes
//! a [`DataProfile`] rather than the data itself, keeping this crate free of
//! a dependency on the execution engine. The engine (`sb-engine`) produces
//! profiles from its in-memory tables.

use std::collections::HashMap;

/// Statistics about one column's content.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ColumnProfile {
    /// Number of non-null values.
    pub count: usize,
    /// Number of distinct non-null values.
    pub distinct: usize,
    /// Minimum numeric value (numeric columns only).
    pub min: Option<f64>,
    /// Maximum numeric value (numeric columns only).
    pub max: Option<f64>,
    /// Up to a handful of sample values rendered as SQL literals, most
    /// frequent first. Used by value samplers and schema linkers.
    pub frequent_values: Vec<String>,
}

impl ColumnProfile {
    /// Distinct-to-count ratio in `[0, 1]`; 0 when the column is empty.
    pub fn selectivity(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.distinct as f64 / self.count as f64
        }
    }

    /// Heuristic: low-cardinality columns are categorical. The paper's
    /// example is `class` in `specobj` with a handful of values, versus
    /// `ra` with millions.
    pub fn looks_categorical(&self) -> bool {
        self.count >= 10 && (self.distinct <= 50 || self.selectivity() < 0.01)
    }
}

/// Per-column profiles for an entire database, keyed by
/// `(lower(table), lower(column))`.
#[derive(Debug, Clone, Default)]
pub struct DataProfile {
    columns: HashMap<(String, String), ColumnProfile>,
    rows: HashMap<String, usize>,
}

impl DataProfile {
    /// Create an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the profile for one column.
    pub fn insert(&mut self, table: &str, column: &str, profile: ColumnProfile) {
        self.columns.insert(
            (table.to_ascii_lowercase(), column.to_ascii_lowercase()),
            profile,
        );
    }

    /// Record a table's row count.
    pub fn set_row_count(&mut self, table: &str, rows: usize) {
        self.rows.insert(table.to_ascii_lowercase(), rows);
    }

    /// Profile for one column, if recorded.
    pub fn column(&self, table: &str, column: &str) -> Option<&ColumnProfile> {
        self.columns
            .get(&(table.to_ascii_lowercase(), column.to_ascii_lowercase()))
    }

    /// Row count for a table, if recorded.
    pub fn row_count(&self, table: &str) -> Option<usize> {
        self.rows.get(&table.to_ascii_lowercase()).copied()
    }

    /// Number of profiled columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether no columns are profiled.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorical_heuristic() {
        let class = ColumnProfile {
            count: 10_000,
            distinct: 3,
            ..Default::default()
        };
        assert!(class.looks_categorical());

        let ra = ColumnProfile {
            count: 10_000,
            distinct: 9_950,
            ..Default::default()
        };
        assert!(!ra.looks_categorical());

        let tiny = ColumnProfile {
            count: 4,
            distinct: 2,
            ..Default::default()
        };
        assert!(!tiny.looks_categorical(), "tiny tables are inconclusive");
    }

    #[test]
    fn profile_lookup_case_insensitive() {
        let mut p = DataProfile::new();
        p.insert(
            "SpecObj",
            "Class",
            ColumnProfile {
                count: 5,
                ..Default::default()
            },
        );
        assert!(p.column("specobj", "CLASS").is_some());
        p.set_row_count("SpecObj", 42);
        assert_eq!(p.row_count("specobj"), Some(42));
    }

    #[test]
    fn selectivity_bounds() {
        let p = ColumnProfile {
            count: 100,
            distinct: 100,
            ..Default::default()
        };
        assert!((p.selectivity() - 1.0).abs() < f64::EPSILON);
        assert_eq!(ColumnProfile::default().selectivity(), 0.0);
    }
}
