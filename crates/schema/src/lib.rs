//! # sb-schema — schemas and enhanced schemas
//!
//! Relational schema metadata plus the paper's *enhanced schema* (§3.3.2):
//! per-column flags that steer the synthetic SQL generator away from
//! meaningless queries —
//!
//! - **non-aggregatable** columns (IDs and codes that must never appear
//!   inside `SUM`/`AVG`/`MIN`/`MAX`),
//! - **categorical** columns (low-cardinality, good `GROUP BY` keys),
//! - **math-operator groups** (columns of a common unit that may be
//!   combined arithmetically, e.g. SDSS magnitudes `u, g, r, i, z`),
//! - **human-readable aliases** that spell out cryptic scientific names
//!   (`ra` → "right ascension", `z` → "redshift").
//!
//! The enhanced schema can be inferred automatically from a data profile
//! ([`EnhancedSchema::infer`]) and then refined manually, mirroring the
//! paper's "one-shot manual refinement" workflow.

pub mod enhanced;
pub mod profile;
pub mod stats;

pub use enhanced::{ColumnMeta, EnhancedSchema};
pub use profile::{ColumnProfile, DataProfile};
pub use stats::SchemaStats;

use std::collections::HashMap;
use std::fmt;

/// Logical column types. The dialect is deliberately small: everything the
/// three scientific databases and the Spider-like corpus need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
}

impl ColumnType {
    /// Whether values of this type are numeric.
    pub fn is_numeric(&self) -> bool {
        matches!(self, ColumnType::Int | ColumnType::Float)
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Int => "INT",
            ColumnType::Float => "FLOAT",
            ColumnType::Text => "TEXT",
            ColumnType::Bool => "BOOL",
        };
        write!(f, "{s}")
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Column name as it appears in SQL.
    pub name: String,
    /// Logical type.
    pub ty: ColumnType,
    /// Whether the column is (part of) the primary key.
    pub primary_key: bool,
}

impl Column {
    /// Construct a non-key column.
    pub fn new(name: &str, ty: ColumnType) -> Self {
        Column {
            name: name.to_string(),
            ty,
            primary_key: false,
        }
    }

    /// Construct a primary-key column.
    pub fn pk(name: &str, ty: ColumnType) -> Self {
        Column {
            name: name.to_string(),
            ty,
            primary_key: true,
        }
    }
}

/// A table definition.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDef {
    /// Table name.
    pub name: String,
    /// Column definitions in declaration order.
    pub columns: Vec<Column>,
}

impl TableDef {
    /// Construct a table from a name and columns.
    pub fn new(name: &str, columns: Vec<Column>) -> Self {
        TableDef {
            name: name.to_string(),
            columns,
        }
    }

    /// Look up a column by (case-insensitive) name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Index of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// The primary-key column, if the table declares exactly one.
    pub fn primary_key(&self) -> Option<&Column> {
        let mut keys = self.columns.iter().filter(|c| c.primary_key);
        let first = keys.next()?;
        if keys.next().is_some() {
            None
        } else {
            Some(first)
        }
    }
}

/// A foreign-key edge between two table columns.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ForeignKey {
    /// Referencing table.
    pub from_table: String,
    /// Referencing column.
    pub from_column: String,
    /// Referenced table.
    pub to_table: String,
    /// Referenced column.
    pub to_column: String,
}

impl ForeignKey {
    /// Construct a foreign key `from_table.from_column → to_table.to_column`.
    pub fn new(from_table: &str, from_column: &str, to_table: &str, to_column: &str) -> Self {
        ForeignKey {
            from_table: from_table.to_string(),
            from_column: from_column.to_string(),
            to_table: to_table.to_string(),
            to_column: to_column.to_string(),
        }
    }
}

/// A database schema: tables plus the foreign-key graph.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    /// Schema (database) name, e.g. `"sdss"`.
    pub name: String,
    /// Table definitions.
    pub tables: Vec<TableDef>,
    /// Foreign-key edges.
    pub foreign_keys: Vec<ForeignKey>,
}

impl Schema {
    /// Construct an empty schema with a name.
    pub fn new(name: &str) -> Self {
        Schema {
            name: name.to_string(),
            tables: Vec::new(),
            foreign_keys: Vec::new(),
        }
    }

    /// Add a table; builder-style.
    pub fn with_table(mut self, table: TableDef) -> Self {
        self.tables.push(table);
        self
    }

    /// Add a foreign key; builder-style.
    pub fn with_fk(mut self, fk: ForeignKey) -> Self {
        self.foreign_keys.push(fk);
        self
    }

    /// Look up a table by (case-insensitive) name.
    pub fn table(&self, name: &str) -> Option<&TableDef> {
        self.tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// Total number of columns across all tables.
    pub fn column_count(&self) -> usize {
        self.tables.iter().map(|t| t.columns.len()).sum()
    }

    /// Foreign keys that leave `table`.
    pub fn fks_from<'a>(&'a self, table: &'a str) -> impl Iterator<Item = &'a ForeignKey> + 'a {
        self.foreign_keys
            .iter()
            .filter(move |fk| fk.from_table.eq_ignore_ascii_case(table))
    }

    /// Join edges incident to `table`, in both directions. Each edge is
    /// returned as `(this_column, other_table, other_column)`.
    pub fn join_edges(&self, table: &str) -> Vec<(String, String, String)> {
        let mut out = Vec::new();
        for fk in &self.foreign_keys {
            if fk.from_table.eq_ignore_ascii_case(table) {
                out.push((
                    fk.from_column.clone(),
                    fk.to_table.clone(),
                    fk.to_column.clone(),
                ));
            }
            if fk.to_table.eq_ignore_ascii_case(table) {
                out.push((
                    fk.to_column.clone(),
                    fk.from_table.clone(),
                    fk.from_column.clone(),
                ));
            }
        }
        out
    }

    /// Validate referential integrity of the metadata itself: every foreign
    /// key must reference existing tables and columns, and table names must
    /// be unique. Returns a list of problems (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut seen = HashMap::new();
        for t in &self.tables {
            if seen.insert(t.name.to_ascii_lowercase(), ()).is_some() {
                problems.push(format!("duplicate table `{}`", t.name));
            }
            let mut cols = HashMap::new();
            for c in &t.columns {
                if cols.insert(c.name.to_ascii_lowercase(), ()).is_some() {
                    problems.push(format!("duplicate column `{}.{}`", t.name, c.name));
                }
            }
        }
        for fk in &self.foreign_keys {
            match self.table(&fk.from_table) {
                None => problems.push(format!("fk from unknown table `{}`", fk.from_table)),
                Some(t) if t.column(&fk.from_column).is_none() => problems.push(format!(
                    "fk from unknown column `{}.{}`",
                    fk.from_table, fk.from_column
                )),
                _ => {}
            }
            match self.table(&fk.to_table) {
                None => problems.push(format!("fk to unknown table `{}`", fk.to_table)),
                Some(t) if t.column(&fk.to_column).is_none() => problems.push(format!(
                    "fk to unknown column `{}.{}`",
                    fk.to_table, fk.to_column
                )),
                _ => {}
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Schema {
        Schema::new("toy")
            .with_table(TableDef::new(
                "specobj",
                vec![
                    Column::pk("specobjid", ColumnType::Int),
                    Column::new("class", ColumnType::Text),
                    Column::new("z", ColumnType::Float),
                    Column::new("bestobjid", ColumnType::Int),
                ],
            ))
            .with_table(TableDef::new(
                "photoobj",
                vec![
                    Column::pk("objid", ColumnType::Int),
                    Column::new("u", ColumnType::Float),
                    Column::new("r", ColumnType::Float),
                ],
            ))
            .with_fk(ForeignKey::new("specobj", "bestobjid", "photoobj", "objid"))
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = toy();
        assert!(s.table("SPECOBJ").is_some());
        assert!(s.table("specobj").unwrap().column("Z").is_some());
    }

    #[test]
    fn column_count_sums_tables() {
        assert_eq!(toy().column_count(), 7);
    }

    #[test]
    fn join_edges_are_bidirectional() {
        let s = toy();
        let from_spec = s.join_edges("specobj");
        assert_eq!(
            from_spec,
            vec![(
                "bestobjid".to_string(),
                "photoobj".to_string(),
                "objid".to_string()
            )]
        );
        let from_photo = s.join_edges("photoobj");
        assert_eq!(from_photo.len(), 1);
        assert_eq!(from_photo[0].1, "specobj");
    }

    #[test]
    fn validate_catches_bad_fk() {
        let s = toy().with_fk(ForeignKey::new("specobj", "nope", "photoobj", "objid"));
        let problems = s.validate();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("nope"));
    }

    #[test]
    fn validate_catches_duplicate_table() {
        let s = toy().with_table(TableDef::new("specobj", vec![]));
        assert!(!s.validate().is_empty());
    }

    #[test]
    fn primary_key_single_only() {
        let s = toy();
        assert_eq!(
            s.table("specobj").unwrap().primary_key().unwrap().name,
            "specobjid"
        );
        let multi = TableDef::new(
            "m",
            vec![
                Column::pk("a", ColumnType::Int),
                Column::pk("b", ColumnType::Int),
            ],
        );
        assert!(multi.primary_key().is_none());
    }
}
