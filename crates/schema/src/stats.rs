//! Database complexity statistics — the quantities reported in the paper's
//! Table 1 (databases, tables, columns, rows, average rows per table, size).

use crate::Schema;

/// Complexity statistics of one database, plus the scale factor that maps
/// the synthetic content back to the real deployment the paper profiled.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaStats {
    /// Database name.
    pub name: String,
    /// Number of tables.
    pub tables: usize,
    /// Total number of columns.
    pub columns: usize,
    /// Total row count of the (synthetic, scaled) content.
    pub rows: usize,
    /// Estimated on-disk byte size of the (synthetic, scaled) content.
    pub bytes: usize,
    /// Scale factor relative to the real database (e.g. `1000.0` means the
    /// real database has ~1000× the rows generated here).
    pub scale_factor: f64,
}

impl SchemaStats {
    /// Assemble statistics from a schema plus measured content numbers.
    pub fn new(schema: &Schema, rows: usize, bytes: usize, scale_factor: f64) -> Self {
        SchemaStats {
            name: schema.name.clone(),
            tables: schema.tables.len(),
            columns: schema.column_count(),
            rows,
            bytes,
            scale_factor,
        }
    }

    /// Average rows per table of the scaled content.
    pub fn avg_rows_per_table(&self) -> f64 {
        if self.tables == 0 {
            0.0
        } else {
            self.rows as f64 / self.tables as f64
        }
    }

    /// Row count extrapolated to the real deployment.
    pub fn extrapolated_rows(&self) -> f64 {
        self.rows as f64 * self.scale_factor
    }

    /// Byte size extrapolated to the real deployment.
    pub fn extrapolated_bytes(&self) -> f64 {
        self.bytes as f64 * self.scale_factor
    }
}

/// Render a row/byte count with the paper's unit conventions (K/M/GB).
pub fn humanize_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.1}B", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.0}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.0}K", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Render a byte count in GB with one decimal, as in Table 1.
pub fn humanize_gb(bytes: f64) -> String {
    format!("{:.1}", bytes / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Column, ColumnType, TableDef};

    #[test]
    fn stats_aggregate_schema_shape() {
        let s = Schema::new("sdss")
            .with_table(TableDef::new(
                "a",
                vec![
                    Column::new("x", ColumnType::Int),
                    Column::new("y", ColumnType::Int),
                ],
            ))
            .with_table(TableDef::new("b", vec![Column::new("z", ColumnType::Int)]));
        let st = SchemaStats::new(&s, 600, 12_000, 1000.0);
        assert_eq!(st.tables, 2);
        assert_eq!(st.columns, 3);
        assert!((st.avg_rows_per_table() - 300.0).abs() < 1e-9);
        assert!((st.extrapolated_rows() - 600_000.0).abs() < 1e-9);
    }

    #[test]
    fn humanize_matches_paper_conventions() {
        assert_eq!(humanize_count(86_000_000.0), "86M");
        assert_eq!(humanize_count(35_355.0), "35K");
        assert_eq!(humanize_count(671_000.0), "671K");
        assert_eq!(humanize_count(12.0), "12");
        assert_eq!(humanize_gb(6.1e9), "6.1");
    }

    #[test]
    fn empty_schema_avg_is_zero() {
        let s = Schema::new("empty");
        let st = SchemaStats::new(&s, 0, 0, 1.0);
        assert_eq!(st.avg_rows_per_table(), 0.0);
    }
}
