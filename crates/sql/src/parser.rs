//! Recursive-descent parser with precedence climbing for expressions.

use crate::ast::*;
use crate::error::{ParseError, Result};
use crate::lexer::Lexer;
use crate::token::{Keyword, Token};

/// Parse a single SQL query (an optional trailing `;` is accepted).
pub fn parse(src: &str) -> Result<Query> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser::new(tokens);
    let q = p.parse_query()?;
    p.eat(&Token::Semicolon);
    p.expect_eof()?;
    Ok(q)
}

/// The parser state: a token stream with one-token lookahead helpers.
pub struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    /// Create a parser over a pre-lexed token stream (must end in `Eof`).
    pub fn new(tokens: Vec<(Token, usize)>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].0
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].0
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].1
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].0.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    /// Consume `t` if it is next; report whether it was consumed.
    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: Keyword) -> bool {
        self.eat(&Token::Keyword(k))
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{t}`, found `{}`", self.peek())))
        }
    }

    fn expect_kw(&mut self, k: Keyword) -> Result<()> {
        self.expect(&Token::Keyword(k))
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), Token::Eof) {
            Ok(())
        } else {
            Err(self.err(format!("trailing input starting at `{}`", self.peek())))
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError::new(message, self.offset())
    }

    /// Parse a query: set-expression body, then `ORDER BY` / `LIMIT`.
    pub fn parse_query(&mut self) -> Result<Query> {
        let body = self.parse_set_expr()?;
        let mut order_by = Vec::new();
        if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw(Keyword::Desc) {
                    true
                } else {
                    self.eat_kw(Keyword::Asc);
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw(Keyword::Limit) {
            match self.bump() {
                Token::Int(n) if n >= 0 => Some(n as u64),
                other => return Err(self.err(format!("expected limit count, found `{other}`"))),
            }
        } else {
            None
        };
        Ok(Query {
            body,
            order_by,
            limit,
        })
    }

    fn parse_set_expr(&mut self) -> Result<SetExpr> {
        let mut left = self.parse_set_operand()?;
        loop {
            let op = match self.peek() {
                Token::Keyword(Keyword::Union) => SetOp::Union,
                Token::Keyword(Keyword::Intersect) => SetOp::Intersect,
                Token::Keyword(Keyword::Except) => SetOp::Except,
                _ => break,
            };
            self.bump();
            let all = self.eat_kw(Keyword::All);
            let right = self.parse_set_operand()?;
            left = SetExpr::SetOp {
                op,
                all,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_set_operand(&mut self) -> Result<SetExpr> {
        if self.eat(&Token::LParen) {
            // Parenthesized query used as a set operand.
            let q = self.parse_query()?;
            self.expect(&Token::RParen)?;
            // Flatten a bare parenthesized select so that printing does not
            // need to reproduce the parentheses.
            if q.order_by.is_empty() && q.limit.is_none() {
                return Ok(q.body);
            }
            return Err(self.err(
                "ORDER BY / LIMIT inside a parenthesized set operand is not supported".into(),
            ));
        }
        Ok(SetExpr::Select(Box::new(self.parse_select()?)))
    }

    fn parse_select(&mut self) -> Result<Select> {
        self.expect_kw(Keyword::Select)?;
        let distinct = self.eat_kw(Keyword::Distinct);
        let mut projections = vec![self.parse_select_item()?];
        while self.eat(&Token::Comma) {
            projections.push(self.parse_select_item()?);
        }
        self.expect_kw(Keyword::From)?;
        let from = self.parse_table_ref()?;
        let mut joins = Vec::new();
        loop {
            let left = match self.peek() {
                Token::Keyword(Keyword::Join) => {
                    self.bump();
                    false
                }
                Token::Keyword(Keyword::Inner) => {
                    self.bump();
                    self.expect_kw(Keyword::Join)?;
                    false
                }
                Token::Keyword(Keyword::Left) => {
                    self.bump();
                    self.expect_kw(Keyword::Join)?;
                    true
                }
                _ => break,
            };
            let table = self.parse_table_ref()?;
            let constraint = if self.eat_kw(Keyword::On) {
                Some(self.parse_expr()?)
            } else {
                None
            };
            joins.push(Join {
                table,
                constraint,
                left,
            });
        }
        let selection = if self.eat_kw(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            group_by.push(self.parse_expr()?);
            while self.eat(&Token::Comma) {
                group_by.push(self.parse_expr()?);
            }
        }
        let having = if self.eat_kw(Keyword::Having) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            projections,
            from,
            joins,
            selection,
            group_by,
            having,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_kw(Keyword::As) {
            match self.bump() {
                Token::Ident(name) => Some(name),
                other => return Err(self.err(format!("expected alias, found `{other}`"))),
            }
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let factor = if self.peek() == &Token::LParen {
            self.bump();
            let q = self.parse_query()?;
            self.expect(&Token::RParen)?;
            TableFactor::Derived(Box::new(q))
        } else {
            match self.bump() {
                Token::Ident(name) => TableFactor::Table(name),
                other => return Err(self.err(format!("expected table name, found `{other}`"))),
            }
        };
        let alias = if self.eat_kw(Keyword::As) {
            match self.bump() {
                Token::Ident(name) => Some(name),
                other => return Err(self.err(format!("expected table alias, found `{other}`"))),
            }
        } else if let Token::Ident(_) = self.peek() {
            // Implicit alias: `FROM specobj s`.
            match self.bump() {
                Token::Ident(name) => Some(name),
                _ => unreachable!(),
            }
        } else {
            None
        };
        Ok(TableRef { factor, alias })
    }

    /// Parse an expression with the lowest precedence (i.e. including
    /// `OR`).
    pub fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_binary(0)
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            // Postfix predicates bind tighter than AND/OR but looser than
            // comparisons; handle them at precedence 3.
            if min_prec <= 3 {
                if let Some(e) = self.try_parse_postfix(&left)? {
                    left = e;
                    continue;
                }
            }
            let op = match self.peek() {
                Token::Keyword(Keyword::Or) => BinaryOp::Or,
                Token::Keyword(Keyword::And) => BinaryOp::And,
                Token::Eq => BinaryOp::Eq,
                Token::NotEq => BinaryOp::NotEq,
                Token::Lt => BinaryOp::Lt,
                Token::LtEq => BinaryOp::LtEq,
                Token::Gt => BinaryOp::Gt,
                Token::GtEq => BinaryOp::GtEq,
                Token::Plus => BinaryOp::Add,
                Token::Minus => BinaryOp::Sub,
                Token::Star => BinaryOp::Mul,
                Token::Slash => BinaryOp::Div,
                _ => break,
            };
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.bump();
            // All supported operators are left-associative.
            let right = self.parse_binary(prec + 1)?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    /// Try to parse a postfix predicate (`BETWEEN`, `IN`, `LIKE`,
    /// `IS [NOT] NULL`) attached to `left`. Returns `Ok(None)` when the next
    /// token does not start one.
    fn try_parse_postfix(&mut self, left: &Expr) -> Result<Option<Expr>> {
        let negated = match (self.peek(), self.peek2()) {
            (
                Token::Keyword(Keyword::Not),
                Token::Keyword(Keyword::Between | Keyword::In | Keyword::Like),
            ) => {
                self.bump();
                true
            }
            _ => false,
        };
        match self.peek() {
            Token::Keyword(Keyword::Between) => {
                self.bump();
                // Bounds bind at additive precedence so `BETWEEN a AND b`
                // does not swallow the `AND`.
                let low = self.parse_binary(5)?;
                self.expect_kw(Keyword::And)?;
                let high = self.parse_binary(5)?;
                Ok(Some(Expr::Between {
                    expr: Box::new(left.clone()),
                    negated,
                    low: Box::new(low),
                    high: Box::new(high),
                }))
            }
            Token::Keyword(Keyword::In) => {
                self.bump();
                self.expect(&Token::LParen)?;
                if self.peek() == &Token::Keyword(Keyword::Select) {
                    let q = self.parse_query()?;
                    self.expect(&Token::RParen)?;
                    Ok(Some(Expr::InSubquery {
                        expr: Box::new(left.clone()),
                        negated,
                        subquery: Box::new(q),
                    }))
                } else {
                    let mut list = vec![self.parse_expr()?];
                    while self.eat(&Token::Comma) {
                        list.push(self.parse_expr()?);
                    }
                    self.expect(&Token::RParen)?;
                    Ok(Some(Expr::InList {
                        expr: Box::new(left.clone()),
                        negated,
                        list,
                    }))
                }
            }
            Token::Keyword(Keyword::Like) => {
                self.bump();
                let pattern = self.parse_unary()?;
                Ok(Some(Expr::Like {
                    expr: Box::new(left.clone()),
                    negated,
                    pattern: Box::new(pattern),
                }))
            }
            Token::Keyword(Keyword::Is) => {
                self.bump();
                let negated = self.eat_kw(Keyword::Not);
                self.expect_kw(Keyword::Null)?;
                Ok(Some(Expr::IsNull {
                    expr: Box::new(left.clone()),
                    negated,
                }))
            }
            _ => {
                if negated {
                    Err(self.err("expected BETWEEN, IN or LIKE after NOT".into()))
                } else {
                    Ok(None)
                }
            }
        }
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        match self.peek() {
            Token::Minus => {
                self.bump();
                let inner = self.parse_unary()?;
                // Fold negation into numeric literals for cleaner ASTs.
                Ok(match inner {
                    Expr::Literal(Literal::Int(v)) => Expr::Literal(Literal::Int(-v)),
                    Expr::Literal(Literal::Float(v)) => Expr::Literal(Literal::Float(-v)),
                    other => Expr::Unary {
                        op: UnaryOp::Neg,
                        expr: Box::new(other),
                    },
                })
            }
            Token::Plus => {
                self.bump();
                self.parse_unary()
            }
            Token::Keyword(Keyword::Not) => {
                if self.peek2() == &Token::Keyword(Keyword::Exists) {
                    self.bump();
                    self.bump();
                    self.expect(&Token::LParen)?;
                    let q = self.parse_query()?;
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Exists {
                        negated: true,
                        subquery: Box::new(q),
                    });
                }
                self.bump();
                // NOT binds looser than comparisons: parse at precedence 3.
                let inner = self.parse_binary(3)?;
                Ok(Expr::Unary {
                    op: UnaryOp::Not,
                    expr: Box::new(inner),
                })
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.bump() {
            Token::Int(v) => Ok(Expr::Literal(Literal::Int(v))),
            Token::Float(v) => Ok(Expr::Literal(Literal::Float(v))),
            Token::Str(s) => Ok(Expr::Literal(Literal::Str(s))),
            Token::Keyword(Keyword::Null) => Ok(Expr::Literal(Literal::Null)),
            Token::Keyword(Keyword::True) => Ok(Expr::Literal(Literal::Bool(true))),
            Token::Keyword(Keyword::False) => Ok(Expr::Literal(Literal::Bool(false))),
            Token::Keyword(Keyword::Exists) => {
                self.expect(&Token::LParen)?;
                let q = self.parse_query()?;
                self.expect(&Token::RParen)?;
                Ok(Expr::Exists {
                    negated: false,
                    subquery: Box::new(q),
                })
            }
            Token::Keyword(
                k @ (Keyword::Count | Keyword::Sum | Keyword::Avg | Keyword::Min | Keyword::Max),
            ) => {
                let func = match k {
                    Keyword::Count => AggFunc::Count,
                    Keyword::Sum => AggFunc::Sum,
                    Keyword::Avg => AggFunc::Avg,
                    Keyword::Min => AggFunc::Min,
                    Keyword::Max => AggFunc::Max,
                    _ => unreachable!(),
                };
                self.expect(&Token::LParen)?;
                let distinct = self.eat_kw(Keyword::Distinct);
                let arg = if self.eat(&Token::Star) {
                    AggArg::Star
                } else {
                    AggArg::Expr(Box::new(self.parse_expr()?))
                };
                self.expect(&Token::RParen)?;
                Ok(Expr::Agg {
                    func,
                    distinct,
                    arg,
                })
            }
            Token::LParen => {
                if self.peek() == &Token::Keyword(Keyword::Select) {
                    let q = self.parse_query()?;
                    self.expect(&Token::RParen)?;
                    Ok(Expr::Subquery(Box::new(q)))
                } else {
                    let e = self.parse_expr()?;
                    self.expect(&Token::RParen)?;
                    Ok(e)
                }
            }
            Token::Ident(first) => {
                if self.eat(&Token::Dot) {
                    match self.bump() {
                        Token::Ident(col) => Ok(Expr::Column(ColumnRef {
                            table: Some(first),
                            column: col,
                        })),
                        // Allow keyword-shaped column names after a dot,
                        // e.g. `t.count` in odd schemas.
                        Token::Keyword(k) => Ok(Expr::Column(ColumnRef {
                            table: Some(first),
                            column: k.as_str().to_ascii_lowercase(),
                        })),
                        other => Err(self.err(format!("expected column name, found `{other}`"))),
                    }
                } else {
                    Ok(Expr::Column(ColumnRef {
                        table: None,
                        column: first,
                    }))
                }
            }
            other => Err(self.err(format!("unexpected token `{other}` in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(src: &str) -> Query {
        parse(src).unwrap_or_else(|e| panic!("failed to parse `{src}`: {e}"))
    }

    #[test]
    fn simple_select() {
        let q = p("SELECT a, b FROM t");
        let s = q.body.as_select().unwrap();
        assert_eq!(s.projections.len(), 2);
        assert!(s.selection.is_none());
    }

    #[test]
    fn select_star_distinct() {
        let q = p("SELECT DISTINCT * FROM t");
        let s = q.body.as_select().unwrap();
        assert!(s.distinct);
        assert_eq!(s.projections, vec![SelectItem::Wildcard]);
    }

    #[test]
    fn arithmetic_precedence() {
        let q = p("SELECT a + b * c FROM t");
        let s = q.body.as_select().unwrap();
        let SelectItem::Expr { expr, .. } = &s.projections[0] else {
            panic!()
        };
        // a + (b * c)
        match expr {
            Expr::Binary { op, right, .. } => {
                assert_eq!(*op, BinaryOp::Add);
                assert!(matches!(
                    **right,
                    Expr::Binary {
                        op: BinaryOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let q = p("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
        let s = q.body.as_select().unwrap();
        match s.selection.as_ref().unwrap() {
            Expr::Binary { op, .. } => assert_eq!(*op, BinaryOp::Or),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn between_does_not_swallow_and() {
        let q = p("SELECT * FROM t WHERE x BETWEEN 1 AND 5 AND y = 2");
        let s = q.body.as_select().unwrap();
        let conj = s.selection.as_ref().unwrap().conjuncts();
        assert_eq!(conj.len(), 2);
        assert!(matches!(conj[0], Expr::Between { .. }));
    }

    #[test]
    fn not_between() {
        let q = p("SELECT * FROM t WHERE x NOT BETWEEN 1 AND 5");
        let s = q.body.as_select().unwrap();
        assert!(matches!(
            s.selection.as_ref().unwrap(),
            Expr::Between { negated: true, .. }
        ));
    }

    #[test]
    fn in_list_and_in_subquery() {
        let q = p("SELECT * FROM t WHERE a IN (1, 2, 3)");
        let s = q.body.as_select().unwrap();
        assert!(matches!(
            s.selection.as_ref().unwrap(),
            Expr::InList { list, .. } if list.len() == 3
        ));

        let q = p("SELECT * FROM t WHERE a NOT IN (SELECT b FROM u)");
        let s = q.body.as_select().unwrap();
        assert!(matches!(
            s.selection.as_ref().unwrap(),
            Expr::InSubquery { negated: true, .. }
        ));
    }

    #[test]
    fn like_and_is_null() {
        let q = p("SELECT * FROM t WHERE name LIKE '%gal%' AND z IS NOT NULL");
        let s = q.body.as_select().unwrap();
        let conj = s.selection.as_ref().unwrap().conjuncts();
        assert!(matches!(conj[0], Expr::Like { .. }));
        assert!(matches!(conj[1], Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn aggregates() {
        let q = p("SELECT COUNT(*), AVG(z), COUNT(DISTINCT class) FROM specobj");
        let s = q.body.as_select().unwrap();
        assert_eq!(s.projections.len(), 3);
        let SelectItem::Expr { expr, .. } = &s.projections[2] else {
            panic!()
        };
        assert!(matches!(expr, Expr::Agg { distinct: true, .. }));
    }

    #[test]
    fn group_by_having_order_limit() {
        let q = p("SELECT class, COUNT(*) FROM specobj GROUP BY class \
             HAVING COUNT(*) > 10 ORDER BY COUNT(*) DESC LIMIT 5");
        let s = q.body.as_select().unwrap();
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].desc);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn joins_with_aliases() {
        let q = p(
            "SELECT p.objid FROM photoobj AS p JOIN specobj AS s ON s.bestobjid = p.objid \
             LEFT JOIN neighbors n ON n.objid = p.objid",
        );
        let s = q.body.as_select().unwrap();
        assert_eq!(s.joins.len(), 2);
        assert!(s.joins[1].left);
        assert_eq!(s.joins[1].table.alias.as_deref(), Some("n"));
    }

    #[test]
    fn set_operations() {
        let q = p("SELECT a FROM t UNION SELECT a FROM u INTERSECT SELECT a FROM v");
        // Left-associative: (t UNION u) INTERSECT v
        match &q.body {
            SetExpr::SetOp { op, left, .. } => {
                assert_eq!(*op, SetOp::Intersect);
                assert!(matches!(
                    **left,
                    SetExpr::SetOp {
                        op: SetOp::Union,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scalar_subquery_comparison() {
        let q = p("SELECT * FROM t WHERE z > (SELECT AVG(z) FROM t)");
        let s = q.body.as_select().unwrap();
        match s.selection.as_ref().unwrap() {
            Expr::Binary { right, .. } => assert!(matches!(**right, Expr::Subquery(_))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn exists_and_not_exists() {
        let q = p("SELECT * FROM t WHERE EXISTS (SELECT * FROM u)");
        assert!(matches!(
            q.body.as_select().unwrap().selection.as_ref().unwrap(),
            Expr::Exists { negated: false, .. }
        ));
        let q = p("SELECT * FROM t WHERE NOT EXISTS (SELECT * FROM u)");
        assert!(matches!(
            q.body.as_select().unwrap().selection.as_ref().unwrap(),
            Expr::Exists { negated: true, .. }
        ));
    }

    #[test]
    fn derived_table() {
        let q = p("SELECT x.c FROM (SELECT class AS c FROM specobj) AS x");
        let s = q.body.as_select().unwrap();
        assert!(matches!(s.from.factor, TableFactor::Derived(_)));
        assert_eq!(s.from.alias.as_deref(), Some("x"));
    }

    #[test]
    fn negative_literals_fold() {
        let q = p("SELECT * FROM t WHERE dec > -10.5");
        let s = q.body.as_select().unwrap();
        match s.selection.as_ref().unwrap() {
            Expr::Binary { right, .. } => {
                assert_eq!(**right, Expr::Literal(Literal::Float(-10.5)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_is_error() {
        assert!(parse("SELECT a FROM t garbage garbage").is_err());
        assert!(parse("SELECT a FROM").is_err());
        assert!(parse("FROM t").is_err());
    }

    #[test]
    fn trailing_semicolon_accepted() {
        assert!(parse("SELECT a FROM t;").is_ok());
    }

    #[test]
    fn not_predicate() {
        let q = p("SELECT * FROM t WHERE NOT a = 1");
        let s = q.body.as_select().unwrap();
        assert!(matches!(
            s.selection.as_ref().unwrap(),
            Expr::Unary {
                op: UnaryOp::Not,
                ..
            }
        ));
    }

    #[test]
    fn keyword_column_after_dot() {
        let q = p("SELECT t.count FROM t");
        let s = q.body.as_select().unwrap();
        let SelectItem::Expr { expr, .. } = &s.projections[0] else {
            panic!()
        };
        assert_eq!(*expr, Expr::col(Some("t"), "count"));
    }
}
