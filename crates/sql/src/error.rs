//! Parse-error type for the SQL front end.

use std::fmt;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ParseError>;

/// An error produced while lexing or parsing SQL text.
///
/// Carries the byte offset into the original input at which the problem was
/// detected, which callers (e.g. the synthetic-data generator's
/// executability filter) use to report which generated query failed and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
}

impl ParseError {
    /// Create a new parse error at the given byte offset.
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        ParseError {
            message: message.into(),
            offset,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset_and_message() {
        let e = ParseError::new("unexpected token", 7);
        assert_eq!(e.to_string(), "parse error at byte 7: unexpected token");
    }
}
