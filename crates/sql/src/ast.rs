//! Abstract syntax tree for the supported SQL dialect.
//!
//! The tree is deliberately close to the textual structure of SQL (rather
//! than to a logical plan) because the ScienceBenchmark pipeline reasons
//! about queries syntactically: the template extractor replaces leaf nodes,
//! the hardness classifier counts clause components, and the NL realizer
//! verbalizes clauses.

use std::fmt;

/// A full query: a set-expression body plus `ORDER BY` / `LIMIT`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The body: a plain `SELECT` or a set operation over two bodies.
    pub body: SetExpr,
    /// `ORDER BY` items, empty when absent.
    pub order_by: Vec<OrderItem>,
    /// `LIMIT n`, when present.
    pub limit: Option<u64>,
}

impl Query {
    /// Wrap a bare [`Select`] into a query with no ordering or limit.
    pub fn from_select(select: Select) -> Self {
        Query {
            body: SetExpr::Select(Box::new(select)),
            order_by: Vec::new(),
            limit: None,
        }
    }

    /// All `SELECT` blocks in the body (left-to-right for set operations),
    /// not descending into subqueries.
    pub fn selects(&self) -> Vec<&Select> {
        fn walk<'a>(e: &'a SetExpr, out: &mut Vec<&'a Select>) {
            match e {
                SetExpr::Select(s) => out.push(s),
                SetExpr::SetOp { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.body, &mut out);
        out
    }
}

/// The body of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    /// A single `SELECT ... FROM ...` block.
    Select(Box<Select>),
    /// `left op right` where `op` is `UNION`/`INTERSECT`/`EXCEPT`.
    SetOp {
        /// Which set operator combines the two sides.
        op: SetOp,
        /// Whether `ALL` was specified (bag rather than set semantics).
        all: bool,
        /// Left operand.
        left: Box<SetExpr>,
        /// Right operand.
        right: Box<SetExpr>,
    },
}

impl SetExpr {
    /// Return the inner [`Select`] if the body is a plain select.
    pub fn as_select(&self) -> Option<&Select> {
        match self {
            SetExpr::Select(s) => Some(s),
            SetExpr::SetOp { .. } => None,
        }
    }
}

/// Set operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum SetOp {
    Union,
    Intersect,
    Except,
}

impl SetOp {
    /// SQL spelling of the operator.
    pub fn as_str(&self) -> &'static str {
        match self {
            SetOp::Union => "UNION",
            SetOp::Intersect => "INTERSECT",
            SetOp::Except => "EXCEPT",
        }
    }
}

/// A single `SELECT` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Whether `DISTINCT` was specified.
    pub distinct: bool,
    /// Projection list.
    pub projections: Vec<SelectItem>,
    /// The leading `FROM` table.
    pub from: TableRef,
    /// `JOIN` clauses in source order.
    pub joins: Vec<Join>,
    /// `WHERE` predicate.
    pub selection: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
}

impl Select {
    /// A minimal `SELECT * FROM table` block, useful in tests.
    pub fn star_from(table: &str) -> Self {
        Select {
            distinct: false,
            projections: vec![SelectItem::Wildcard],
            from: TableRef::named(table),
            joins: Vec::new(),
            selection: None,
            group_by: Vec::new(),
            having: None,
        }
    }

    /// All table references in `FROM`/`JOIN` (not descending into derived
    /// tables or subqueries).
    pub fn table_refs(&self) -> impl Iterator<Item = &TableRef> {
        std::iter::once(&self.from).chain(self.joins.iter().map(|j| &j.table))
    }
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// An expression with an optional `AS` alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Output-column alias.
        alias: Option<String>,
    },
}

impl SelectItem {
    /// Convenience constructor for an unaliased expression item.
    pub fn expr(expr: Expr) -> Self {
        SelectItem::Expr { expr, alias: None }
    }
}

/// A table reference with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// The underlying table or derived subquery.
    pub factor: TableFactor,
    /// Binding alias (`AS a`).
    pub alias: Option<String>,
}

impl TableRef {
    /// A plain named table without alias.
    pub fn named(name: &str) -> Self {
        TableRef {
            factor: TableFactor::Table(name.to_string()),
            alias: None,
        }
    }

    /// A named table bound to an alias.
    pub fn aliased(name: &str, alias: &str) -> Self {
        TableRef {
            factor: TableFactor::Table(name.to_string()),
            alias: Some(alias.to_string()),
        }
    }

    /// The name this reference binds in scope: the alias when present,
    /// otherwise the table name (derived tables must be aliased).
    pub fn binding(&self) -> Option<&str> {
        match (&self.alias, &self.factor) {
            (Some(a), _) => Some(a),
            (None, TableFactor::Table(name)) => Some(name),
            (None, TableFactor::Derived(_)) => None,
        }
    }
}

/// What a [`TableRef`] refers to.
#[derive(Debug, Clone, PartialEq)]
pub enum TableFactor {
    /// A base table by name.
    Table(String),
    /// A parenthesized derived table (`FROM (SELECT ...)`).
    Derived(Box<Query>),
}

/// One `JOIN` clause. Only inner joins carry semantics in the dialect; a
/// `LEFT JOIN` keyword is accepted and recorded for fidelity.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// The joined table.
    pub table: TableRef,
    /// `ON` predicate; `None` means a cross join (rare but accepted).
    pub constraint: Option<Expr>,
    /// Whether the join was written as `LEFT JOIN`.
    pub left: bool,
}

/// Ordering item in `ORDER BY`.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// The ordering key expression.
    pub expr: Expr,
    /// `true` for `DESC`.
    pub desc: bool,
}

/// A possibly-qualified column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Table qualifier (alias or table name), when written.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Unqualified column.
    pub fn bare(column: &str) -> Self {
        ColumnRef {
            table: None,
            column: column.to_string(),
        }
    }

    /// Qualified column (`table.column`).
    pub fn qualified(table: &str, column: &str) -> Self {
        ColumnRef {
            table: Some(table.to_string()),
            column: column.to_string(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    /// SQL spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }

    /// All aggregate functions, in a stable order.
    pub const ALL: [AggFunc; 5] = [
        AggFunc::Count,
        AggFunc::Sum,
        AggFunc::Avg,
        AggFunc::Min,
        AggFunc::Max,
    ];
}

/// Argument of an aggregate call.
#[derive(Debug, Clone, PartialEq)]
pub enum AggArg {
    /// `COUNT(*)`
    Star,
    /// An expression argument.
    Expr(Box<Expr>),
}

/// Literal values.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// `NULL`
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical `NOT`.
    Not,
}

/// Binary operators, both arithmetic and logical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinaryOp {
    /// SQL spelling of the operator.
    pub fn as_str(&self) -> &'static str {
        use BinaryOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Eq => "=",
            NotEq => "<>",
            Lt => "<",
            LtEq => "<=",
            Gt => ">",
            GtEq => ">=",
            And => "AND",
            Or => "OR",
        }
    }

    /// Binding strength used by the parser and printer. Larger binds
    /// tighter.
    pub fn precedence(&self) -> u8 {
        use BinaryOp::*;
        match self {
            Or => 1,
            And => 2,
            Eq | NotEq | Lt | LtEq | Gt | GtEq => 4,
            Add | Sub => 5,
            Mul | Div => 6,
        }
    }

    /// Whether this is a comparison operator.
    pub fn is_comparison(&self) -> bool {
        use BinaryOp::*;
        matches!(self, Eq | NotEq | Lt | LtEq | Gt | GtEq)
    }

    /// Whether this is an arithmetic operator (`+ - * /`). These are the
    /// "math operators" the paper's SDSS extension is about.
    pub fn is_arithmetic(&self) -> bool {
        use BinaryOp::*;
        matches!(self, Add | Sub | Mul | Div)
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRef),
    /// Literal value.
    Literal(Literal),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Aggregate call.
    Agg {
        /// The aggregate function.
        func: AggFunc,
        /// Whether `DISTINCT` was specified inside the call.
        distinct: bool,
        /// Argument (`*` or an expression).
        arg: AggArg,
    },
    /// `expr [NOT] BETWEEN low AND high`
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Whether `NOT` was specified.
        negated: bool,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
    },
    /// `expr [NOT] IN (e1, e2, ...)`
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Whether `NOT` was specified.
        negated: bool,
        /// Candidate list.
        list: Vec<Expr>,
    },
    /// `expr [NOT] IN (SELECT ...)`
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// Whether `NOT` was specified.
        negated: bool,
        /// The subquery producing candidates.
        subquery: Box<Query>,
    },
    /// `expr [NOT] LIKE pattern`
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Whether `NOT` was specified.
        negated: bool,
        /// The pattern (usually a string literal with `%`/`_`).
        pattern: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// Whether `NOT` was specified.
        negated: bool,
    },
    /// A parenthesized scalar subquery.
    Subquery(Box<Query>),
    /// `[NOT] EXISTS (SELECT ...)`
    Exists {
        /// Whether `NOT` was specified.
        negated: bool,
        /// The probed subquery.
        subquery: Box<Query>,
    },
}

impl Expr {
    /// Convenience: `left op right`.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// Convenience: an unqualified or qualified column.
    pub fn col(table: Option<&str>, column: &str) -> Expr {
        Expr::Column(ColumnRef {
            table: table.map(str::to_string),
            column: column.to_string(),
        })
    }

    /// Convenience: integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Literal::Int(v))
    }

    /// Convenience: float literal.
    pub fn float(v: f64) -> Expr {
        Expr::Literal(Literal::Float(v))
    }

    /// Convenience: string literal.
    pub fn str(v: &str) -> Expr {
        Expr::Literal(Literal::Str(v.to_string()))
    }

    /// Whether the expression contains an aggregate call anywhere.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Column(_) | Expr::Literal(_) | Expr::Subquery(_) | Expr::Exists { .. } => false,
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::InSubquery { expr, .. } => expr.contains_aggregate(),
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
        }
    }

    /// Split a conjunctive predicate into its `AND`-ed conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::Binary {
                left,
                op: BinaryOp::And,
                right,
            } => {
                let mut out = left.conjuncts();
                out.extend(right.conjuncts());
                out
            }
            other => vec![other],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let e = Expr::binary(
            Expr::binary(Expr::col(None, "a"), BinaryOp::Eq, Expr::int(1)),
            BinaryOp::And,
            Expr::binary(
                Expr::binary(Expr::col(None, "b"), BinaryOp::Gt, Expr::int(2)),
                BinaryOp::And,
                Expr::binary(Expr::col(None, "c"), BinaryOp::Lt, Expr::int(3)),
            ),
        );
        assert_eq!(e.conjuncts().len(), 3);
    }

    #[test]
    fn contains_aggregate_descends() {
        let e = Expr::binary(
            Expr::Agg {
                func: AggFunc::Count,
                distinct: false,
                arg: AggArg::Star,
            },
            BinaryOp::Gt,
            Expr::int(5),
        );
        assert!(e.contains_aggregate());
        assert!(!Expr::col(None, "x").contains_aggregate());
    }

    #[test]
    fn binding_prefers_alias() {
        assert_eq!(TableRef::aliased("specobj", "s").binding(), Some("s"));
        assert_eq!(TableRef::named("specobj").binding(), Some("specobj"));
    }

    #[test]
    fn operator_precedence_ordering() {
        assert!(BinaryOp::Mul.precedence() > BinaryOp::Add.precedence());
        assert!(BinaryOp::Add.precedence() > BinaryOp::Eq.precedence());
        assert!(BinaryOp::Eq.precedence() > BinaryOp::And.precedence());
        assert!(BinaryOp::And.precedence() > BinaryOp::Or.precedence());
    }

    #[test]
    fn selects_collects_set_op_sides() {
        let q = Query {
            body: SetExpr::SetOp {
                op: SetOp::Union,
                all: false,
                left: Box::new(SetExpr::Select(Box::new(Select::star_from("a")))),
                right: Box::new(SetExpr::Select(Box::new(Select::star_from("b")))),
            },
            order_by: vec![],
            limit: None,
        };
        assert_eq!(q.selects().len(), 2);
    }
}
