//! Hand-written SQL lexer.
//!
//! Converts SQL text into a vector of [`Token`]s with byte offsets. The
//! lexer is whitespace- and comment-tolerant (`-- line comments` are
//! skipped) and keyword matching is case-insensitive.

use crate::error::{ParseError, Result};
use crate::token::{Keyword, Token};

/// A streaming lexer over SQL source text.
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    /// Tokenize the entire input, appending a trailing [`Token::Eof`].
    ///
    /// Returns each token paired with the byte offset of its first
    /// character.
    pub fn tokenize(mut self) -> Result<Vec<(Token, usize)>> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let start = self.pos;
            let Some(b) = self.peek() else {
                out.push((Token::Eof, start));
                return Ok(out);
            };
            let token = match b {
                b'\'' => self.lex_string()?,
                b'"' => self.lex_quoted_ident()?,
                b'0'..=b'9' => self.lex_number()?,
                b'.' if self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) => self.lex_number()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_word(),
                _ => self.lex_symbol()?,
            };
            out.push((token, start));
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'-') if self.peek_at(1) == Some(b'-') => {
                    while let Some(b) = self.peek() {
                        self.pos += 1;
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn lex_string(&mut self) -> Result<Token> {
        let start = self.pos;
        self.bump(); // opening quote
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    // `''` escapes a single quote inside the literal.
                    if self.peek() == Some(b'\'') {
                        self.bump();
                        value.push('\'');
                    } else {
                        return Ok(Token::Str(value));
                    }
                }
                Some(b) => value.push(b as char),
                None => return Err(ParseError::new("unterminated string literal", start)),
            }
        }
    }

    fn lex_quoted_ident(&mut self) -> Result<Token> {
        let start = self.pos;
        self.bump(); // opening quote
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(Token::Ident(value)),
                Some(b) => value.push(b as char),
                None => return Err(ParseError::new("unterminated quoted identifier", start)),
            }
        }
    }

    fn lex_number(&mut self) -> Result<Token> {
        let start = self.pos;
        let mut saw_dot = false;
        let mut saw_exp = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    self.pos += 1;
                }
                b'.' if !saw_dot && !saw_exp => {
                    // A dot not followed by a digit terminates the number
                    // (it is a qualifier dot, e.g. `t1.col` — though a
                    // number cannot be a qualifier, be conservative).
                    if self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
                        saw_dot = true;
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                b'e' | b'E' if !saw_exp => {
                    let next = self.peek_at(1);
                    let next2 = self.peek_at(2);
                    let exp_ok = next.is_some_and(|c| c.is_ascii_digit())
                        || (matches!(next, Some(b'+') | Some(b'-'))
                            && next2.is_some_and(|c| c.is_ascii_digit()));
                    if exp_ok {
                        saw_exp = true;
                        self.pos += 1; // e
                        if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                            self.pos += 1;
                        }
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        let text = &self.src[start..self.pos];
        if saw_dot || saw_exp {
            text.parse::<f64>()
                .map(Token::Float)
                .map_err(|_| ParseError::new(format!("invalid float literal `{text}`"), start))
        } else {
            text.parse::<i64>()
                .map(Token::Int)
                .map_err(|_| ParseError::new(format!("invalid integer literal `{text}`"), start))
        }
    }

    fn lex_word(&mut self) -> Token {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let word = &self.src[start..self.pos];
        match Keyword::from_word(word) {
            Some(k) => Token::Keyword(k),
            None => Token::Ident(word.to_string()),
        }
    }

    fn lex_symbol(&mut self) -> Result<Token> {
        let start = self.pos;
        let b = self.bump().expect("caller checked non-empty");
        Ok(match b {
            b'=' => Token::Eq,
            b'<' => match self.peek() {
                Some(b'=') => {
                    self.bump();
                    Token::LtEq
                }
                Some(b'>') => {
                    self.bump();
                    Token::NotEq
                }
                _ => Token::Lt,
            },
            b'>' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Token::GtEq
                } else {
                    Token::Gt
                }
            }
            b'!' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Token::NotEq
                } else {
                    return Err(ParseError::new("expected `=` after `!`", start));
                }
            }
            b'+' => Token::Plus,
            b'-' => Token::Minus,
            b'*' => Token::Star,
            b'/' => Token::Slash,
            b'(' => Token::LParen,
            b')' => Token::RParen,
            b',' => Token::Comma,
            b'.' => Token::Dot,
            b';' => Token::Semicolon,
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{}`", other as char),
                    start,
                ))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    }

    #[test]
    fn lexes_simple_select() {
        let t = toks("SELECT a FROM t");
        assert_eq!(
            t,
            vec![
                Token::Keyword(Keyword::Select),
                Token::Ident("a".into()),
                Token::Keyword(Keyword::From),
                Token::Ident("t".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(toks("42")[0], Token::Int(42));
        assert_eq!(toks("2.22")[0], Token::Float(2.22));
        assert_eq!(toks("1e3")[0], Token::Float(1000.0));
        assert_eq!(toks("1.5e-2")[0], Token::Float(0.015));
    }

    #[test]
    fn dot_after_ident_is_qualifier_not_float() {
        let t = toks("p.u - p.r < 2.22");
        assert_eq!(
            t,
            vec![
                Token::Ident("p".into()),
                Token::Dot,
                Token::Ident("u".into()),
                Token::Minus,
                Token::Ident("p".into()),
                Token::Dot,
                Token::Ident("r".into()),
                Token::Lt,
                Token::Float(2.22),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_string_with_escape() {
        assert_eq!(toks("'it''s'")[0], Token::Str("it's".into()));
    }

    #[test]
    fn lexes_operators() {
        let t = toks("<= >= <> != =");
        assert_eq!(
            t,
            vec![
                Token::LtEq,
                Token::GtEq,
                Token::NotEq,
                Token::NotEq,
                Token::Eq,
                Token::Eof
            ]
        );
    }

    #[test]
    fn skips_line_comments() {
        let t = toks("SELECT -- the projection\n a");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(Lexer::new("'oops").tokenize().is_err());
    }

    #[test]
    fn quoted_identifier() {
        assert_eq!(toks("\"Order\"")[0], Token::Ident("Order".into()));
    }

    #[test]
    fn bare_bang_is_error() {
        assert!(Lexer::new("a ! b").tokenize().is_err());
    }
}
