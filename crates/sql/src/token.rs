//! Token definitions shared by the lexer and the parser.

use std::fmt;

/// SQL keywords recognized by the dialect.
///
/// Keyword matching is case-insensitive; the canonical (upper-case) spelling
/// is used when printing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    Distinct,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Asc,
    Desc,
    Limit,
    Join,
    Inner,
    Left,
    On,
    As,
    And,
    Or,
    Not,
    In,
    Like,
    Between,
    Is,
    Null,
    Exists,
    Union,
    All,
    Intersect,
    Except,
    Count,
    Sum,
    Avg,
    Min,
    Max,
    True,
    False,
}

impl Keyword {
    /// Parse an identifier-shaped word into a keyword, if it is one.
    pub fn from_word(word: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match word.to_ascii_uppercase().as_str() {
            "SELECT" => Select,
            "DISTINCT" => Distinct,
            "FROM" => From,
            "WHERE" => Where,
            "GROUP" => Group,
            "BY" => By,
            "HAVING" => Having,
            "ORDER" => Order,
            "ASC" => Asc,
            "DESC" => Desc,
            "LIMIT" => Limit,
            "JOIN" => Join,
            "INNER" => Inner,
            "LEFT" => Left,
            "ON" => On,
            "AS" => As,
            "AND" => And,
            "OR" => Or,
            "NOT" => Not,
            "IN" => In,
            "LIKE" => Like,
            "BETWEEN" => Between,
            "IS" => Is,
            "NULL" => Null,
            "EXISTS" => Exists,
            "UNION" => Union,
            "ALL" => All,
            "INTERSECT" => Intersect,
            "EXCEPT" => Except,
            "COUNT" => Count,
            "SUM" => Sum,
            "AVG" => Avg,
            "MIN" => Min,
            "MAX" => Max,
            "TRUE" => True,
            "FALSE" => False,
            _ => return None,
        })
    }

    /// Canonical upper-case spelling.
    pub fn as_str(&self) -> &'static str {
        use Keyword::*;
        match self {
            Select => "SELECT",
            Distinct => "DISTINCT",
            From => "FROM",
            Where => "WHERE",
            Group => "GROUP",
            By => "BY",
            Having => "HAVING",
            Order => "ORDER",
            Asc => "ASC",
            Desc => "DESC",
            Limit => "LIMIT",
            Join => "JOIN",
            Inner => "INNER",
            Left => "LEFT",
            On => "ON",
            As => "AS",
            And => "AND",
            Or => "OR",
            Not => "NOT",
            In => "IN",
            Like => "LIKE",
            Between => "BETWEEN",
            Is => "IS",
            Null => "NULL",
            Exists => "EXISTS",
            Union => "UNION",
            All => "ALL",
            Intersect => "INTERSECT",
            Except => "EXCEPT",
            Count => "COUNT",
            Sum => "SUM",
            Avg => "AVG",
            Min => "MIN",
            Max => "MAX",
            True => "TRUE",
            False => "FALSE",
        }
    }
}

/// A lexical token with no positional information.
///
/// Positions are tracked separately by the lexer as byte offsets so that
/// `Token` stays cheap to compare in the parser.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A recognized SQL keyword.
    Keyword(Keyword),
    /// A bare or double-quoted identifier (quotes stripped).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// A single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*` (multiplication or wildcard, disambiguated by the parser)
    Star,
    /// `/`
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{}", k.as_str()),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Token::Eq => write!(f, "="),
            Token::NotEq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::LtEq => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::GtEq => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Semicolon => write!(f, ";"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for word in ["select", "SELECT", "SeLeCt"] {
            assert_eq!(Keyword::from_word(word), Some(Keyword::Select));
        }
        assert_eq!(Keyword::from_word("specobj"), None);
    }

    #[test]
    fn keyword_canonical_spelling() {
        assert_eq!(Keyword::Between.as_str(), "BETWEEN");
        assert_eq!(
            Keyword::from_word(Keyword::Intersect.as_str()),
            Some(Keyword::Intersect)
        );
    }

    #[test]
    fn token_display_escapes_strings() {
        let t = Token::Str("it's".into());
        assert_eq!(t.to_string(), "'it''s'");
    }
}
