//! Pretty-printer: `Display` implementations that render the AST back to
//! canonical SQL text.
//!
//! The printer produces the canonical form used everywhere in the
//! reproduction: keywords upper-cased, single spaces, parentheses inserted
//! from operator precedence. `parse(q.to_string()) == q` holds for every
//! query the parser accepts (verified by property tests).

use crate::ast::*;
use std::fmt;

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.body)?;
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, item) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", item.expr)?;
                if item.desc {
                    write!(f, " DESC")?;
                }
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SetExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetExpr::Select(s) => write!(f, "{s}"),
            SetExpr::SetOp {
                op,
                all,
                left,
                right,
            } => {
                write!(f, "{left} {}", op.as_str())?;
                if *all {
                    write!(f, " ALL")?;
                }
                write!(f, " {right}")
            }
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.projections.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " FROM {}", self.from)?;
        for join in &self.joins {
            write!(f, " {join}")?;
        }
        if let Some(sel) = &self.selection {
            write!(f, " WHERE {sel}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, e) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{e}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.factor {
            TableFactor::Table(name) => write!(f, "{name}")?,
            TableFactor::Derived(q) => write!(f, "({q})")?,
        }
        if let Some(a) = &self.alias {
            write!(f, " AS {a}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Join {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.left {
            write!(f, "LEFT ")?;
        }
        write!(f, "JOIN {}", self.table)?;
        if let Some(c) = &self.constraint {
            write!(f, " ON {c}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Null => write!(f, "NULL"),
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    // Keep a decimal point so the literal re-lexes as float.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

/// Precedence of an expression node for parenthesization purposes.
fn expr_prec(e: &Expr) -> u8 {
    match e {
        Expr::Binary { op, .. } => op.precedence(),
        Expr::Unary {
            op: UnaryOp::Not, ..
        } => 3,
        Expr::Between { .. }
        | Expr::InList { .. }
        | Expr::InSubquery { .. }
        | Expr::Like { .. }
        | Expr::IsNull { .. } => 3,
        // Atoms and calls never need parentheses.
        _ => u8::MAX,
    }
}

/// Write `e`, parenthesizing when its precedence is below `min`.
fn write_with_prec(f: &mut fmt::Formatter<'_>, e: &Expr, min: u8) -> fmt::Result {
    if expr_prec(e) < min {
        write!(f, "({e})")
    } else {
        write!(f, "{e}")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => {
                    write!(f, "-")?;
                    write_with_prec(f, expr, u8::MAX)
                }
                UnaryOp::Not => {
                    write!(f, "NOT ")?;
                    // `NOT EXISTS (...)` would reparse as the folded
                    // `Exists { negated: true }`; parenthesize so the
                    // unary node survives the round trip.
                    if matches!(expr.as_ref(), Expr::Exists { .. }) {
                        write!(f, "(")?;
                        write_with_prec(f, expr, 0)?;
                        write!(f, ")")
                    } else {
                        write_with_prec(f, expr, 3)
                    }
                }
            },
            Expr::Binary { left, op, right } => {
                let prec = op.precedence();
                write_with_prec(f, left, prec)?;
                write!(f, " {} ", op.as_str())?;
                // Left-associative: right operand needs strictly higher
                // precedence to avoid parens ambiguity.
                write_with_prec(f, right, prec + 1)
            }
            Expr::Agg {
                func,
                distinct,
                arg,
            } => {
                write!(f, "{}(", func.as_str())?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                match arg {
                    AggArg::Star => write!(f, "*")?,
                    AggArg::Expr(e) => write!(f, "{e}")?,
                }
                write!(f, ")")
            }
            Expr::Between {
                expr,
                negated,
                low,
                high,
            } => {
                write_with_prec(f, expr, 4)?;
                if *negated {
                    write!(f, " NOT")?;
                }
                write!(f, " BETWEEN ")?;
                write_with_prec(f, low, 5)?;
                write!(f, " AND ")?;
                write_with_prec(f, high, 5)
            }
            Expr::InList {
                expr,
                negated,
                list,
            } => {
                write_with_prec(f, expr, 4)?;
                if *negated {
                    write!(f, " NOT")?;
                }
                write!(f, " IN (")?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::InSubquery {
                expr,
                negated,
                subquery,
            } => {
                write_with_prec(f, expr, 4)?;
                if *negated {
                    write!(f, " NOT")?;
                }
                write!(f, " IN ({subquery})")
            }
            Expr::Like {
                expr,
                negated,
                pattern,
            } => {
                write_with_prec(f, expr, 4)?;
                if *negated {
                    write!(f, " NOT")?;
                }
                write!(f, " LIKE ")?;
                write_with_prec(f, pattern, 4)
            }
            Expr::IsNull { expr, negated } => {
                write_with_prec(f, expr, 4)?;
                write!(f, " IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::Subquery(q) => write!(f, "({q})"),
            Expr::Exists { negated, subquery } => {
                if *negated {
                    write!(f, "NOT ")?;
                }
                write!(f, "EXISTS ({subquery})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;
    use crate::{Expr, Query, Select, SelectItem, TableRef, UnaryOp};

    /// Round-trip a query through print → parse and check canonical
    /// stability (print ∘ parse ∘ print = print).
    fn round_trip(src: &str) {
        let q = parse(src).unwrap_or_else(|e| panic!("parse `{src}`: {e}"));
        let printed = q.to_string();
        let q2 = parse(&printed).unwrap_or_else(|e| panic!("reparse `{printed}`: {e}"));
        assert_eq!(q, q2, "round-trip changed the AST for `{src}`");
        assert_eq!(printed, q2.to_string(), "printing is not canonical");
    }

    #[test]
    fn round_trips_paper_examples() {
        round_trip("SELECT s.specobjid FROM specobj AS s WHERE s.subclass = 'STARBURST'");
        round_trip(
            "SELECT s.bestobjid, s.ra, s.dec, s.z FROM specobj AS s \
             WHERE s.class = 'GALAXY' AND s.z > 0.5 AND s.z < 1",
        );
        round_trip(
            "SELECT p.objid, s.specobjid FROM photoobj AS p \
             JOIN specobj AS s ON s.bestobjid = p.objid \
             WHERE s.class = 'GALAXY' AND p.u - p.r < 2.22 AND p.u - p.r > 1",
        );
    }

    #[test]
    fn round_trips_complex_shapes() {
        round_trip("SELECT COUNT(*), class FROM specobj GROUP BY class HAVING COUNT(*) > 3");
        round_trip("SELECT a FROM t WHERE x BETWEEN 1 AND 2 OR y NOT IN (1, 2)");
        round_trip("SELECT a FROM t WHERE b IN (SELECT c FROM u WHERE d = 'x')");
        round_trip("SELECT a FROM t UNION SELECT b FROM u ORDER BY a DESC LIMIT 3");
        round_trip("SELECT a FROM (SELECT a FROM t WHERE z > 0.5) AS s WHERE a < 10");
        round_trip("SELECT * FROM t WHERE NOT (a = 1 OR b = 2)");
        round_trip("SELECT AVG(u - r) FROM photoobj");
        round_trip("SELECT * FROM t WHERE z > (SELECT AVG(z) FROM t)");
        round_trip("SELECT * FROM t WHERE name LIKE '%burst%' AND z IS NOT NULL");
    }

    #[test]
    fn parenthesizes_or_under_and() {
        let q = parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3").unwrap();
        let printed = q.to_string();
        assert!(printed.contains("(a = 1 OR b = 2)"), "{printed}");
        round_trip(&printed);
    }

    /// Fuzzer-found (sdss, seed 23893): `Unary { Not, Exists }` printed
    /// as `NOT EXISTS (...)`, which the parser folds into the distinct
    /// `Exists { negated: true }` node — breaking AST round-tripping.
    /// The printer now parenthesizes the operand.
    #[test]
    fn not_over_exists_survives_the_round_trip() {
        let ast = Query::from_select(Select {
            distinct: false,
            projections: vec![SelectItem::Wildcard],
            from: TableRef::named("t"),
            joins: Vec::new(),
            selection: Some(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(Expr::Exists {
                    negated: false,
                    subquery: Box::new(Query::from_select(Select::star_from("u"))),
                }),
            }),
            group_by: Vec::new(),
            having: None,
        });
        let printed = ast.to_string();
        assert!(printed.contains("NOT (EXISTS"), "{printed}");
        assert_eq!(parse(&printed).unwrap(), ast);
        // The folded form still parses to the dedicated node and keeps
        // its own canonical spelling.
        let folded = parse("SELECT * FROM t WHERE NOT EXISTS (SELECT * FROM u)").unwrap();
        assert_ne!(folded, ast);
        round_trip(&folded.to_string());
    }

    #[test]
    fn float_literals_stay_floats() {
        let q = parse("SELECT * FROM t WHERE z = 1.0").unwrap();
        let printed = q.to_string();
        assert!(printed.contains("1.0"), "{printed}");
        round_trip(&printed);
    }
}
