//! # sb-sql — SQL front end for the ScienceBenchmark reproduction
//!
//! A self-contained lexer, parser, abstract syntax tree and pretty-printer
//! for the SQL dialect exercised by the Spider benchmark and by the
//! ScienceBenchmark paper (VLDB 2023), including the mathematical
//! column-arithmetic extension the paper added for the SDSS astrophysics
//! domain (e.g. `p.u - p.r < 2.22`).
//!
//! The dialect covers:
//! - `SELECT [DISTINCT]` with expressions, aliases and `*`
//! - `FROM` with table aliases, derived tables and `JOIN ... ON`
//! - `WHERE` with `AND`/`OR`/`NOT`, comparisons, `LIKE`, `BETWEEN`, `IN`,
//!   `IS [NOT] NULL`, `EXISTS` and nested subqueries
//! - aggregates `COUNT/SUM/AVG/MIN/MAX` (with `DISTINCT` and `*`)
//! - arithmetic `+ - * /` over columns and literals
//! - `GROUP BY`, `HAVING`, `ORDER BY ... ASC|DESC`, `LIMIT`
//! - set operators `UNION [ALL]`, `INTERSECT`, `EXCEPT`
//!
//! Parsing and printing round-trip: for every `Query` value,
//! `parse(&q.to_string())` yields a structurally equal query. This property
//! is exercised by the crate's property-based tests and is what makes the
//! AST usable as an exchange format between the template extractor
//! (`sb-semql`), the generator (`sb-gen`) and the engine (`sb-engine`).

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod token;
pub mod visitor;

pub use ast::{
    AggArg, AggFunc, BinaryOp, ColumnRef, Expr, Join, Literal, OrderItem, Query, Select,
    SelectItem, SetExpr, SetOp, TableFactor, TableRef, UnaryOp,
};
pub use error::{ParseError, Result};
pub use lexer::Lexer;
pub use parser::{parse, Parser};
pub use token::{Keyword, Token};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_running_example_q1() {
        let q = parse("SELECT s.specobjid FROM specobj AS s WHERE s.subclass = 'STARBURST'")
            .expect("Q1 parses");
        let sel = q.body.as_select().unwrap();
        assert_eq!(sel.projections.len(), 1);
        assert!(sel.selection.is_some());
    }

    #[test]
    fn parses_paper_running_example_q3_with_math() {
        let q = parse(
            "SELECT p.objid, s.specobjid FROM photoobj AS p \
             JOIN specobj AS s ON s.bestobjid = p.objid \
             WHERE s.class = 'GALAXY' AND p.u - p.r < 2.22 AND p.u - p.r > 1",
        )
        .expect("Q3 parses");
        let sel = q.body.as_select().unwrap();
        assert_eq!(sel.joins.len(), 1);
        // Round-trip.
        let printed = q.to_string();
        let q2 = parse(&printed).unwrap();
        assert_eq!(q, q2);
    }
}
