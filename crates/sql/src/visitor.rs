//! Read-only traversal utilities over the AST.
//!
//! The hardness classifier (`sb-metrics`), the template extractor
//! (`sb-semql`) and the NL-to-SQL schema linker all need to enumerate
//! columns, tables, literals and operators of a query; this module provides
//! one canonical walk so those crates do not each reimplement recursion.

use crate::ast::*;

/// Events delivered during a walk, in syntactic order.
pub trait Visitor {
    /// Called for every `SELECT` block, including those in subqueries.
    fn visit_select(&mut self, _select: &Select) {}
    /// Called for every expression node (pre-order).
    fn visit_expr(&mut self, _expr: &Expr) {}
    /// Called for every table reference.
    fn visit_table_ref(&mut self, _table: &TableRef) {}
    /// Called for every nested query (subqueries and derived tables), but
    /// not for the root query.
    fn visit_subquery(&mut self, _query: &Query) {}
}

/// Walk `query`, delivering events to `v`. Descends into subqueries and
/// derived tables.
pub fn walk_query<V: Visitor>(query: &Query, v: &mut V) {
    walk_set_expr(&query.body, v);
    for item in &query.order_by {
        walk_expr(&item.expr, v);
    }
}

fn walk_set_expr<V: Visitor>(body: &SetExpr, v: &mut V) {
    match body {
        SetExpr::Select(s) => walk_select(s, v),
        SetExpr::SetOp { left, right, .. } => {
            walk_set_expr(left, v);
            walk_set_expr(right, v);
        }
    }
}

fn walk_select<V: Visitor>(select: &Select, v: &mut V) {
    v.visit_select(select);
    for item in &select.projections {
        if let SelectItem::Expr { expr, .. } = item {
            walk_expr(expr, v);
        }
    }
    walk_table_ref(&select.from, v);
    for join in &select.joins {
        walk_table_ref(&join.table, v);
        if let Some(c) = &join.constraint {
            walk_expr(c, v);
        }
    }
    if let Some(sel) = &select.selection {
        walk_expr(sel, v);
    }
    for e in &select.group_by {
        walk_expr(e, v);
    }
    if let Some(h) = &select.having {
        walk_expr(h, v);
    }
}

fn walk_table_ref<V: Visitor>(table: &TableRef, v: &mut V) {
    v.visit_table_ref(table);
    if let TableFactor::Derived(q) = &table.factor {
        v.visit_subquery(q);
        walk_query(q, v);
    }
}

/// Walk an expression tree in pre-order, descending into subqueries.
pub fn walk_expr<V: Visitor>(expr: &Expr, v: &mut V) {
    v.visit_expr(expr);
    match expr {
        Expr::Column(_) | Expr::Literal(_) => {}
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => walk_expr(expr, v),
        Expr::Binary { left, right, .. } => {
            walk_expr(left, v);
            walk_expr(right, v);
        }
        Expr::Agg { arg, .. } => {
            if let AggArg::Expr(e) = arg {
                walk_expr(e, v);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            walk_expr(expr, v);
            walk_expr(low, v);
            walk_expr(high, v);
        }
        Expr::InList { expr, list, .. } => {
            walk_expr(expr, v);
            for e in list {
                walk_expr(e, v);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            walk_expr(expr, v);
            v.visit_subquery(subquery);
            walk_query(subquery, v);
        }
        Expr::Like { expr, pattern, .. } => {
            walk_expr(expr, v);
            walk_expr(pattern, v);
        }
        Expr::Subquery(q) => {
            v.visit_subquery(q);
            walk_query(q, v);
        }
        Expr::Exists { subquery, .. } => {
            v.visit_subquery(subquery);
            walk_query(subquery, v);
        }
    }
}

/// Collect every column reference in the query (including subqueries).
pub fn collect_columns(query: &Query) -> Vec<ColumnRef> {
    struct C(Vec<ColumnRef>);
    impl Visitor for C {
        fn visit_expr(&mut self, expr: &Expr) {
            if let Expr::Column(c) = expr {
                self.0.push(c.clone());
            }
        }
    }
    let mut c = C(Vec::new());
    walk_query(query, &mut c);
    c.0
}

/// Collect every base-table name in the query (including subqueries), in
/// syntactic order, with duplicates.
pub fn collect_tables(query: &Query) -> Vec<String> {
    struct T(Vec<String>);
    impl Visitor for T {
        fn visit_table_ref(&mut self, table: &TableRef) {
            if let TableFactor::Table(name) = &table.factor {
                self.0.push(name.clone());
            }
        }
    }
    let mut t = T(Vec::new());
    walk_query(query, &mut t);
    t.0
}

/// Collect every literal in the query (including subqueries).
pub fn collect_literals(query: &Query) -> Vec<Literal> {
    struct L(Vec<Literal>);
    impl Visitor for L {
        fn visit_expr(&mut self, expr: &Expr) {
            if let Expr::Literal(l) = expr {
                self.0.push(l.clone());
            }
        }
    }
    let mut l = L(Vec::new());
    walk_query(query, &mut l);
    l.0
}

/// Count subqueries nested anywhere in the query.
pub fn count_subqueries(query: &Query) -> usize {
    struct S(usize);
    impl Visitor for S {
        fn visit_subquery(&mut self, _q: &Query) {
            self.0 += 1;
        }
    }
    let mut s = S(0);
    walk_query(query, &mut s);
    s.0
}

/// Count aggregate calls anywhere in the query.
pub fn count_aggregates(query: &Query) -> usize {
    struct A(usize);
    impl Visitor for A {
        fn visit_expr(&mut self, expr: &Expr) {
            if matches!(expr, Expr::Agg { .. }) {
                self.0 += 1;
            }
        }
    }
    let mut a = A(0);
    walk_query(query, &mut a);
    a.0
}

/// Count arithmetic (`+ - * /`) operator applications anywhere in the
/// query — the paper's "math operators" for SDSS.
pub fn count_math_ops(query: &Query) -> usize {
    struct M(usize);
    impl Visitor for M {
        fn visit_expr(&mut self, expr: &Expr) {
            if let Expr::Binary { op, .. } = expr {
                if op.is_arithmetic() {
                    self.0 += 1;
                }
            }
        }
    }
    let mut m = M(0);
    walk_query(query, &mut m);
    m.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn collects_columns_and_tables() {
        let q = parse(
            "SELECT p.objid, s.specobjid FROM photoobj AS p \
             JOIN specobj AS s ON s.bestobjid = p.objid WHERE s.class = 'GALAXY'",
        )
        .unwrap();
        let cols = collect_columns(&q);
        assert_eq!(cols.len(), 5);
        let tables = collect_tables(&q);
        assert_eq!(tables, vec!["photoobj".to_string(), "specobj".to_string()]);
    }

    #[test]
    fn descends_into_subqueries() {
        let q = parse("SELECT a FROM t WHERE b IN (SELECT c FROM u WHERE d > 1)").unwrap();
        assert_eq!(count_subqueries(&q), 1);
        assert_eq!(collect_tables(&q), vec!["t".to_string(), "u".to_string()]);
        assert_eq!(collect_literals(&q).len(), 1);
    }

    #[test]
    fn counts_aggregates_and_math() {
        let q = parse("SELECT COUNT(*), AVG(u - r) FROM photoobj WHERE u - r < 2.22").unwrap();
        assert_eq!(count_aggregates(&q), 2);
        assert_eq!(count_math_ops(&q), 2);
    }

    #[test]
    fn walks_order_by_exprs() {
        let q = parse("SELECT a FROM t ORDER BY b DESC").unwrap();
        let cols = collect_columns(&q);
        assert_eq!(cols.len(), 2);
    }

    #[test]
    fn walks_derived_tables() {
        let q = parse("SELECT x.a FROM (SELECT a FROM t) AS x").unwrap();
        assert_eq!(count_subqueries(&q), 1);
        assert_eq!(collect_tables(&q), vec!["t".to_string()]);
    }
}
