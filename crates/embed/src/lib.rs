//! # sb-embed — sentence embeddings and the discriminative phase
//!
//! The paper uses SentenceBERT embeddings twice: as an automatic metric
//! (Table 3's "SentenceBERT" row) and inside the discriminative phase
//! (Phase 4), which keeps the candidate NL questions closest to the
//! geometric median of all candidates (Equation 1).
//!
//! This crate substitutes a deterministic, dependency-free embedding: each
//! sentence is mapped to a 256-dimensional vector by signed feature hashing
//! of its lower-cased word unigrams, word bigrams, and character trigrams,
//! then L2-normalized. Paraphrases share most n-grams and land close in
//! cosine space, which is the only property the pipeline relies on.

pub mod discriminate;

pub use discriminate::{select_top_k, Discriminator};

/// Embedding dimensionality.
pub const DIM: usize = 256;

/// A dense sentence embedding.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding(pub [f32; DIM]);

impl Embedding {
    /// The zero vector (embedding of an empty sentence).
    pub fn zero() -> Self {
        Embedding([0.0; DIM])
    }

    /// Cosine similarity in `[-1, 1]`; 0 when either vector is zero.
    pub fn cosine(&self, other: &Embedding) -> f32 {
        let mut dot = 0.0f32;
        let mut na = 0.0f32;
        let mut nb = 0.0f32;
        for i in 0..DIM {
            dot += self.0[i] * other.0[i];
            na += self.0[i] * self.0[i];
            nb += other.0[i] * other.0[i];
        }
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            // Clamp away float rounding that can push a self-similarity
            // infinitesimally past 1.
            (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0)
        }
    }
}

/// FNV-1a 64-bit hash — stable across platforms and runs, which keeps the
/// whole benchmark build deterministic.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn add_feature(v: &mut [f32; DIM], feature: &str, weight: f32) {
    let h = fnv1a(feature.as_bytes());
    let idx = (h % DIM as u64) as usize;
    // The next bit decides the sign: signed hashing keeps the expectation
    // of collisions at zero.
    let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
    v[idx] += sign * weight;
}

/// Lower-case word tokens (alphanumeric runs).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Embed a sentence: signed-hash word unigrams (weight 1.0), word bigrams
/// (0.7) and character trigrams (0.3), then L2-normalize.
pub fn embed(text: &str) -> Embedding {
    let tokens = tokenize(text);
    let mut v = [0.0f32; DIM];
    for t in &tokens {
        add_feature(&mut v, &format!("w:{t}"), 1.0);
    }
    for pair in tokens.windows(2) {
        add_feature(&mut v, &format!("b:{} {}", pair[0], pair[1]), 0.7);
    }
    let joined = tokens.join(" ");
    let chars: Vec<char> = joined.chars().collect();
    for tri in chars.windows(3) {
        let g: String = tri.iter().collect();
        add_feature(&mut v, &format!("c:{g}"), 0.3);
    }
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in &mut v {
            *x /= norm;
        }
    }
    Embedding(v)
}

/// Mean cosine similarity of aligned sentence pairs — the corpus-level
/// "SentenceBERT score" used in Table 3.
pub fn corpus_similarity(pairs: &[(String, String)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let total: f64 = pairs
        .iter()
        .map(|(a, b)| embed(a).cosine(&embed(b)) as f64)
        .sum();
    total / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_lowercases_and_splits() {
        assert_eq!(
            tokenize("Find all Starburst-galaxies!"),
            vec!["find", "all", "starburst", "galaxies"]
        );
        assert!(tokenize("  ").is_empty());
    }

    #[test]
    fn identical_sentences_have_cosine_one() {
        let a = embed("find all starburst galaxies");
        let b = embed("find all starburst galaxies");
        assert!((a.cosine(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn paraphrases_are_closer_than_unrelated() {
        let q = embed("Find all the starburst galaxies");
        let para = embed("Return every galaxy in the starburst class");
        let unrelated = embed("How many EU projects started in 2020?");
        assert!(q.cosine(&para) > q.cosine(&unrelated));
    }

    #[test]
    fn embeddings_are_normalized() {
        let e = embed("some sentence with several words");
        let norm: f32 = e.0.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_sentence_is_zero() {
        assert_eq!(embed(""), Embedding::zero());
        assert_eq!(embed("").cosine(&embed("hello")), 0.0);
    }

    #[test]
    fn determinism() {
        let a = embed("right ascension and declination");
        let b = embed("right ascension and declination");
        assert_eq!(a, b);
    }

    #[test]
    fn corpus_similarity_averages() {
        let pairs = vec![
            ("same text".to_string(), "same text".to_string()),
            ("".to_string(), "anything".to_string()),
        ];
        let s = corpus_similarity(&pairs);
        assert!((s - 0.5).abs() < 1e-6);
        assert_eq!(corpus_similarity(&[]), 0.0);
    }

    #[test]
    fn cosine_is_symmetric_and_bounded() {
        let texts = [
            "show the count of spectroscopic objects",
            "what is the redshift of galaxies",
            "list projects funded by the EU",
        ];
        for a in &texts {
            for b in &texts {
                let ea = embed(a);
                let eb = embed(b);
                let s1 = ea.cosine(&eb);
                let s2 = eb.cosine(&ea);
                assert!((s1 - s2).abs() < 1e-6);
                assert!((-1.0..=1.0).contains(&s1));
            }
        }
    }
}
