//! Phase 4: the discriminative (candidate-selection) phase.
//!
//! Given the candidate NL questions generated for one SQL query, select the
//! `k ∈ {1, 2}` candidates whose embeddings are closest to the *geometric
//! median* of all candidates (Equation 1 of the paper, after the
//! centroid-based summarization method of Rossiello et al.).

use crate::{embed, Embedding};

/// The discriminative-phase selector.
#[derive(Debug, Clone)]
pub struct Discriminator {
    /// How many candidates to keep (the paper uses 1 or 2).
    pub k: usize,
}

impl Default for Discriminator {
    fn default() -> Self {
        Discriminator { k: 2 }
    }
}

impl Discriminator {
    /// Create a selector keeping `k` candidates.
    pub fn new(k: usize) -> Self {
        Discriminator { k }
    }

    /// Select the best candidates, returned in selection order (best
    /// first). Ties break toward the earlier candidate for determinism.
    pub fn select<'a>(&self, candidates: &'a [String]) -> Vec<&'a String> {
        select_top_k(candidates, self.k)
    }
}

/// Geometric median of a set of embeddings via Weiszfeld's algorithm
/// (a handful of iterations is plenty at this dimensionality and set
/// size).
pub fn geometric_median(points: &[Embedding]) -> Embedding {
    if points.is_empty() {
        return Embedding::zero();
    }
    // Initialize at the centroid.
    let mut m = [0.0f32; crate::DIM];
    for p in points {
        for (mi, pi) in m.iter_mut().zip(p.0.iter()) {
            *mi += *pi;
        }
    }
    for x in &mut m {
        *x /= points.len() as f32;
    }
    for _ in 0..16 {
        let mut num = [0.0f32; crate::DIM];
        let mut denom = 0.0f32;
        let mut coincident = false;
        for p in points {
            let mut d2 = 0.0f32;
            for (pi, mi) in p.0.iter().zip(m.iter()) {
                let diff = pi - mi;
                d2 += diff * diff;
            }
            let d = d2.sqrt();
            if d < 1e-9 {
                coincident = true;
                continue;
            }
            let w = 1.0 / d;
            for (ni, pi) in num.iter_mut().zip(p.0.iter()) {
                *ni += w * pi;
            }
            denom += w;
        }
        if denom == 0.0 || coincident && denom < 1e-9 {
            break;
        }
        for i in 0..crate::DIM {
            m[i] = num[i] / denom;
        }
    }
    Embedding(m)
}

/// Equation 1: keep the `k` candidates whose embeddings have the highest
/// cosine similarity to the geometric median of all candidate embeddings.
/// The selection is iterative — after taking the best candidate, the next
/// is chosen from the remainder — matching the paper's
/// "perform this process k times on X \ {y}" description.
pub fn select_top_k(candidates: &[String], k: usize) -> Vec<&String> {
    if candidates.is_empty() || k == 0 {
        return Vec::new();
    }
    let embeddings: Vec<Embedding> = candidates.iter().map(|c| embed(c)).collect();
    let mut remaining: Vec<usize> = (0..candidates.len()).collect();
    let mut picked = Vec::new();
    for _ in 0..k.min(candidates.len()) {
        let pts: Vec<Embedding> = remaining.iter().map(|&i| embeddings[i].clone()).collect();
        let median = geometric_median(&pts);
        let best_pos = remaining
            .iter()
            .enumerate()
            .max_by(|(_, &a), (_, &b)| {
                embeddings[a]
                    .cosine(&median)
                    .partial_cmp(&embeddings[b].cosine(&median))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    // Stable tie-break: prefer the earlier candidate.
                    .then_with(|| b.cmp(&a))
            })
            .map(|(pos, _)| pos)
            .expect("remaining is non-empty");
        picked.push(remaining.remove(best_pos));
    }
    picked.into_iter().map(|i| &candidates[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_the_consensus_candidate() {
        // Four near-paraphrases and one outlier: the consensus phrasing
        // must win, the outlier must lose.
        let candidates = vec![
            "find the center object with neighbor mode 2".to_string(),
            "find the center objects which have neighbor mode 2".to_string(),
            "show the center object with neighbor mode 2".to_string(),
            "find center objects whose neighbor mode is 2".to_string(),
            "what is the weather in zurich today".to_string(),
        ];
        let top = select_top_k(&candidates, 2);
        assert_eq!(top.len(), 2);
        assert!(
            !top.contains(&&candidates[4]),
            "outlier must not be selected"
        );
    }

    #[test]
    fn k_larger_than_set_is_clamped() {
        let candidates = vec!["only one".to_string()];
        let top = select_top_k(&candidates, 2);
        assert_eq!(top, vec![&candidates[0]]);
    }

    #[test]
    fn empty_input() {
        assert!(select_top_k(&[], 2).is_empty());
        let c = vec!["a".to_string()];
        assert!(select_top_k(&c, 0).is_empty());
    }

    #[test]
    fn selection_is_deterministic() {
        let candidates: Vec<String> = (0..6)
            .map(|i| format!("list all galaxies with redshift over {i}"))
            .collect();
        let a: Vec<String> = select_top_k(&candidates, 2).into_iter().cloned().collect();
        let b: Vec<String> = select_top_k(&candidates, 2).into_iter().cloned().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn geometric_median_of_identical_points() {
        let p = embed("same");
        let m = geometric_median(&[p.clone(), p.clone(), p.clone()]);
        assert!(m.cosine(&p) > 0.999);
    }

    #[test]
    fn discriminator_defaults_to_two() {
        let d = Discriminator::default();
        assert_eq!(d.k, 2);
        let candidates = vec![
            "alpha beta gamma".to_string(),
            "alpha beta gamma".to_string(),
            "delta epsilon".to_string(),
        ];
        assert_eq!(d.select(&candidates).len(), 2);
    }
}
