//! Fuzzed invariant: for every statement the engine executes
//! successfully, the recorded [`sb_obs::QueryProfile`] must satisfy
//! row-flow **conservation** — each operator's output feeds the next
//! operator's input exactly, across every execution configuration.
//!
//! Per domain, `SB_FUZZ_COUNT` generated statements (default 500, same
//! base seeds as the differential campaign) run under a curated set of
//! exec-option axes spanning the row interpreter, compiled programs,
//! serial columnar kernels, morsel-parallel execution, nested-loop
//! joins and pushdown-off. For each success:
//!
//! - `ProfileSnapshot::check_conservation()` holds: every reserved scan
//!   was touched, join step `j`'s `rows_in` equals its recorded
//!   left-input rows plus the probed scan's `rows_out`, and the
//!   filter → aggregate → distinct → order chain hands off exactly;
//! - when the top-level `FROM` names only base tables, each scan's
//!   `rows_in` equals that table's row count — the profile measures the
//!   real input, not a post-filtered view;
//! - blocks are present exactly because a profile was requested
//!   (`execute_with_profile(.., None)` is separately pinned byte-equal
//!   in `tests/engine_equivalence.rs`).
//!
//! Errors are skipped: a failed statement abandons its block
//! mid-record, so no flow invariant is owed.

use sb_data::Domain;
use sb_engine::{execute_with_profile, Database, ExecOptions, JoinStrategy};
use sb_fuzz::{fuzz_database, QueryGenerator};
use sb_obs::QueryProfile;
use sb_sql::{Query, SetExpr, TableFactor};

const DEFAULT_COUNT: usize = 500;

fn fuzz_count() -> usize {
    std::env::var("SB_FUZZ_COUNT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_COUNT)
}

/// The exec-option axes. Not the fuzz oracle's full 96-config matrix —
/// one representative per code path the profile plumbing threads
/// through (row/compiled/columnar/parallel, join strategies, pushdown).
fn axes() -> Vec<(&'static str, ExecOptions)> {
    let base = ExecOptions::default();
    vec![
        ("default", base),
        (
            "row",
            ExecOptions {
                columnar: false,
                parallel: false,
                ..base
            },
        ),
        (
            "interpreted",
            ExecOptions {
                compiled: false,
                columnar: false,
                parallel: false,
                ..base
            },
        ),
        (
            "parallel-3",
            ExecOptions {
                parallel: true,
                workers: 3,
                morsel_rows: 7,
                ..base
            },
        ),
        (
            "nested-loop",
            ExecOptions {
                join: JoinStrategy::NestedLoop,
                ..base
            },
        ),
        (
            "no-pushdown",
            ExecOptions {
                predicate_pushdown: false,
                ..base
            },
        ),
    ]
}

/// Base-table names of the top-level `FROM`/`JOIN` factors, in scan
/// order — or `None` when any factor is a derived table (its scan reads
/// materialized rows, not a base table) or the body is a set operation
/// (scan order then interleaves across blocks).
fn top_level_base_tables(query: &Query) -> Option<Vec<String>> {
    let SetExpr::Select(select) = &query.body else {
        return None;
    };
    std::iter::once(&select.from)
        .chain(select.joins.iter().map(|j| &j.table))
        .map(|tr| match &tr.factor {
            TableFactor::Table(name) => Some(name.clone()),
            TableFactor::Derived(_) => None,
        })
        .collect()
}

fn check_campaign(domain: Domain, base_seed: u64) {
    let db = fuzz_database(domain);
    let mut gen = QueryGenerator::new(&db, base_seed);
    let queries: Vec<_> = (0..fuzz_count()).map(|_| gen.query()).collect();

    let mut checked = 0usize;
    for (qi, query) in queries.iter().enumerate() {
        let tables = top_level_base_tables(query);
        for (axis, opts) in axes() {
            let prof = QueryProfile::new();
            if execute_with_profile(&db, query, opts, Some(&prof)).is_err() {
                continue;
            }
            let snap = prof.snapshot();
            assert!(
                !snap.blocks.is_empty(),
                "{} #{qi} [{axis}]: successful profiled run recorded no blocks: {query}",
                domain.name()
            );
            snap.check_conservation().unwrap_or_else(|e| {
                panic!(
                    "{} #{qi} [{axis}]: conservation violated ({e}) for: {query}",
                    domain.name()
                )
            });
            check_scan_inputs(&db, &snap, tables.as_deref(), domain, qi, axis, query);
            checked += 1;
        }
    }
    assert!(
        checked > fuzz_count(),
        "{}: campaign executed too few statements successfully ({checked})",
        domain.name()
    );
}

/// Scan `rows_in` must equal the base table's length for the top-level
/// block — every row enters the scan; selection happens on the way out.
fn check_scan_inputs(
    db: &Database,
    snap: &sb_obs::ProfileSnapshot,
    tables: Option<&[String]>,
    domain: Domain,
    qi: usize,
    axis: &str,
    query: &Query,
) {
    let (Some(tables), Some(block)) = (tables, snap.blocks.first()) else {
        return;
    };
    if !block.slotted {
        return;
    }
    for (i, name) in tables.iter().enumerate() {
        let Some(op) = block.scans.get(i).copied().flatten() else {
            continue;
        };
        let expected = db
            .table(name)
            .unwrap_or_else(|| panic!("{}: unknown table `{name}`", domain.name()))
            .len() as u64;
        assert_eq!(
            op.rows_in,
            expected,
            "{} #{qi} [{axis}]: scan {i} ({name}) rows_in {} != table len {expected} for: {query}",
            domain.name(),
            op.rows_in
        );
    }
}

#[test]
fn profile_conservation_cordis() {
    check_campaign(Domain::Cordis, 0xC0D15);
}

#[test]
fn profile_conservation_sdss() {
    check_campaign(Domain::Sdss, 0x5D55);
}

#[test]
fn profile_conservation_oncomx() {
    check_campaign(Domain::OncoMx, 0x0C0);
}
