//! Bounded differential fuzz campaign: the tier-1 smoke run.
//!
//! Each domain gets `SB_FUZZ_COUNT` queries (default 2,000) from a
//! fixed base seed; every query is round-tripped through the printer
//! and parser and executed under the full `ExecOptions` matrix against
//! the reference interpreter. Any disagreement fails the test and
//! prints seed + original + shrunk reproducer, ready to paste into a
//! regression test.
//!
//! For longer sessions: `SB_FUZZ_COUNT=50000 cargo test -p sb-fuzz`.

use sb_data::Domain;
use sb_fuzz::{fuzz_database, run_fuzz, QueryGenerator};
use sb_metrics::hardness::{classify, Hardness};

/// Default queries per domain; keep in sync with the README note.
const DEFAULT_COUNT: usize = 2_000;

fn fuzz_count() -> usize {
    std::env::var("SB_FUZZ_COUNT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_COUNT)
}

fn campaign(domain: Domain, base_seed: u64) {
    let failures = run_fuzz(domain, base_seed, fuzz_count());
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("[{}] {f}", domain.name());
        }
        panic!(
            "{} oracle failure(s) on {} (see reproducers above)",
            failures.len(),
            domain.name()
        );
    }
}

#[test]
fn differential_cordis() {
    campaign(Domain::Cordis, 0xC0D15);
}

#[test]
fn differential_sdss() {
    campaign(Domain::Sdss, 0x5D55);
}

#[test]
fn differential_oncomx() {
    campaign(Domain::OncoMx, 0x0C0);
}

/// The generator's clause weights must make every Spider hardness
/// bucket reachable — otherwise whole engine paths go unfuzzed.
#[test]
fn generator_reaches_every_hardness_bucket() {
    for domain in Domain::ALL {
        let db = fuzz_database(domain);
        let mut gen = QueryGenerator::new(&db, 7);
        let mut seen = [false; 4];
        for _ in 0..500 {
            let q = gen.query();
            let idx = Hardness::ALL
                .iter()
                .position(|h| *h == classify(&q))
                .unwrap();
            seen[idx] = true;
        }
        assert_eq!(
            seen,
            [true; 4],
            "{}: some hardness bucket unreachable in 500 queries",
            domain.name()
        );
    }
}
