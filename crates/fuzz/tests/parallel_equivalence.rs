//! Thread-count equivalence: the morsel-parallel engine must produce
//! **byte-identical** output at any worker count.
//!
//! Each domain's campaign (`SB_FUZZ_COUNT` queries, default 2,000, from
//! the same base seeds as the differential smoke) executes every query
//! under the parallel columnar configuration at 1, 2 and 8 workers with
//! a morsel small enough to split the 24-row fuzz tables, then
//! byte-compares the `Debug`-rendered outcome streams. This pins the
//! deterministic-merge contract directly: not multiset agreement, not
//! "same rows in some order" — the identical bytes, including which
//! statements bail to the row path and which errors surface.
//!
//! One additional test drives worker-count resolution through the
//! `RAYON_NUM_THREADS` environment variable (the deployment knob) to
//! pin that `workers: 0` + env resolves through the same code path.

use sb_data::Domain;
use sb_engine::{execute_with, Database, ExecOptions};
use sb_fuzz::{fuzz_database, QueryGenerator};

/// Queries per domain; honors `SB_FUZZ_COUNT` like the differential
/// smoke so long campaigns scale both tests together.
const DEFAULT_COUNT: usize = 2_000;

/// Splits the 24-row fuzz tables into four morsels per scan so the
/// merge paths actually run (at the default 64K-row morsel every fuzz
/// query would collapse to the single-morsel serial case).
const MORSEL_ROWS: usize = 7;

fn fuzz_count() -> usize {
    std::env::var("SB_FUZZ_COUNT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_COUNT)
}

fn parallel_opts(workers: usize) -> ExecOptions {
    ExecOptions {
        columnar: true,
        parallel: true,
        workers,
        morsel_rows: MORSEL_ROWS,
        ..ExecOptions::default()
    }
}

/// Render one campaign's outcome stream to bytes. Errors render by
/// their message: a worker count that changed *which* error surfaced
/// would be a determinism bug even if both runs "errored".
fn campaign_bytes(db: &Database, queries: &[sb_sql::Query], opts: ExecOptions) -> String {
    let mut out = String::new();
    for (i, query) in queries.iter().enumerate() {
        match execute_with(db, query, opts) {
            Ok(rs) => out.push_str(&format!("#{i} ok {rs:?}\n")),
            Err(e) => out.push_str(&format!("#{i} err {e}\n")),
        }
    }
    out
}

fn assert_equivalent(domain: Domain, base_seed: u64) {
    let db = fuzz_database(domain);
    let mut gen = QueryGenerator::new(&db, base_seed);
    let queries: Vec<_> = (0..fuzz_count()).map(|_| gen.query()).collect();

    let serial = campaign_bytes(&db, &queries, parallel_opts(1));
    for workers in [2, 8] {
        let parallel = campaign_bytes(&db, &queries, parallel_opts(workers));
        if serial != parallel {
            let diff = serial
                .lines()
                .zip(parallel.lines())
                .find(|(a, b)| a != b)
                .map(|(a, b)| format!("  1 worker:  {a}\n  {workers} workers: {b}"))
                .unwrap_or_else(|| "  (streams differ in length)".to_string());
            panic!(
                "{}: output at {workers} workers differs from 1 worker; first divergence:\n{diff}",
                domain.name()
            );
        }
    }
}

#[test]
fn parallel_equivalence_cordis() {
    assert_equivalent(Domain::Cordis, 0xC0D15);
}

#[test]
fn parallel_equivalence_sdss() {
    assert_equivalent(Domain::Sdss, 0x5D55);
}

#[test]
fn parallel_equivalence_oncomx() {
    assert_equivalent(Domain::OncoMx, 0x0C0);
}

/// `workers: 0` resolves through `RAYON_NUM_THREADS` — the knob
/// deployments use. Safe to mutate here: every other test in this
/// binary pins `workers` explicitly and never consults the variable.
#[test]
fn rayon_num_threads_env_controls_worker_resolution() {
    let db = fuzz_database(Domain::Sdss);
    let mut gen = QueryGenerator::new(&db, 0x7EAD);
    let queries: Vec<_> = (0..200).map(|_| gen.query()).collect();
    let env_opts = ExecOptions {
        workers: 0,
        ..parallel_opts(0)
    };

    let mut streams = Vec::new();
    for threads in ["1", "2", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        streams.push(campaign_bytes(&db, &queries, env_opts));
    }
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(
        streams[0], streams[1],
        "RAYON_NUM_THREADS=2 output differs from =1"
    );
    assert_eq!(
        streams[0], streams[2],
        "RAYON_NUM_THREADS=8 output differs from =1"
    );
}
