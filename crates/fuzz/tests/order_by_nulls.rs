//! ORDER BY NULL placement and tie handling, pinned on a fixture and
//! then cross-checked on every domain database.
//!
//! The engine's deliberate divergence from Postgres: `Value::total_cmp`
//! sorts NULL *first* under ASC (Postgres defaults to NULLS LAST), and
//! therefore last under DESC. These tests pin that contract explicitly,
//! then demand strict ordered-list agreement — not just multiset
//! equality — between every point of the executor configuration matrix
//! (including the cost-based planner and its top-K fusion under LIMIT)
//! and the reference interpreter, over every fuzz domain.

use sb_data::Domain;
use sb_engine::{execute_reference, execute_with, Database, Value};
use sb_fuzz::{exec_matrix, fuzz_database};
use sb_schema::{Column, ColumnType, Schema, TableDef};

fn fixture() -> Database {
    let schema = Schema::new("nulls").with_table(TableDef::new(
        "t",
        vec![
            Column::pk("id", ColumnType::Int),
            Column::new("v", ColumnType::Int),
        ],
    ));
    let mut db = Database::new(schema);
    db.table_mut("t").unwrap().push_rows(vec![
        vec![1.into(), 5.into()],
        vec![2.into(), Value::Null],
        vec![3.into(), 5.into()],
        vec![4.into(), 1.into()],
        vec![5.into(), Value::Null],
    ]);
    db
}

/// Ordered rows of one query under one configuration, unwrapped.
fn ordered(db: &Database, sql: &str, opts: sb_engine::ExecOptions) -> Vec<Vec<Value>> {
    let q = sb_sql::parse(sql).unwrap();
    execute_with(db, &q, opts).unwrap().rows
}

#[test]
fn nulls_sort_first_ascending_and_last_descending() {
    let db = fixture();
    for (name, opts) in exec_matrix() {
        let asc = ordered(&db, "SELECT v, id FROM t ORDER BY v", opts);
        assert_eq!(
            asc,
            vec![
                vec![Value::Null, 2.into()],
                vec![Value::Null, 5.into()],
                vec![1.into(), 4.into()],
                vec![5.into(), 1.into()],
                vec![5.into(), 3.into()],
            ],
            "[{name}] ASC: NULLs first, ties in input order"
        );
        let desc = ordered(&db, "SELECT v, id FROM t ORDER BY v DESC", opts);
        assert_eq!(
            desc,
            vec![
                vec![5.into(), 1.into()],
                vec![5.into(), 3.into()],
                vec![1.into(), 4.into()],
                vec![Value::Null, 2.into()],
                vec![Value::Null, 5.into()],
            ],
            "[{name}] DESC: NULLs last, ties stay in input order"
        );
        // The bounded top-K heap under LIMIT must agree with a full
        // sort truncated — including where the NULLs land.
        let top = ordered(&db, "SELECT v, id FROM t ORDER BY v LIMIT 3", opts);
        assert_eq!(top, asc[..3].to_vec(), "[{name}] top-K prefix");
        let top = ordered(&db, "SELECT v, id FROM t ORDER BY v DESC LIMIT 2", opts);
        assert_eq!(top, desc[..2].to_vec(), "[{name}] top-K prefix DESC");
    }
}

/// Every domain database, every table, every column: ORDER BY that
/// column (both directions, with and without LIMIT) and demand the
/// exact row list the reference interpreter produces, under every
/// configuration. This sweeps real NULL-bearing data — the fuzz
/// loaders leave NULLs in nullable columns — through top-K fusion,
/// projection pruning, and both join-free scan paths.
#[test]
fn ordered_lists_agree_with_reference_across_domains() {
    for domain in [Domain::Cordis, Domain::Sdss, Domain::OncoMx] {
        let db = fuzz_database(domain);
        for table in &db.schema.tables {
            for col in &table.columns {
                for (dir, limit) in [
                    ("ASC", ""),
                    ("DESC", ""),
                    ("ASC", " LIMIT 7"),
                    ("DESC", " LIMIT 7"),
                ] {
                    let sql = format!(
                        "SELECT {c} FROM {t} ORDER BY {c} {dir}{limit}",
                        c = col.name,
                        t = table.name,
                    );
                    let q = sb_sql::parse(&sql).unwrap();
                    let expected = execute_reference(&db, &q).unwrap().rows;
                    for (name, opts) in exec_matrix() {
                        let got = execute_with(&db, &q, opts).unwrap().rows;
                        assert_eq!(got, expected, "[{name}] ordered rows diverge on {sql}");
                    }
                }
            }
        }
    }
}
