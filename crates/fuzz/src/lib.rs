//! # sb-fuzz — schema-aware SQL fuzzing with a differential oracle
//!
//! The benchmark's execution-accuracy metric, its executability filter
//! and its data profiler all lean on `sb-engine` returning *correct*
//! results, so the engine gets its own adversary: a fuzzer that
//! generates well-typed queries directly over the CORDIS / SDSS /
//! OncoMX schemas and cross-checks every executor configuration against
//! a deliberately naive reference interpreter
//! ([`sb_engine::execute_reference`]).
//!
//! - [`generator::QueryGenerator`] — seeded, schema-aware random query
//!   generation (joins over FK edges, predicate trees with literals
//!   sampled from real column values, grouping, set operations,
//!   subqueries).
//! - [`oracle`] — the differential check: parse↔print↔parse round trip,
//!   then reference vs. the full `ExecOptions` matrix.
//! - [`shrink`] — greedy AST minimization of failing queries.
//! - [`run_fuzz`] — a bounded campaign over one domain; failures come
//!   back with the seed, the original SQL and a shrunk reproducer.
//!
//! Replay a failure with the `fuzz` binary:
//! `cargo run --release -p sb-fuzz --bin fuzz -- --domain sdss --seed 42 --count 1`.

pub mod generator;
pub mod oracle;
pub mod shrink;

pub use generator::QueryGenerator;
pub use oracle::{check_query, exec_matrix, Disagreement, Outcome};
pub use shrink::shrink;

use sb_data::{Domain, SizeClass};
use sb_engine::Database;

/// Rows kept per table for fuzzing. Tiny-size domain tables hold a few
/// hundred rows; with up to three joins per query that is far more
/// cardinality than the oracle needs, and the naive reference
/// interpreter is O(n^joins). Two dozen rows per table keeps a
/// multi-thousand-query campaign in seconds while still exercising
/// NULLs, duplicates and empty join matches.
pub const FUZZ_ROWS_PER_TABLE: usize = 24;

/// One oracle failure from a fuzz campaign.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Seed that regenerates the query (feed to [`QueryGenerator::new`]).
    pub seed: u64,
    /// Index of the query within the seed's sequence.
    pub index: usize,
    /// The failing query as SQL.
    pub sql: String,
    /// Minimal shrunk reproducer as SQL.
    pub shrunk: String,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "seed {} query #{}: {}",
            self.seed, self.index, self.detail
        )?;
        writeln!(f, "  original: {}", self.sql)?;
        write!(f, "  shrunk:   {}", self.shrunk)
    }
}

/// Build a domain database sized for fuzzing: the Tiny size class with
/// every table truncated to [`FUZZ_ROWS_PER_TABLE`] rows.
pub fn fuzz_database(domain: Domain) -> Database {
    let mut db = domain.build(SizeClass::Tiny).db;
    let names: Vec<String> = db.schema.tables.iter().map(|t| t.name.clone()).collect();
    for name in names {
        if let Some(table) = db.table_mut(&name) {
            table.rows.truncate(FUZZ_ROWS_PER_TABLE);
        }
    }
    db
}

/// One serving-workload query, generated from a deterministic
/// *per-index* RNG stream: request `index` is a function of
/// `(database, base_seed, index)` only, never of which client issues
/// it or how many clients exist. This is what lets the `sb-serve` load
/// generator replay a byte-identical total workload at any client
/// count (the same per-index seeding discipline as the rayon-parallel
/// generation pipeline).
pub fn workload_query(db: &Database, base_seed: u64, index: u64) -> sb_sql::Query {
    let mut gen = QueryGenerator::new(db, base_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    gen.query()
}

/// Run a bounded fuzz campaign: `count` queries generated from
/// `base_seed` against `domain`, each checked by the differential
/// oracle. Returns every failure, shrunk.
pub fn run_fuzz(domain: Domain, base_seed: u64, count: usize) -> Vec<Failure> {
    let campaign = sb_obs::span("fuzz.campaign");
    let db = fuzz_database(domain);
    let mut gen = QueryGenerator::new(&db, base_seed);
    let mut failures = Vec::new();
    for index in 0..count {
        let query = gen.query();
        if let Err(detail) = check_query(&db, &query) {
            let shrunk = shrink(&query, |cand| check_query(&db, cand).is_err());
            failures.push(Failure {
                seed: base_seed,
                index,
                sql: query.to_string(),
                shrunk: shrunk.to_string(),
                detail: detail.to_string(),
            });
        }
    }
    if sb_obs::enabled() {
        sb_obs::count("fuzz.queries_generated", count as u64);
        sb_obs::count("fuzz.failures", failures.len() as u64);
    }
    drop(campaign);
    failures
}
