//! Schema-aware random query generation.
//!
//! Queries are generated directly as `sb_sql` ASTs, never as strings, so
//! every query is syntactically valid by construction and the
//! parse↔print↔parse round-trip check in the oracle exercises the printer
//! and parser rather than the generator. Well-typedness is enforced
//! structurally: join constraints follow foreign-key edges of the schema,
//! comparison literals are sampled from actual column values (so
//! predicates are satisfiable often enough to keep intermediate results
//! interesting), and aggregates are only applied to type-appropriate
//! columns.
//!
//! The clause weights are chosen so that every Spider hardness bucket
//! (easy / medium / hard / extra hard) is reachable: single-table filters
//! for easy, joins and grouping for medium/hard, set operations and
//! subqueries for extra hard.
//!
//! The generator deliberately keeps a few sharp edges in its output
//! distribution — unqualified `ON` columns (ambiguity handling) and
//! occasional out-of-range `ORDER BY` ordinals after set operations
//! (bounds handling) — because those are exactly the places where the
//! optimized executor historically diverged from the reference
//! interpreter.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sb_engine::{Database, Value};
use sb_schema::ColumnType;
use sb_sql::{
    AggArg, AggFunc, BinaryOp, ColumnRef, Expr, Join, Literal, OrderItem, Query, Select,
    SelectItem, SetExpr, SetOp, TableRef, UnaryOp,
};

/// A column visible in the generated FROM clause.
#[derive(Clone)]
struct BoundCol {
    /// Table alias (`T1`, `T2`, ...).
    alias: String,
    /// Column name.
    name: String,
    /// Declared type.
    ty: ColumnType,
    /// Base-table name, for value sampling.
    table: String,
    /// Column index in the base table.
    idx: usize,
}

impl BoundCol {
    fn expr(&self) -> Expr {
        Expr::Column(ColumnRef::qualified(&self.alias, &self.name))
    }

    fn numeric(&self) -> bool {
        matches!(self.ty, ColumnType::Int | ColumnType::Float)
    }
}

/// Deterministic random query generator over one database.
pub struct QueryGenerator<'a> {
    db: &'a Database,
    rng: StdRng,
}

impl<'a> QueryGenerator<'a> {
    /// Create a generator; the same `(database, seed)` pair always yields
    /// the same query sequence.
    pub fn new(db: &'a Database, seed: u64) -> Self {
        QueryGenerator {
            db,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generate the next random query.
    pub fn query(&mut self) -> Query {
        if self.rng.gen_bool(0.12) {
            self.set_query()
        } else {
            self.select_query()
        }
    }

    // -----------------------------------------------------------------
    // Single-SELECT queries.
    // -----------------------------------------------------------------

    fn select_query(&mut self) -> Query {
        let (from, joins, bound) = self.join_tree();
        let mut select = Select {
            distinct: false,
            projections: Vec::new(),
            from,
            joins,
            selection: None,
            group_by: Vec::new(),
            having: None,
        };
        if self.rng.gen_bool(0.7) {
            select.selection = Some(self.predicate(2, &bound));
        }

        let mut order_by = Vec::new();
        if self.rng.gen_bool(0.3) {
            self.fill_aggregate(&mut select, &mut order_by, &bound);
        } else {
            self.fill_plain(&mut select, &mut order_by, &bound);
        }

        let limit = if self.rng.gen_bool(0.3) {
            Some(self.rng.gen_range(0..25u64))
        } else {
            None
        };
        Query {
            body: SetExpr::Select(Box::new(select)),
            order_by,
            limit,
        }
    }

    /// Plain (non-aggregate) projections, DISTINCT and ORDER BY.
    fn fill_plain(
        &mut self,
        select: &mut Select,
        order_by: &mut Vec<OrderItem>,
        bound: &[BoundCol],
    ) {
        if self.rng.gen_bool(0.08) {
            select.projections.push(SelectItem::Wildcard);
        } else {
            let n = self.rng.gen_range(1..=3usize.min(bound.len()));
            for i in 0..n {
                let col = bound.choose(&mut self.rng).unwrap().clone();
                let expr = if col.numeric() && self.rng.gen_bool(0.15) {
                    self.numeric_expr(&col, bound)
                } else {
                    col.expr()
                };
                // Alias some computed projections so ORDER BY can target
                // the alias-fallback path.
                let alias = if self.rng.gen_bool(0.2) {
                    Some(format!("v{}", i + 1))
                } else {
                    None
                };
                select.projections.push(SelectItem::Expr { expr, alias });
            }
            select.distinct = self.rng.gen_bool(0.15);
        }
        if self.rng.gen_bool(0.4) {
            let n = self.rng.gen_range(1..=2usize);
            for _ in 0..n {
                // Order either by an in-scope column or by a projection
                // alias (bare reference).
                let expr = if self.rng.gen_bool(0.25) {
                    match self.alias_ref(select) {
                        Some(e) => e,
                        None => bound.choose(&mut self.rng).unwrap().expr(),
                    }
                } else {
                    bound.choose(&mut self.rng).unwrap().expr()
                };
                order_by.push(OrderItem {
                    expr,
                    desc: self.rng.gen_bool(0.5),
                });
            }
        }
    }

    /// A bare reference to one of the select's projection aliases.
    fn alias_ref(&mut self, select: &Select) -> Option<Expr> {
        let aliases: Vec<&String> = select
            .projections
            .iter()
            .filter_map(|p| match p {
                SelectItem::Expr { alias: Some(a), .. } => Some(a),
                _ => None,
            })
            .collect();
        aliases
            .choose(&mut self.rng)
            .map(|a| Expr::Column(ColumnRef::bare(a)))
    }

    /// GROUP BY + aggregate projections, HAVING and ORDER BY.
    fn fill_aggregate(
        &mut self,
        select: &mut Select,
        order_by: &mut Vec<OrderItem>,
        bound: &[BoundCol],
    ) {
        let n_keys = if self.rng.gen_bool(0.25) {
            0 // global aggregate, single implicit group
        } else {
            self.rng.gen_range(1..=2usize.min(bound.len()))
        };
        let mut keys = Vec::new();
        for _ in 0..n_keys {
            let col = bound.choose(&mut self.rng).unwrap().clone();
            if !keys
                .iter()
                .any(|k: &BoundCol| k.alias == col.alias && k.name == col.name)
            {
                keys.push(col);
            }
        }
        for k in &keys {
            select.group_by.push(k.expr());
            select.projections.push(SelectItem::expr(k.expr()));
        }
        let n_aggs = self.rng.gen_range(1..=2usize);
        let mut agg_exprs = Vec::new();
        for _ in 0..n_aggs {
            let agg = self.aggregate(bound);
            agg_exprs.push(agg.clone());
            select.projections.push(SelectItem::expr(agg));
        }
        if self.rng.gen_bool(0.4) {
            let lhs = if self.rng.gen_bool(0.7) {
                Expr::Agg {
                    func: AggFunc::Count,
                    distinct: false,
                    arg: AggArg::Star,
                }
            } else {
                agg_exprs.choose(&mut self.rng).unwrap().clone()
            };
            let op = *[BinaryOp::GtEq, BinaryOp::Gt, BinaryOp::LtEq]
                .choose(&mut self.rng)
                .unwrap();
            let n = self.rng.gen_range(0..4i64);
            select.having = Some(Expr::binary(lhs, op, Expr::int(n)));
        }
        if self.rng.gen_bool(0.4) {
            let expr = if !keys.is_empty() && self.rng.gen_bool(0.5) {
                keys.choose(&mut self.rng).unwrap().expr()
            } else {
                agg_exprs
                    .choose(&mut self.rng)
                    .cloned()
                    .unwrap_or(Expr::Agg {
                        func: AggFunc::Count,
                        distinct: false,
                        arg: AggArg::Star,
                    })
            };
            order_by.push(OrderItem {
                expr,
                desc: self.rng.gen_bool(0.5),
            });
        }
    }

    /// A type-correct aggregate call.
    fn aggregate(&mut self, bound: &[BoundCol]) -> Expr {
        let numeric: Vec<&BoundCol> = bound.iter().filter(|c| c.numeric()).collect();
        let pick = self.rng.gen_range(0..5u8);
        match pick {
            0 => Expr::Agg {
                func: AggFunc::Count,
                distinct: false,
                arg: AggArg::Star,
            },
            1 => {
                let col = bound.choose(&mut self.rng).unwrap();
                Expr::Agg {
                    func: AggFunc::Count,
                    distinct: self.rng.gen_bool(0.4),
                    arg: AggArg::Expr(Box::new(col.expr())),
                }
            }
            2 | 3 if !numeric.is_empty() => {
                let col = numeric.choose(&mut self.rng).unwrap();
                let func = *[AggFunc::Sum, AggFunc::Avg].choose(&mut self.rng).unwrap();
                Expr::Agg {
                    func,
                    distinct: false,
                    arg: AggArg::Expr(Box::new(col.expr())),
                }
            }
            _ => {
                // MIN/MAX works on any single-typed column.
                let col = bound.choose(&mut self.rng).unwrap();
                let func = *[AggFunc::Min, AggFunc::Max].choose(&mut self.rng).unwrap();
                Expr::Agg {
                    func,
                    distinct: false,
                    arg: AggArg::Expr(Box::new(col.expr())),
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // FROM / JOIN tree over foreign-key edges.
    // -----------------------------------------------------------------

    fn join_tree(&mut self) -> (TableRef, Vec<Join>, Vec<BoundCol>) {
        let schema = &self.db.schema;
        let t0 = schema.tables.choose(&mut self.rng).unwrap();
        let mut tables: Vec<(String, String)> = vec![("T1".to_string(), t0.name.clone())];
        let mut joins = Vec::new();
        let n_joins = *[0usize, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 3]
            .choose(&mut self.rng)
            .unwrap();
        for _ in 0..n_joins {
            let mut cands = Vec::new();
            for (alias, tname) in &tables {
                for (this_col, other_table, other_col) in schema.join_edges(tname) {
                    cands.push((alias.clone(), this_col, other_table, other_col));
                }
            }
            let Some((lalias, lcol, rtable, rcol)) = cands.choose(&mut self.rng).cloned() else {
                break;
            };
            let ralias = format!("T{}", tables.len() + 1);
            // Occasionally drop a qualifier: ambiguity handling must not
            // depend on the join strategy.
            let lref = if self.rng.gen_bool(0.02) {
                Expr::Column(ColumnRef::bare(&lcol))
            } else {
                Expr::Column(ColumnRef::qualified(&lalias, &lcol))
            };
            let rref = if self.rng.gen_bool(0.03) {
                Expr::Column(ColumnRef::bare(&rcol))
            } else {
                Expr::Column(ColumnRef::qualified(&ralias, &rcol))
            };
            let (a, b) = if self.rng.gen_bool(0.5) {
                (lref, rref)
            } else {
                (rref, lref)
            };
            joins.push(Join {
                table: TableRef::aliased(&rtable, &ralias),
                constraint: Some(Expr::binary(a, BinaryOp::Eq, b)),
                left: self.rng.gen_bool(0.25),
            });
            tables.push((ralias, rtable));
        }
        let from = TableRef::aliased(&t0.name, "T1");
        let mut bound = Vec::new();
        for (alias, tname) in &tables {
            let def = schema.table(tname).expect("bound table exists");
            for (idx, c) in def.columns.iter().enumerate() {
                bound.push(BoundCol {
                    alias: alias.clone(),
                    name: c.name.clone(),
                    ty: c.ty,
                    table: tname.clone(),
                    idx,
                });
            }
        }
        (from, joins, bound)
    }

    // -----------------------------------------------------------------
    // Predicates.
    // -----------------------------------------------------------------

    fn predicate(&mut self, depth: usize, bound: &[BoundCol]) -> Expr {
        if depth == 0 || self.rng.gen_bool(0.5) {
            return self.leaf_predicate(bound);
        }
        match self.rng.gen_range(0..5u8) {
            0 | 1 => Expr::binary(
                self.predicate(depth - 1, bound),
                BinaryOp::And,
                self.predicate(depth - 1, bound),
            ),
            2 | 3 => Expr::binary(
                self.predicate(depth - 1, bound),
                BinaryOp::Or,
                self.predicate(depth - 1, bound),
            ),
            _ => Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(self.predicate(depth - 1, bound)),
            },
        }
    }

    fn leaf_predicate(&mut self, bound: &[BoundCol]) -> Expr {
        let col = bound.choose(&mut self.rng).unwrap().clone();
        match col.ty {
            ColumnType::Int | ColumnType::Float => self.numeric_leaf(&col, bound),
            ColumnType::Text => self.text_leaf(&col),
            ColumnType::Bool => {
                if self.rng.gen_bool(0.3) {
                    Expr::IsNull {
                        expr: Box::new(col.expr()),
                        negated: self.rng.gen_bool(0.5),
                    }
                } else {
                    Expr::binary(
                        col.expr(),
                        BinaryOp::Eq,
                        Expr::Literal(Literal::Bool(self.rng.gen_bool(0.5))),
                    )
                }
            }
        }
    }

    fn numeric_leaf(&mut self, col: &BoundCol, bound: &[BoundCol]) -> Expr {
        match self.rng.gen_range(0..10u8) {
            0..=4 => {
                let op = *[
                    BinaryOp::Eq,
                    BinaryOp::NotEq,
                    BinaryOp::Lt,
                    BinaryOp::LtEq,
                    BinaryOp::Gt,
                    BinaryOp::GtEq,
                ]
                .choose(&mut self.rng)
                .unwrap();
                let lhs = if self.rng.gen_bool(0.2) {
                    self.numeric_expr(col, bound)
                } else {
                    col.expr()
                };
                Expr::binary(lhs, op, self.sample_literal(col))
            }
            5 => Expr::Between {
                expr: Box::new(col.expr()),
                negated: self.rng.gen_bool(0.25),
                low: Box::new(self.sample_literal(col)),
                high: Box::new(self.sample_literal(col)),
            },
            6 => {
                let n = self.rng.gen_range(1..=3usize);
                Expr::InList {
                    expr: Box::new(col.expr()),
                    negated: self.rng.gen_bool(0.25),
                    list: (0..n).map(|_| self.sample_literal(col)).collect(),
                }
            }
            7 => Expr::IsNull {
                expr: Box::new(col.expr()),
                negated: self.rng.gen_bool(0.5),
            },
            8 => {
                // Column-to-column comparison within the scope.
                let other = bound
                    .iter()
                    .filter(|c| c.numeric())
                    .collect::<Vec<_>>()
                    .choose(&mut self.rng)
                    .map(|c| (*c).clone())
                    .unwrap_or_else(|| col.clone());
                let op = *[BinaryOp::Lt, BinaryOp::GtEq, BinaryOp::NotEq]
                    .choose(&mut self.rng)
                    .unwrap();
                Expr::binary(col.expr(), op, other.expr())
            }
            _ => {
                if self.rng.gen_bool(0.5) {
                    self.subquery_leaf(col)
                } else {
                    Expr::binary(
                        self.numeric_expr(col, bound),
                        *[BinaryOp::Lt, BinaryOp::Gt].choose(&mut self.rng).unwrap(),
                        self.sample_literal(col),
                    )
                }
            }
        }
    }

    /// A small arithmetic expression rooted at `col`.
    fn numeric_expr(&mut self, col: &BoundCol, bound: &[BoundCol]) -> Expr {
        let rhs = if self.rng.gen_bool(0.5) {
            let others: Vec<&BoundCol> = bound.iter().filter(|c| c.numeric()).collect();
            others
                .choose(&mut self.rng)
                .map(|c| c.expr())
                .unwrap_or_else(|| Expr::int(2))
        } else {
            Expr::int(self.rng.gen_range(1..10i64))
        };
        let op = *[BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul, BinaryOp::Div]
            .choose(&mut self.rng)
            .unwrap();
        Expr::binary(col.expr(), op, rhs)
    }

    /// A non-correlated subquery predicate over the column's own base
    /// table (scalar aggregate compare, `IN (SELECT ...)` or `EXISTS`).
    fn subquery_leaf(&mut self, col: &BoundCol) -> Expr {
        let inner_table = TableRef::named(&col.table);
        match self.rng.gen_range(0..3u8) {
            0 => {
                let func = *[AggFunc::Avg, AggFunc::Min, AggFunc::Max]
                    .choose(&mut self.rng)
                    .unwrap();
                let inner = Select {
                    distinct: false,
                    projections: vec![SelectItem::expr(Expr::Agg {
                        func,
                        distinct: false,
                        arg: AggArg::Expr(Box::new(Expr::Column(ColumnRef::bare(&col.name)))),
                    })],
                    from: inner_table,
                    joins: Vec::new(),
                    selection: None,
                    group_by: Vec::new(),
                    having: None,
                };
                let op = *[BinaryOp::Lt, BinaryOp::LtEq, BinaryOp::Gt, BinaryOp::GtEq]
                    .choose(&mut self.rng)
                    .unwrap();
                Expr::binary(
                    col.expr(),
                    op,
                    Expr::Subquery(Box::new(Query::from_select(inner))),
                )
            }
            1 => {
                let inner = Select {
                    distinct: self.rng.gen_bool(0.3),
                    projections: vec![SelectItem::expr(Expr::Column(ColumnRef::bare(&col.name)))],
                    from: inner_table,
                    joins: Vec::new(),
                    selection: None,
                    group_by: Vec::new(),
                    having: None,
                };
                Expr::InSubquery {
                    expr: Box::new(col.expr()),
                    negated: self.rng.gen_bool(0.3),
                    subquery: Box::new(Query::from_select(inner)),
                }
            }
            _ => Expr::Exists {
                negated: self.rng.gen_bool(0.3),
                subquery: Box::new(Query::from_select(Select::star_from(&col.table))),
            },
        }
    }

    fn text_leaf(&mut self, col: &BoundCol) -> Expr {
        match self.rng.gen_range(0..6u8) {
            0 | 1 => Expr::binary(
                col.expr(),
                *[BinaryOp::Eq, BinaryOp::NotEq]
                    .choose(&mut self.rng)
                    .unwrap(),
                self.sample_literal(col),
            ),
            2 => {
                let pat = self.like_pattern(col);
                Expr::Like {
                    expr: Box::new(col.expr()),
                    negated: self.rng.gen_bool(0.25),
                    pattern: Box::new(Expr::str(&pat)),
                }
            }
            3 => {
                let n = self.rng.gen_range(1..=3usize);
                Expr::InList {
                    expr: Box::new(col.expr()),
                    negated: self.rng.gen_bool(0.25),
                    list: (0..n).map(|_| self.sample_literal(col)).collect(),
                }
            }
            4 => Expr::IsNull {
                expr: Box::new(col.expr()),
                negated: self.rng.gen_bool(0.5),
            },
            _ => Expr::binary(
                col.expr(),
                *[BinaryOp::Lt, BinaryOp::Gt].choose(&mut self.rng).unwrap(),
                self.sample_literal(col),
            ),
        }
    }

    /// A `%frag%`-style pattern built from a sampled value of the column.
    fn like_pattern(&mut self, col: &BoundCol) -> String {
        let base = match self.sample_value(col) {
            Some(Value::Text(s)) if !s.is_empty() => s,
            _ => "a".to_string(),
        };
        let chars: Vec<char> = base.chars().collect();
        let start = self.rng.gen_range(0..chars.len());
        let len = self.rng.gen_range(1..=(chars.len() - start).min(6));
        let mut frag: String = chars[start..start + len].iter().collect();
        if self.rng.gen_bool(0.2) {
            // Replace one fragment character with `_`.
            let frag_chars: Vec<char> = frag.chars().collect();
            let i = self.rng.gen_range(0..frag_chars.len());
            frag = frag_chars
                .iter()
                .enumerate()
                .map(|(j, c)| if j == i { '_' } else { *c })
                .collect();
        }
        match self.rng.gen_range(0..5u8) {
            0 => format!("%{frag}"),
            1 => format!("{frag}%"),
            2 => format!("%{frag}%"),
            // Multi-`%` patterns: split the fragment and interleave
            // wildcards, exercising the matcher's backtracking across
            // several unanchored segments.
            _ => {
                let frag_chars: Vec<char> = frag.chars().collect();
                let cut = self.rng.gen_range(0..=frag_chars.len());
                let (a, b) = frag_chars.split_at(cut);
                let a: String = a.iter().collect();
                let b: String = b.iter().collect();
                if self.rng.gen_bool(0.5) {
                    format!("%{a}%{b}%")
                } else {
                    format!("{a}%{b}")
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Set operations.
    // -----------------------------------------------------------------

    fn set_query(&mut self) -> Query {
        let schema = &self.db.schema;
        let t = schema.tables.choose(&mut self.rng).unwrap().clone();
        let n_cols = self.rng.gen_range(1..=2usize.min(t.columns.len()));
        let mut cols: Vec<usize> = (0..t.columns.len()).collect();
        cols.shuffle(&mut self.rng);
        cols.truncate(n_cols);
        let bound: Vec<BoundCol> = t
            .columns
            .iter()
            .enumerate()
            .map(|(idx, c)| BoundCol {
                alias: "T1".to_string(),
                name: c.name.clone(),
                ty: c.ty,
                table: t.name.clone(),
                idx,
            })
            .collect();
        let side = |g: &mut Self, drop_last: bool| -> SetExpr {
            let mut projections: Vec<SelectItem> = cols
                .iter()
                .enumerate()
                .map(|(i, &ci)| SelectItem::Expr {
                    expr: bound[ci].expr(),
                    alias: Some(format!("c{}", i + 1)),
                })
                .collect();
            if drop_last {
                // Rare arity mismatch: both interpreters must reject it.
                projections.truncate(projections.len().saturating_sub(1).max(1));
            }
            let selection = if g.rng.gen_bool(0.7) {
                Some(g.predicate(1, &bound))
            } else {
                None
            };
            SetExpr::Select(Box::new(Select {
                distinct: false,
                projections,
                from: TableRef::aliased(&t.name, "T1"),
                joins: Vec::new(),
                selection,
                group_by: Vec::new(),
                having: None,
            }))
        };
        let left = side(self, false);
        let mismatch = n_cols > 1 && self.rng.gen_bool(0.03);
        let right = side(self, mismatch);
        let op = *[SetOp::Union, SetOp::Intersect, SetOp::Except]
            .choose(&mut self.rng)
            .unwrap();
        let all = op == SetOp::Union && self.rng.gen_bool(0.4);
        let body = SetExpr::SetOp {
            op,
            all,
            left: Box::new(left),
            right: Box::new(right),
        };
        let mut order_by = Vec::new();
        if self.rng.gen_bool(0.6) {
            let expr = if self.rng.gen_bool(0.5) {
                // Output column name.
                Expr::Column(ColumnRef::bare(&format!(
                    "c{}",
                    self.rng.gen_range(1..=n_cols)
                )))
            } else if self.rng.gen_bool(0.1) {
                // Rare out-of-range ordinal: must error, not panic.
                Expr::int((n_cols + 3) as i64)
            } else {
                Expr::int(self.rng.gen_range(1..=n_cols) as i64)
            };
            order_by.push(OrderItem {
                expr,
                desc: self.rng.gen_bool(0.5),
            });
        }
        let limit = if self.rng.gen_bool(0.3) {
            Some(self.rng.gen_range(0..20u64))
        } else {
            None
        };
        Query {
            body,
            order_by,
            limit,
        }
    }

    // -----------------------------------------------------------------
    // Value sampling.
    // -----------------------------------------------------------------

    fn sample_value(&mut self, col: &BoundCol) -> Option<Value> {
        let table = self.db.table(&col.table)?;
        if table.rows.is_empty() {
            return None;
        }
        for _ in 0..4 {
            let i = self.rng.gen_range(0..table.rows.len());
            let v = &table.rows[i][col.idx];
            if !v.is_null() {
                return Some(v.clone());
            }
        }
        None
    }

    /// A literal sampled from the column's actual values, falling back to
    /// a type-appropriate constant for empty or all-NULL columns.
    fn sample_literal(&mut self, col: &BoundCol) -> Expr {
        match self.sample_value(col) {
            Some(Value::Int(n)) => Expr::int(n),
            Some(Value::Float(f)) if f.is_finite() && f.abs() < 1e15 => Expr::float(f),
            Some(Value::Text(s)) => Expr::str(&s),
            Some(Value::Bool(b)) => Expr::Literal(Literal::Bool(b)),
            _ => match col.ty {
                ColumnType::Int => Expr::int(self.rng.gen_range(-5..100i64)),
                ColumnType::Float => Expr::float(self.rng.gen_range(-5.0..100.0)),
                ColumnType::Text => Expr::str("none"),
                ColumnType::Bool => Expr::Literal(Literal::Bool(true)),
            },
        }
    }
}
