//! Differential fuzz sessions from the command line.
//!
//! ```text
//! cargo run --release -p sb-fuzz --bin fuzz -- [--domain cordis|sdss|oncomx] \
//!     [--seed N] [--count N]
//! ```
//!
//! Runs `count` generated queries per selected domain (all three when
//! `--domain` is omitted) through the parse↔print↔parse check and the
//! full executor-configuration matrix against the reference
//! interpreter. Failures print the seed, the original SQL and a shrunk
//! reproducer; the exit code is the total failure count (0 = clean).

use sb_data::Domain;
use sb_fuzz::run_fuzz;

fn usage() -> ! {
    eprintln!("usage: fuzz [--domain cordis|sdss|oncomx] [--seed N] [--count N]");
    std::process::exit(2);
}

fn main() {
    let mut domains: Vec<Domain> = Domain::ALL.to_vec();
    let mut seed: u64 = 0;
    let mut count: usize = 2_000;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = || args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--domain" => {
                let v = value();
                domains = vec![match v.as_str() {
                    "cordis" => Domain::Cordis,
                    "sdss" => Domain::Sdss,
                    "oncomx" => Domain::OncoMx,
                    _ => usage(),
                }];
                i += 2;
            }
            "--seed" => {
                seed = value().parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--count" => {
                count = value().parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            _ => usage(),
        }
    }

    let mut total = 0usize;
    for domain in domains {
        let failures = run_fuzz(domain, seed, count);
        println!(
            "{}: {} queries, {} failure(s)",
            domain.name(),
            count,
            failures.len()
        );
        for f in &failures {
            println!("{f}");
        }
        total += failures.len();
    }
    std::process::exit(total.min(125) as i32);
}
