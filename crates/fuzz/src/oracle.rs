//! Differential oracle: one query, every executor configuration, one
//! reference interpreter.
//!
//! For each generated query the oracle
//!
//! 1. checks the printer/parser round trip (`parse(print(ast)) == ast`),
//! 2. runs the naive reference interpreter to obtain the expected
//!    outcome, and
//! 3. runs the optimized executor under the full [`ExecOptions`] matrix
//!    (join strategy × predicate pushdown × scan copying × compiled vs
//!    interpreted expressions × cost-based planner on/off × columnar
//!    batch engine on/off) and demands that every configuration agrees
//!    with the reference.
//!
//! Agreement is Spider execution-match (`ResultSet::same_result`:
//! multiset of rows, ordered-list comparison when both sides carry an
//! `ORDER BY`). Errors count as agreeing with errors of *any* kind —
//! predicate pushdown and join-strategy choices legitimately change
//! which of several latent errors surfaces first — but an error never
//! agrees with a result, and a panic in any configuration is always a
//! failure.

use std::panic::{catch_unwind, AssertUnwindSafe};

use sb_engine::{
    execute_reference, execute_with, Database, EngineError, ExecOptions, JoinStrategy, ResultSet,
};
use sb_sql::Query;

/// Outcome of running one query under one configuration.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Executed to completion.
    Ok(ResultSet),
    /// Returned an engine error.
    Err(String),
    /// Panicked (index out of bounds, arithmetic overflow, ...).
    Panic(String),
}

impl Outcome {
    fn label(&self) -> String {
        match self {
            Outcome::Ok(rs) => format!("{} rows, {} cols", rs.rows.len(), rs.columns.len()),
            Outcome::Err(e) => format!("error: {e}"),
            Outcome::Panic(p) => format!("panic: {p}"),
        }
    }
}

/// Why a query failed the oracle.
#[derive(Debug, Clone)]
pub enum Disagreement {
    /// `parse(print(ast))` failed or produced a different AST.
    RoundTrip(String),
    /// One executor configuration disagreed with the reference.
    Mismatch {
        config: String,
        reference: String,
        executor: String,
    },
}

impl std::fmt::Display for Disagreement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Disagreement::RoundTrip(msg) => write!(f, "round-trip: {msg}"),
            Disagreement::Mismatch {
                config,
                reference,
                executor,
            } => write!(
                f,
                "[{config}] reference: {reference} | executor: {executor}"
            ),
        }
    }
}

/// Morsel size used by the matrix's parallel configurations. Fuzz
/// tables hold [`crate::FUZZ_ROWS_PER_TABLE`] = 24 rows, so a morsel of
/// 7 rows splits every full-table scan into four morsels — the merge
/// paths (filter selection concat, join build/probe, group-table and
/// accumulator folds) all run on every parallel query instead of
/// degenerating to the single-morsel serial case.
const PARALLEL_MORSEL_ROWS: usize = 7;

/// The full executor configuration matrix: every join strategy crossed
/// with pushdown on/off, copying vs zero-copy scans, compiled vs
/// interpreted expression evaluation, the cost-based planner on/off,
/// the columnar batch engine on/off, and morsel-parallel execution
/// on/off — nominally 192 configurations. The `optimize` axis is what
/// differentially verifies every planner rewrite (join reordering,
/// projection pruning, planned build sides) against the plan-free
/// legacy path and the reference interpreter; the `columnar` axis does
/// the same for every vectorized kernel and its row-path fallback
/// boundary; the `parallel` axis does the same for every per-morsel
/// kernel and its deterministic merge.
///
/// The parallel axis is sampled down to keep campaign runtime bounded:
/// `parallel` without `columnar` is dropped (the row path has no
/// parallel kernels — those 48 configurations execute byte-for-byte
/// the same code as their serial twins), leaving 144 configurations
/// that each cover distinct machine code.
pub fn exec_matrix() -> Vec<(String, ExecOptions)> {
    let mut out = Vec::new();
    for join in [
        JoinStrategy::Auto,
        JoinStrategy::BuildRight,
        JoinStrategy::NestedLoop,
    ] {
        for pushdown in [false, true] {
            for copy in [false, true] {
                for compiled in [false, true] {
                    for optimize in [false, true] {
                        for columnar in [false, true] {
                            for parallel in [false, true] {
                                if parallel && !columnar {
                                    continue;
                                }
                                let name = format!(
                                    "{join:?}{}{}{}{}{}{}",
                                    if pushdown { "+pushdown" } else { "" },
                                    if copy { "+copy" } else { "" },
                                    if compiled { "+compiled" } else { "" },
                                    if optimize { "+opt" } else { "" },
                                    if columnar { "+columnar" } else { "" },
                                    if parallel { "+parallel" } else { "" }
                                );
                                out.push((
                                    name,
                                    ExecOptions {
                                        predicate_pushdown: pushdown,
                                        join,
                                        copy_scans: copy,
                                        compiled,
                                        optimize,
                                        columnar,
                                        parallel,
                                        // Force real fan-out even on a
                                        // single-core host: three
                                        // workers over four morsels.
                                        workers: if parallel { 3 } else { 0 },
                                        morsel_rows: if parallel {
                                            PARALLEL_MORSEL_ROWS
                                        } else {
                                            0
                                        },
                                    },
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

fn run_caught(f: impl FnOnce() -> Result<ResultSet, EngineError>) -> Outcome {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(rs)) => Outcome::Ok(rs),
        Ok(Err(e)) => Outcome::Err(e.to_string()),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "opaque panic payload".to_string());
            Outcome::Panic(msg)
        }
    }
}

fn agree(reference: &Outcome, executor: &Outcome) -> bool {
    match (reference, executor) {
        (Outcome::Ok(a), Outcome::Ok(b)) => a.same_result(b),
        // Which error surfaces depends on evaluation order; kind-level
        // agreement is all the architecture guarantees.
        (Outcome::Err(_), Outcome::Err(_)) => true,
        _ => false,
    }
}

/// Run `query` through the round-trip check, the reference interpreter
/// and the full configuration matrix. `Ok(())` means total agreement.
pub fn check_query(db: &Database, query: &Query) -> Result<(), Disagreement> {
    let sql = query.to_string();
    match sb_sql::parse(&sql) {
        Err(e) => {
            return Err(Disagreement::RoundTrip(format!(
                "printed SQL failed to parse: {e}"
            )))
        }
        Ok(reparsed) if &reparsed != query => {
            return Err(Disagreement::RoundTrip(
                "reparsed AST differs from the generated AST".to_string(),
            ))
        }
        Ok(_) => {}
    }

    let reference = run_caught(|| execute_reference(db, query));
    if let Outcome::Panic(_) = reference {
        return Err(Disagreement::Mismatch {
            config: "reference".to_string(),
            reference: reference.label(),
            executor: "-".to_string(),
        });
    }
    for (name, opts) in exec_matrix() {
        let got = run_caught(|| execute_with(db, query, opts));
        if !agree(&reference, &got) {
            sb_obs::count("fuzz.oracle.config_mismatches", 1);
            return Err(Disagreement::Mismatch {
                config: name,
                reference: reference.label(),
                executor: got.label(),
            });
        }
    }
    Ok(())
}
