//! Greedy AST shrinking for failing queries.
//!
//! Given a query that fails the differential oracle, the shrinker
//! repeatedly tries structural simplifications — collapsing a set
//! operation to one side, dropping ORDER BY / LIMIT / DISTINCT / HAVING
//! / GROUP BY, removing trailing joins and surplus projections, and
//! replacing predicate trees with their subtrees — keeping any
//! simplification that still fails. The result is a locally-minimal
//! reproducer: no single remaining simplification preserves the
//! failure. Combined with the generator seed this is what a bug report
//! from a fuzz session contains.

use sb_sql::{
    BinaryOp, ColumnRef, Expr, OrderItem, Query, Select, SetExpr, TableFactor, TableRef, UnaryOp,
};

/// Hard cap on accepted shrink steps, as a loop guard; generated
/// queries are small enough that real shrinks finish in far fewer.
const MAX_STEPS: usize = 200;

/// Greedily shrink `query` while `fails` keeps returning `true`.
/// `query` itself must fail; the returned query also fails.
pub fn shrink(query: &Query, mut fails: impl FnMut(&Query) -> bool) -> Query {
    let mut current = query.clone();
    let mut steps: u64 = 0;
    for _ in 0..MAX_STEPS {
        let mut improved = false;
        for cand in candidates(&current) {
            if fails(&cand) {
                current = cand;
                improved = true;
                steps += 1;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    sb_obs::count("fuzz.shrink.steps_accepted", steps);
    current
}

/// One-step simplifications of `q`, roughly largest-reduction first.
fn candidates(q: &Query) -> Vec<Query> {
    let mut out = Vec::new();

    // Collapse a set operation to either side.
    if let SetExpr::SetOp { left, right, .. } = &q.body {
        for side in [left, right] {
            out.push(Query {
                body: (**side).clone(),
                order_by: q.order_by.clone(),
                limit: q.limit,
            });
        }
    }

    // Drop ORDER BY items and LIMIT.
    if !q.order_by.is_empty() {
        out.push(Query {
            order_by: Vec::new(),
            ..q.clone()
        });
        if q.order_by.len() > 1 {
            for i in 0..q.order_by.len() {
                let mut ob = q.order_by.clone();
                ob.remove(i);
                out.push(Query {
                    order_by: ob,
                    ..q.clone()
                });
            }
        }
    }
    if q.limit.is_some() {
        out.push(Query {
            limit: None,
            ..q.clone()
        });
    }

    if let SetExpr::Select(select) = &q.body {
        for s in select_candidates(select) {
            out.push(Query {
                body: SetExpr::Select(Box::new(s)),
                order_by: q.order_by.clone(),
                limit: q.limit,
            });
        }
    }

    // Shrink ORDER BY expressions in place.
    for (i, item) in q.order_by.iter().enumerate() {
        for e in expr_shrinks(&item.expr) {
            let mut ob = q.order_by.clone();
            ob[i] = OrderItem {
                expr: e,
                desc: item.desc,
            };
            out.push(Query {
                order_by: ob,
                ..q.clone()
            });
        }
    }

    out
}

fn select_candidates(select: &Select) -> Vec<Select> {
    let mut out = Vec::new();

    // Drop whole clauses.
    if select.selection.is_some() {
        out.push(Select {
            selection: None,
            ..select.clone()
        });
    }
    if select.having.is_some() {
        out.push(Select {
            having: None,
            ..select.clone()
        });
    }
    if !select.group_by.is_empty() {
        out.push(Select {
            group_by: Vec::new(),
            ..select.clone()
        });
    }
    if select.distinct {
        out.push(Select {
            distinct: false,
            ..select.clone()
        });
    }

    // Drop the last join, but only when nothing else still references
    // its binding (otherwise the candidate fails for the wrong reason —
    // an unknown-table error — and shrinking stalls on noise).
    if let Some(binding) = select
        .joins
        .last()
        .and_then(|j| j.table.binding())
        .map(|b| b.to_string())
    {
        let referenced = select.projections.iter().any(|p| match p {
            sb_sql::SelectItem::Wildcard => false,
            sb_sql::SelectItem::Expr { expr, .. } => mentions(expr, &binding),
        }) || select
            .selection
            .iter()
            .chain(select.having.iter())
            .any(|e| mentions(e, &binding))
            || select.group_by.iter().any(|e| mentions(e, &binding));
        if !referenced {
            let mut s = select.clone();
            s.joins.pop();
            out.push(s);
        }
    }

    // Drop surplus projections.
    if select.projections.len() > 1 {
        for i in 0..select.projections.len() {
            let mut s = select.clone();
            s.projections.remove(i);
            out.push(s);
        }
    }

    // Shrink WHERE / HAVING predicate trees.
    if let Some(sel) = &select.selection {
        for e in expr_shrinks(sel) {
            out.push(Select {
                selection: Some(e),
                ..select.clone()
            });
        }
    }
    if let Some(h) = &select.having {
        for e in expr_shrinks(h) {
            out.push(Select {
                having: Some(e),
                ..select.clone()
            });
        }
    }

    out
}

/// Root-level simplifications of an expression. Deep trees shrink over
/// multiple rounds: each accepted step promotes a subtree to the root.
fn expr_shrinks(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    match e {
        Expr::Binary { left, op, right } => {
            if matches!(op, BinaryOp::And | BinaryOp::Or) {
                out.push((**left).clone());
                out.push((**right).clone());
            }
        }
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => out.push((**expr).clone()),
        Expr::InList {
            expr,
            negated,
            list,
        } if list.len() > 1 => {
            out.push(Expr::InList {
                expr: expr.clone(),
                negated: *negated,
                list: list[..1].to_vec(),
            });
        }
        _ => {}
    }
    out
}

/// Does `e` reference `binding` as a column qualifier or (for derived
/// tables) as a table name?
fn mentions(e: &Expr, binding: &str) -> bool {
    struct Finder<'a> {
        binding: &'a str,
        found: bool,
    }
    impl sb_sql::visitor::Visitor for Finder<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            if let Expr::Column(ColumnRef { table: Some(t), .. }) = e {
                if t.eq_ignore_ascii_case(self.binding) {
                    self.found = true;
                }
            }
        }
        fn visit_table_ref(&mut self, t: &TableRef) {
            if let TableFactor::Table(name) = &t.factor {
                if name.eq_ignore_ascii_case(self.binding) {
                    self.found = true;
                }
            }
        }
    }
    let mut f = Finder {
        binding,
        found: false,
    };
    sb_sql::visitor::walk_expr(e, &mut f);
    f.found
}
