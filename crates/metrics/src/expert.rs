//! The simulated human-expert judge.
//!
//! The paper's Tables 3 and 4 report the fraction of generated NL
//! questions that SQL/domain experts judged semantically correct. Humans
//! are not available here, so this module substitutes a *semantic
//! checker*: it verifies that the NL question faithfully mentions every
//! semantic component of the SQL query —
//!
//! - every literal value of every filter (with number-boundary matching),
//! - the direction of every comparison (`greater`/`less`/… vocabulary),
//! - the aggregate functions used,
//! - grouping, ordering-direction and negation markers.
//!
//! These checks are exactly the error classes the simulated LLMs inject
//! (clause drops, value perturbations, flipped comparisons, swapped
//! aggregates), so the judge is a faithful stand-in for "did the question
//! still mean the query". A small symmetric judge-noise term models human
//! disagreement.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sb_sql::{AggFunc, BinaryOp, Expr, Literal, Query, SelectItem};

/// The simulated expert.
#[derive(Debug, Clone)]
pub struct ExpertJudge {
    /// Probability of flipping a verdict (human disagreement / oversight).
    pub noise: f64,
    rng: StdRng,
}

impl ExpertJudge {
    /// Create a judge with the default 3% disagreement noise.
    pub fn new(seed: u64) -> Self {
        ExpertJudge {
            noise: 0.03,
            rng: StdRng::seed_from_u64(seed ^ 0x6a75_6467),
        }
    }

    /// A noise-free checker (deterministic; used in tests and ablations).
    pub fn strict(seed: u64) -> Self {
        ExpertJudge {
            noise: 0.0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Judge whether `nl` is a semantically correct question for `sql`.
    pub fn judge(&mut self, nl: &str, sql: &Query) -> bool {
        let verdict = semantically_faithful(nl, sql);
        if self.noise > 0.0 && self.rng.gen_bool(self.noise) {
            !verdict
        } else {
            verdict
        }
    }

    /// Fraction of `(nl, sql)` pairs judged correct.
    pub fn rate(&mut self, pairs: &[(String, Query)]) -> f64 {
        if pairs.is_empty() {
            return 0.0;
        }
        let ok = pairs.iter().filter(|(nl, sql)| self.judge(nl, sql)).count();
        ok as f64 / pairs.len() as f64
    }
}

/// The deterministic core check.
pub fn semantically_faithful(nl: &str, sql: &Query) -> bool {
    let lower = nl.to_lowercase();
    let mut checks = Checks {
        nl: &lower,
        ok: true,
    };
    checks.query(sql);
    checks.ok
}

struct Checks<'a> {
    nl: &'a str,
    ok: bool,
}

impl<'a> Checks<'a> {
    fn require(&mut self, cond: bool) {
        self.ok &= cond;
    }

    fn any_word(&mut self, words: &[&str]) {
        let hit = words.iter().any(|w| self.nl.contains(w));
        self.require(hit);
    }

    fn query(&mut self, q: &Query) {
        match &q.body {
            sb_sql::SetExpr::Select(_) => {}
            sb_sql::SetExpr::SetOp { .. } => {
                // Set operations must be signposted somehow.
                self.any_word(&[
                    "also",
                    "exclude",
                    "except",
                    "both",
                    "combined",
                    "union",
                    "intersect",
                    "keep only",
                ]);
            }
        }
        for s in q.selects() {
            if let Some(sel) = &s.selection {
                self.predicate(sel);
            }
            if let Some(h) = &s.having {
                self.predicate(h);
            }
            if !s.group_by.is_empty() {
                self.any_word(&["each", "every", "per ", "group"]);
            }
            for p in &s.projections {
                if let SelectItem::Expr { expr, .. } = p {
                    self.aggregates(expr);
                }
            }
        }
        if let Some(item) = q.order_by.first() {
            if q.limit.is_some() {
                if item.desc {
                    self.any_word(&["highest", "most", "largest", "top", "maximum", "descending"]);
                } else {
                    self.any_word(&[
                        "lowest",
                        "least",
                        "smallest",
                        "fewest",
                        "minimum",
                        "ascending",
                        "bottom",
                    ]);
                }
            } else if item.desc {
                self.any_word(&["descending", "decreasing", "highest", "reverse"]);
            } else {
                self.any_word(&["ascending", "increasing", "lowest"]);
            }
        }
    }

    fn aggregates(&mut self, e: &Expr) {
        match e {
            Expr::Agg { func, .. } => {
                let words: &[&str] = match func {
                    AggFunc::Count => &["how many", "number of", "count"],
                    AggFunc::Avg => &["average", "mean"],
                    AggFunc::Sum => &["total", "sum"],
                    AggFunc::Min => &["minimum", "lowest", "smallest", "least", "earliest"],
                    AggFunc::Max => &["maximum", "highest", "largest", "most", "latest"],
                };
                self.any_word(words);
            }
            Expr::Binary { left, right, .. } => {
                self.aggregates(left);
                self.aggregates(right);
            }
            Expr::Unary { expr, .. } => self.aggregates(expr),
            _ => {}
        }
    }

    fn predicate(&mut self, e: &Expr) {
        match e {
            Expr::Binary {
                left,
                op: BinaryOp::And | BinaryOp::Or,
                right,
            } => {
                self.predicate(left);
                self.predicate(right);
            }
            Expr::Binary { left, op, right } if op.is_comparison() => {
                // Value must be mentioned.
                if let Expr::Literal(l) = right.as_ref() {
                    self.literal(l);
                    self.direction(*op, left.contains_aggregate());
                } else if let Expr::Literal(l) = left.as_ref() {
                    self.literal(l);
                    self.direction(mirror(*op), right.contains_aggregate());
                }
                self.aggregates(left);
            }
            Expr::Between {
                low, high, negated, ..
            } => {
                self.any_word(&["between", "range", "from"]);
                if let Expr::Literal(l) = low.as_ref() {
                    self.literal(l);
                }
                if let Expr::Literal(l) = high.as_ref() {
                    self.literal(l);
                }
                if *negated {
                    self.any_word(&["not", "outside"]);
                }
            }
            Expr::InList { list, negated, .. } => {
                for item in list {
                    if let Expr::Literal(l) = item {
                        self.literal(l);
                    }
                }
                if *negated {
                    self.any_word(&["not", "none", "neither", "excluding"]);
                }
            }
            Expr::InSubquery {
                subquery, negated, ..
            } => {
                self.query(subquery);
                if *negated {
                    self.any_word(&["not", "none", "no ", "without"]);
                }
            }
            Expr::Like {
                pattern, negated, ..
            } => {
                if let Expr::Literal(Literal::Str(p)) = pattern.as_ref() {
                    let fragment = p.trim_matches('%').replace('%', " ").to_lowercase();
                    if !fragment.is_empty() {
                        self.require(self.nl.contains(&fragment));
                    }
                }
                if *negated {
                    self.any_word(&["not", "without"]);
                }
            }
            Expr::IsNull { negated, .. } => {
                if *negated {
                    self.any_word(&["known", "not missing", "has a", "available", "not null"]);
                } else {
                    self.any_word(&["missing", "unknown", "null", "empty", "no "]);
                }
            }
            Expr::Exists { subquery, negated } => {
                self.query(subquery);
                if *negated {
                    self.any_word(&["no ", "not", "without"]);
                }
            }
            Expr::Unary { expr, .. } => self.predicate(expr),
            _ => {}
        }
    }

    fn direction(&mut self, op: BinaryOp, _lhs_agg: bool) {
        match op {
            BinaryOp::Gt | BinaryOp::GtEq => self.any_word(&[
                "greater",
                "more than",
                "above",
                "at least",
                "over",
                "higher",
                "exceed",
                "after",
                "older",
                "no less than",
            ]),
            BinaryOp::Lt | BinaryOp::LtEq => self.any_word(&[
                "less",
                "below",
                "at most",
                "under",
                "lower",
                "fewer",
                "before",
                "younger",
                "smaller",
                "no more than",
            ]),
            BinaryOp::NotEq => self.any_word(&["not", "other than", "different", "excluding"]),
            _ => {}
        }
    }

    fn literal(&mut self, l: &Literal) {
        match l {
            Literal::Null | Literal::Bool(_) => {}
            Literal::Int(v) => self.number(&v.to_string()),
            Literal::Float(v) => {
                let formatted = if v.fract() == 0.0 {
                    format!("{v:.0}")
                } else {
                    format!("{v}")
                };
                self.number(&formatted);
            }
            Literal::Str(s) => {
                let needle = s.to_lowercase();
                if !needle.is_empty() {
                    self.require(self.nl.contains(&needle));
                }
            }
        }
    }

    /// Number matching with digit boundaries so `1` does not match `10`.
    fn number(&mut self, formatted: &str) {
        let nl = self.nl.as_bytes();
        let needle = formatted.as_bytes();
        let mut found = false;
        if needle.is_empty() {
            return;
        }
        let mut i = 0;
        while i + needle.len() <= nl.len() {
            if &nl[i..i + needle.len()] == needle {
                let before_ok = i == 0 || !nl[i - 1].is_ascii_digit();
                let after = i + needle.len();
                let after_ok = after >= nl.len()
                    || (!nl[after].is_ascii_digit() && nl[after] != b'.')
                    // allow "0.5?" / "0.5," etc.
                    || (nl[after] == b'.'
                        && (after + 1 >= nl.len() || !nl[after + 1].is_ascii_digit()));
                if before_ok && after_ok {
                    found = true;
                    break;
                }
            }
            i += 1;
        }
        self.require(found);
    }
}

fn mirror(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faithful(nl: &str, sql: &str) -> bool {
        semantically_faithful(nl, &sb_sql::parse(sql).unwrap())
    }

    #[test]
    fn correct_question_passes() {
        assert!(faithful(
            "Find the spectroscopic objects whose subclass is STARBURST",
            "SELECT specobjid FROM specobj WHERE subclass = 'STARBURST'"
        ));
    }

    #[test]
    fn dropped_filter_fails() {
        assert!(!faithful(
            "Find all the spectroscopic objects",
            "SELECT specobjid FROM specobj WHERE subclass = 'STARBURST'"
        ));
    }

    #[test]
    fn wrong_value_fails() {
        assert!(!faithful(
            "Find objects with redshift greater than 0.9",
            "SELECT specobjid FROM specobj WHERE z > 0.5"
        ));
    }

    #[test]
    fn flipped_direction_fails() {
        assert!(!faithful(
            "Find objects with redshift under 0.5",
            "SELECT specobjid FROM specobj WHERE z > 0.5"
        ));
        assert!(faithful(
            "Find objects with redshift above 0.5",
            "SELECT specobjid FROM specobj WHERE z > 0.5"
        ));
    }

    #[test]
    fn number_boundaries_respected() {
        // "10" in the text must not satisfy the value 1.
        assert!(!faithful(
            "Find objects with neighbor mode greater than 10",
            "SELECT objid FROM neighbors WHERE neighbormode > 1"
        ));
        assert!(faithful(
            "Find objects with neighbor mode greater than 1",
            "SELECT objid FROM neighbors WHERE neighbormode > 1"
        ));
    }

    #[test]
    fn aggregate_words_checked() {
        assert!(faithful(
            "What is the average redshift of galaxies with class GALAXY?",
            "SELECT AVG(z) FROM specobj WHERE class = 'GALAXY'"
        ));
        assert!(!faithful(
            "What is the total redshift of galaxies with class GALAXY?",
            "SELECT AVG(z) FROM specobj WHERE class = 'GALAXY'"
        ));
    }

    #[test]
    fn group_by_needs_each() {
        assert!(faithful(
            "Count the number of objects for each class",
            "SELECT class, COUNT(*) FROM specobj GROUP BY class"
        ));
        assert!(!faithful(
            "Count the number of objects by looking at class",
            "SELECT class, COUNT(*) FROM specobj GROUP BY class"
        ));
    }

    #[test]
    fn superlative_checked() {
        assert!(faithful(
            "Which object has the highest redshift?",
            "SELECT specobjid FROM specobj ORDER BY z DESC LIMIT 1"
        ));
        assert!(!faithful(
            "Which object has the lowest redshift?",
            "SELECT specobjid FROM specobj ORDER BY z DESC LIMIT 1"
        ));
    }

    #[test]
    fn between_and_like_checked() {
        assert!(faithful(
            "Find objects with redshift between 0.5 and 1 whose subclass contains 'BURST'",
            "SELECT specobjid FROM specobj WHERE z BETWEEN 0.5 AND 1 AND subclass LIKE '%BURST%'"
        ));
        assert!(!faithful(
            "Find objects with redshift between 0.5 and 2 whose subclass contains 'BURST'",
            "SELECT specobjid FROM specobj WHERE z BETWEEN 0.5 AND 1 AND subclass LIKE '%BURST%'"
        ));
    }

    #[test]
    fn subquery_values_checked() {
        assert!(!faithful(
            "Find objects among the bright photometric objects",
            "SELECT specobjid FROM specobj WHERE bestobjid IN \
             (SELECT objid FROM photoobj WHERE u > 19)"
        ));
    }

    #[test]
    fn judge_noise_flips_sometimes() {
        let mut j = ExpertJudge::new(1);
        j.noise = 1.0;
        // With 100% noise every verdict flips.
        let q = sb_sql::parse("SELECT a FROM t WHERE b = 1").unwrap();
        assert!(!j.judge("the b is 1", &q));
    }

    #[test]
    fn rate_aggregates() {
        let mut j = ExpertJudge::strict(0);
        let q1 = sb_sql::parse("SELECT a FROM t WHERE b = 1").unwrap();
        let pairs = vec![
            ("records where the b is 1".to_string(), q1.clone()),
            ("all records".to_string(), q1),
        ];
        assert!((j.rate(&pairs) - 0.5).abs() < 1e-9);
    }
}
