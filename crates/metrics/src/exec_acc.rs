//! Execution accuracy — the Table 5 metric, identical in spirit to the
//! Spider benchmark's execution match: run the gold and the predicted SQL
//! against the database and compare the result sets.
//!
//! The experiment grid scores the same dev set once per (system × regime)
//! cell, so each gold query would execute dozens of times with identical
//! results. [`GoldCache`] memoizes gold executions per `(database, sql)`
//! pair; [`execution_match_cached`] is the drop-in scoring entry point
//! for grid runners.

use sb_engine::{Database, ResultSet};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Whether one predicted SQL string execution-matches the gold SQL.
///
/// A prediction that fails to parse or execute counts as a miss (never an
/// error): NL-to-SQL systems routinely emit broken SQL, especially the
/// unconstrained T5 decoder the paper runs "w/o PICARD".
pub fn execution_match(db: &Database, gold_sql: &str, predicted_sql: &str) -> bool {
    let Ok(gold) = db.run(gold_sql) else {
        // A broken gold query is a benchmark bug, not a system miss; count
        // conservatively as a miss but do not panic in release pipelines.
        debug_assert!(false, "gold query must execute: {gold_sql}");
        return false;
    };
    match db.run(predicted_sql) {
        Ok(pred) => gold.same_result(&pred),
        Err(_) => false,
    }
}

/// Execution accuracy over a set of `(gold, predicted)` SQL pairs.
pub fn execution_accuracy(db: &Database, pairs: &[(String, String)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let hits = pairs
        .iter()
        .filter(|(gold, pred)| execution_match(db, gold, pred))
        .count();
    hits as f64 / pairs.len() as f64
}

/// Memoized gold-query results, keyed by `(database name, gold SQL)`.
///
/// Thread-safe (grid runners score dev pairs with rayon); a gold query
/// that fails to execute is cached as `None` so the failure is not
/// re-derived either. Scope one cache per database bundle — entries are
/// keyed by schema name, so two *different* databases sharing a name
/// must not share a cache.
/// Cache key: `(database name, gold SQL)`. A failed gold execution is a
/// `None` entry.
type GoldMap = HashMap<(String, String), Option<Arc<ResultSet>>>;

#[derive(Default)]
pub struct GoldCache {
    inner: RwLock<GoldMap>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl GoldCache {
    /// An empty cache.
    pub fn new() -> Self {
        GoldCache::default()
    }

    /// Number of distinct gold queries cached so far.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().len()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the memo (no gold execution).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that executed the gold query. Under a cold-key race both
    /// threads count a miss — the counter tracks executions, not
    /// distinct keys.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The gold result for `sql` on `db`, executing it at most once.
    fn gold(&self, db: &Database, sql: &str) -> Option<Arc<ResultSet>> {
        if let Some(hit) = self
            .inner
            .read()
            .unwrap()
            .get(&(db.schema.name.clone(), sql.to_string()))
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if sb_obs::enabled() {
                sb_obs::count("metrics.gold_cache.hits", 1);
            }
            return hit.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if sb_obs::enabled() {
            sb_obs::count("metrics.gold_cache.misses", 1);
        }
        let computed = match db.run(sql) {
            Ok(rs) => Some(Arc::new(rs)),
            Err(_) => {
                // A broken gold query is a benchmark bug, not a system
                // miss; count conservatively but do not panic in release.
                debug_assert!(false, "gold query must execute: {sql}");
                None
            }
        };
        let mut map = self.inner.write().unwrap();
        // Two threads may race on the same cold key; both computed the
        // same value, so the first insert wins and the clone is dropped.
        map.entry((db.schema.name.clone(), sql.to_string()))
            .or_insert_with(|| computed.clone());
        computed
    }
}

/// [`execution_match`] with the gold side served from `cache`: the gold
/// SQL executes once per database instead of once per scored pair.
pub fn execution_match_cached(
    cache: &GoldCache,
    db: &Database,
    gold_sql: &str,
    predicted_sql: &str,
) -> bool {
    let Some(gold) = cache.gold(db, gold_sql) else {
        return false;
    };
    match db.run(predicted_sql) {
        Ok(pred) => gold.same_result(&pred),
        Err(_) => false,
    }
}

/// [`execution_accuracy`] over a shared [`GoldCache`].
pub fn execution_accuracy_cached(
    cache: &GoldCache,
    db: &Database,
    pairs: &[(String, String)],
) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let hits = pairs
        .iter()
        .filter(|(gold, pred)| execution_match_cached(cache, db, gold, pred))
        .count();
    hits as f64 / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    use sb_schema::{Column, ColumnType, Schema, TableDef};

    fn db() -> Database {
        let schema = Schema::new("t").with_table(TableDef::new(
            "specobj",
            vec![
                Column::pk("specobjid", ColumnType::Int),
                Column::new("class", ColumnType::Text),
                Column::new("z", ColumnType::Float),
            ],
        ));
        let mut db = Database::new(schema);
        db.table_mut("specobj").unwrap().push_rows(vec![
            vec![1.into(), "GALAXY".into(), 0.7.into()],
            vec![2.into(), "STAR".into(), 0.0.into()],
            vec![3.into(), "GALAXY".into(), 1.4.into()],
        ]);
        db
    }

    #[test]
    fn identical_queries_match() {
        let db = db();
        assert!(execution_match(
            &db,
            "SELECT specobjid FROM specobj WHERE class = 'GALAXY'",
            "SELECT specobjid FROM specobj WHERE class = 'GALAXY'"
        ));
    }

    #[test]
    fn semantically_equivalent_queries_match() {
        let db = db();
        // Different syntax, same result set.
        assert!(execution_match(
            &db,
            "SELECT specobjid FROM specobj WHERE class = 'GALAXY'",
            "SELECT s.specobjid FROM specobj AS s WHERE s.z > 0.5"
        ));
    }

    #[test]
    fn different_results_do_not_match() {
        let db = db();
        assert!(!execution_match(
            &db,
            "SELECT specobjid FROM specobj WHERE class = 'GALAXY'",
            "SELECT specobjid FROM specobj WHERE class = 'STAR'"
        ));
    }

    #[test]
    fn broken_prediction_is_a_miss() {
        let db = db();
        assert!(!execution_match(
            &db,
            "SELECT specobjid FROM specobj",
            "SELEC specobjid FRM specobj"
        ));
        assert!(!execution_match(
            &db,
            "SELECT specobjid FROM specobj",
            "SELECT nonexistent FROM specobj"
        ));
    }

    #[test]
    fn accuracy_aggregates() {
        let db = db();
        let pairs = vec![
            (
                "SELECT COUNT(*) FROM specobj".to_string(),
                "SELECT COUNT(*) FROM specobj".to_string(),
            ),
            (
                "SELECT COUNT(*) FROM specobj".to_string(),
                "broken".to_string(),
            ),
        ];
        assert!((execution_accuracy(&db, &pairs) - 0.5).abs() < 1e-9);
        assert_eq!(execution_accuracy(&db, &[]), 0.0);
    }

    #[test]
    fn cached_scoring_agrees_with_uncached() {
        let db = db();
        let cache = GoldCache::new();
        let cases = [
            (
                "SELECT specobjid FROM specobj WHERE class = 'GALAXY'",
                "SELECT specobjid FROM specobj WHERE class = 'GALAXY'",
            ),
            (
                "SELECT specobjid FROM specobj WHERE class = 'GALAXY'",
                "SELECT s.specobjid FROM specobj AS s WHERE s.z > 0.5",
            ),
            (
                "SELECT specobjid FROM specobj WHERE class = 'GALAXY'",
                "SELECT specobjid FROM specobj WHERE class = 'STAR'",
            ),
            ("SELECT COUNT(*) FROM specobj", "SELEC broken"),
        ];
        for (gold, pred) in cases {
            assert_eq!(
                execution_match_cached(&cache, &db, gold, pred),
                execution_match(&db, gold, pred),
                "cached and uncached disagree on ({gold}, {pred})"
            );
        }
        // Three scorings shared one gold execution; the fourth added one.
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn cached_accuracy_matches_uncached_accuracy() {
        let db = db();
        let cache = GoldCache::new();
        let pairs = vec![
            (
                "SELECT COUNT(*) FROM specobj".to_string(),
                "SELECT COUNT(*) FROM specobj".to_string(),
            ),
            (
                "SELECT COUNT(*) FROM specobj".to_string(),
                "broken".to_string(),
            ),
        ];
        let cached = execution_accuracy_cached(&cache, &db, &pairs);
        assert!((cached - execution_accuracy(&db, &pairs)).abs() < 1e-9);
        assert_eq!(cache.len(), 1);
        assert_eq!(execution_accuracy_cached(&cache, &db, &[]), 0.0);
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let db = db();
        let cache = GoldCache::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    assert!(execution_match_cached(
                        &cache,
                        &db,
                        "SELECT COUNT(*) FROM specobj",
                        "SELECT COUNT(*) FROM specobj",
                    ));
                });
            }
        });
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }
}
