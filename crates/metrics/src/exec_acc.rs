//! Execution accuracy — the Table 5 metric, identical in spirit to the
//! Spider benchmark's execution match: run the gold and the predicted SQL
//! against the database and compare the result sets.

use sb_engine::Database;

/// Whether one predicted SQL string execution-matches the gold SQL.
///
/// A prediction that fails to parse or execute counts as a miss (never an
/// error): NL-to-SQL systems routinely emit broken SQL, especially the
/// unconstrained T5 decoder the paper runs "w/o PICARD".
pub fn execution_match(db: &Database, gold_sql: &str, predicted_sql: &str) -> bool {
    let Ok(gold) = db.run(gold_sql) else {
        // A broken gold query is a benchmark bug, not a system miss; count
        // conservatively as a miss but do not panic in release pipelines.
        debug_assert!(false, "gold query must execute: {gold_sql}");
        return false;
    };
    match db.run(predicted_sql) {
        Ok(pred) => gold.same_result(&pred),
        Err(_) => false,
    }
}

/// Execution accuracy over a set of `(gold, predicted)` SQL pairs.
pub fn execution_accuracy(db: &Database, pairs: &[(String, String)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let hits = pairs
        .iter()
        .filter(|(gold, pred)| execution_match(db, gold, pred))
        .count();
    hits as f64 / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    use sb_schema::{Column, ColumnType, Schema, TableDef};

    fn db() -> Database {
        let schema = Schema::new("t").with_table(TableDef::new(
            "specobj",
            vec![
                Column::pk("specobjid", ColumnType::Int),
                Column::new("class", ColumnType::Text),
                Column::new("z", ColumnType::Float),
            ],
        ));
        let mut db = Database::new(schema);
        db.table_mut("specobj").unwrap().push_rows(vec![
            vec![1.into(), "GALAXY".into(), 0.7.into()],
            vec![2.into(), "STAR".into(), 0.0.into()],
            vec![3.into(), "GALAXY".into(), 1.4.into()],
        ]);
        db
    }

    #[test]
    fn identical_queries_match() {
        let db = db();
        assert!(execution_match(
            &db,
            "SELECT specobjid FROM specobj WHERE class = 'GALAXY'",
            "SELECT specobjid FROM specobj WHERE class = 'GALAXY'"
        ));
    }

    #[test]
    fn semantically_equivalent_queries_match() {
        let db = db();
        // Different syntax, same result set.
        assert!(execution_match(
            &db,
            "SELECT specobjid FROM specobj WHERE class = 'GALAXY'",
            "SELECT s.specobjid FROM specobj AS s WHERE s.z > 0.5"
        ));
    }

    #[test]
    fn different_results_do_not_match() {
        let db = db();
        assert!(!execution_match(
            &db,
            "SELECT specobjid FROM specobj WHERE class = 'GALAXY'",
            "SELECT specobjid FROM specobj WHERE class = 'STAR'"
        ));
    }

    #[test]
    fn broken_prediction_is_a_miss() {
        let db = db();
        assert!(!execution_match(
            &db,
            "SELECT specobjid FROM specobj",
            "SELEC specobjid FRM specobj"
        ));
        assert!(!execution_match(
            &db,
            "SELECT specobjid FROM specobj",
            "SELECT nonexistent FROM specobj"
        ));
    }

    #[test]
    fn accuracy_aggregates() {
        let db = db();
        let pairs = vec![
            (
                "SELECT COUNT(*) FROM specobj".to_string(),
                "SELECT COUNT(*) FROM specobj".to_string(),
            ),
            (
                "SELECT COUNT(*) FROM specobj".to_string(),
                "broken".to_string(),
            ),
        ];
        assert!((execution_accuracy(&db, &pairs) - 0.5).abs() < 1e-9);
        assert_eq!(execution_accuracy(&db, &[]), 0.0);
    }
}
