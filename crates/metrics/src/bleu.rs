//! Corpus-level BLEU-4 in the SacreBLEU style.
//!
//! Implements the standard corpus BLEU computation (Papineni et al. 2002)
//! with the `13a`-like tokenization and exponential smoothing of zero
//! higher-order precisions that SacreBLEU (Post 2018) applies by default.
//! Scores are reported on the 0–100 scale of Table 3.

use std::collections::HashMap;

/// SacreBLEU-style tokenizer: lower-case, split punctuation from words.
pub fn bleu_tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() || ch == '\'' {
            cur.extend(ch.to_lowercase());
        } else {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
            if !ch.is_whitespace() {
                out.push(ch.to_string());
            }
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn ngram_counts(tokens: &[String], n: usize) -> HashMap<&[String], usize> {
    let mut map: HashMap<&[String], usize> = HashMap::new();
    if tokens.len() >= n {
        for w in tokens.windows(n) {
            *map.entry(w).or_insert(0) += 1;
        }
    }
    map
}

/// Corpus BLEU-4 over `(hypothesis, reference)` pairs, on the 0–100
/// scale. Returns 0 for an empty corpus.
pub fn corpus_bleu(pairs: &[(String, String)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let tokenized: Vec<(Vec<String>, Vec<String>)> = pairs
        .iter()
        .map(|(h, r)| (bleu_tokenize(h), bleu_tokenize(r)))
        .collect();

    let mut hyp_len = 0usize;
    let mut ref_len = 0usize;
    let mut matches = [0usize; 4];
    let mut totals = [0usize; 4];
    for (hyp, reference) in &tokenized {
        hyp_len += hyp.len();
        ref_len += reference.len();
        for n in 1..=4 {
            let h = ngram_counts(hyp, n);
            let r = ngram_counts(reference, n);
            let mut m = 0usize;
            let mut t = 0usize;
            for (gram, hc) in &h {
                t += hc;
                if let Some(rc) = r.get(gram) {
                    m += (*hc).min(*rc);
                }
            }
            matches[n - 1] += m;
            totals[n - 1] += t;
        }
    }

    // Exponential smoothing (SacreBLEU `exp`): each zero numerator at
    // order n>1 is replaced by 1/(2^k) on an increasing k.
    let mut smooth = 1.0f64;
    let mut log_sum = 0.0f64;
    for n in 0..4 {
        if totals[n] == 0 {
            return 0.0;
        }
        let p = if matches[n] == 0 {
            if n == 0 {
                return 0.0;
            }
            smooth *= 2.0;
            1.0 / (smooth * totals[n] as f64)
        } else {
            matches[n] as f64 / totals[n] as f64
        };
        log_sum += p.ln();
    }
    let geo_mean = (log_sum / 4.0).exp();
    let bp = if hyp_len >= ref_len || hyp_len == 0 {
        1.0
    } else {
        (1.0 - ref_len as f64 / hyp_len as f64).exp()
    };
    100.0 * bp * geo_mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_corpus_scores_100() {
        let pairs = vec![(
            "find all starburst galaxies in the survey".to_string(),
            "find all starburst galaxies in the survey".to_string(),
        )];
        let b = corpus_bleu(&pairs);
        assert!((b - 100.0).abs() < 1e-6, "{b}");
    }

    #[test]
    fn disjoint_corpus_scores_zero() {
        let pairs = vec![(
            "alpha beta gamma delta".to_string(),
            "epsilon zeta eta theta".to_string(),
        )];
        assert_eq!(corpus_bleu(&pairs), 0.0);
    }

    #[test]
    fn partial_overlap_is_intermediate() {
        let pairs = vec![(
            "find all the starburst galaxies".to_string(),
            "return all the starburst galaxies".to_string(),
        )];
        let b = corpus_bleu(&pairs);
        assert!(b > 20.0 && b < 90.0, "{b}");
    }

    #[test]
    fn paraphrase_scores_lower_than_near_copy() {
        let near = vec![(
            "find all starburst galaxies".to_string(),
            "find all the starburst galaxies".to_string(),
        )];
        let para = vec![(
            "return every galaxy in the starburst class".to_string(),
            "find all the starburst galaxies".to_string(),
        )];
        assert!(corpus_bleu(&near) > corpus_bleu(&para));
    }

    #[test]
    fn brevity_penalty_punishes_short_hypotheses() {
        let long_ref = "find all the spectroscopically observed starburst galaxies".to_string();
        let full = vec![(long_ref.clone(), long_ref.clone())];
        let short = vec![("find all the".to_string(), long_ref)];
        assert!(corpus_bleu(&full) > corpus_bleu(&short));
    }

    #[test]
    fn tokenizer_splits_punctuation() {
        assert_eq!(
            bleu_tokenize("What is z, really?"),
            vec!["what", "is", "z", ",", "really", "?"]
        );
    }

    #[test]
    fn empty_corpus_is_zero() {
        assert_eq!(corpus_bleu(&[]), 0.0);
    }

    #[test]
    fn corpus_level_aggregation_differs_from_single_pairs() {
        // Two pairs where one is perfect and one is empty overlap: the
        // corpus score pools n-gram counts rather than averaging.
        let pairs = vec![
            ("a b c d e".to_string(), "a b c d e".to_string()),
            ("x y".to_string(), "p q".to_string()),
        ];
        let b = corpus_bleu(&pairs);
        assert!(b > 0.0 && b < 100.0, "{b}");
    }
}
