//! The Spider hardness classifier (Yu et al. 2018), ported from the
//! official `evaluation.py`. Table 2 of the paper reports every dataset's
//! distribution over these four classes.

use sb_sql::{visitor, BinaryOp, Expr, Query, Select, SetExpr};
use std::fmt;

/// Spider's four query-complexity classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Hardness {
    /// At most one simple component, nothing else.
    Easy,
    /// A couple of components or extras.
    Medium,
    /// Several components/extras or a single nested query.
    Hard,
    /// Everything beyond.
    ExtraHard,
}

impl Hardness {
    /// All classes in ascending order.
    pub const ALL: [Hardness; 4] = [
        Hardness::Easy,
        Hardness::Medium,
        Hardness::Hard,
        Hardness::ExtraHard,
    ];

    /// Display label as used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            Hardness::Easy => "Easy",
            Hardness::Medium => "Medium",
            Hardness::Hard => "Hard",
            Hardness::ExtraHard => "Extra Hard",
        }
    }
}

impl fmt::Display for Hardness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Count "component 1" features of the *outer* query: WHERE, GROUP BY,
/// ORDER BY, LIMIT, JOINs, ORs, LIKEs — Spider's `count_component1`.
fn count_component1(q: &Query) -> usize {
    let mut count = 0;
    for s in outer_selects(q) {
        if s.selection.is_some() {
            count += 1;
        }
        if !s.group_by.is_empty() {
            count += 1;
        }
        count += s.joins.len();
        count += count_or_like(s);
    }
    if !q.order_by.is_empty() {
        count += 1;
    }
    if q.limit.is_some() {
        count += 1;
    }
    count
}

/// Outer selects of the body: the sides of set operations, but not
/// subqueries.
fn outer_selects(q: &Query) -> Vec<&Select> {
    q.selects()
}

fn count_or_like(s: &Select) -> usize {
    fn walk(e: &Expr, ors: &mut usize, likes: &mut usize) {
        match e {
            Expr::Binary {
                left,
                op: BinaryOp::Or,
                right,
            } => {
                *ors += 1;
                walk(left, ors, likes);
                walk(right, ors, likes);
            }
            Expr::Binary { left, right, .. } => {
                walk(left, ors, likes);
                walk(right, ors, likes);
            }
            Expr::Like { .. } => *likes += 1,
            Expr::Unary { expr, .. } => walk(expr, ors, likes),
            _ => {}
        }
    }
    let mut ors = 0;
    let mut likes = 0;
    for pred in s
        .selection
        .iter()
        .chain(s.having.iter())
        .chain(s.joins.iter().filter_map(|j| j.constraint.as_ref()))
    {
        walk(pred, &mut ors, &mut likes);
    }
    ors + likes
}

/// Count "component 2": nested subqueries and set operations — Spider's
/// `count_component2` (`get_nestedSQL`).
fn count_component2(q: &Query) -> usize {
    let mut count = visitor::count_subqueries(q);
    fn set_ops(body: &SetExpr) -> usize {
        match body {
            SetExpr::Select(_) => 0,
            SetExpr::SetOp { left, right, .. } => 1 + set_ops(left) + set_ops(right),
        }
    }
    count += set_ops(&q.body);
    count
}

/// Count "others": >1 aggregate, >1 select column, >1 where condition,
/// >1 group-by key — Spider's `count_others`.
fn count_others(q: &Query) -> usize {
    let mut count = 0;
    let agg_count = visitor::count_aggregates(q);
    if agg_count > 1 {
        count += 1;
    }
    for s in outer_selects(q) {
        if s.projections.len() > 1 {
            count += 1;
            break;
        }
    }
    for s in outer_selects(q) {
        let conds = s.selection.as_ref().map(count_condition_units).unwrap_or(0);
        if conds > 1 {
            count += 1;
            break;
        }
    }
    for s in outer_selects(q) {
        if s.group_by.len() > 1 {
            count += 1;
            break;
        }
    }
    count
}

/// Number of atomic condition units in a predicate (AND/OR leaves).
fn count_condition_units(e: &Expr) -> usize {
    match e {
        Expr::Binary {
            left,
            op: BinaryOp::And | BinaryOp::Or,
            right,
        } => count_condition_units(left) + count_condition_units(right),
        _ => 1,
    }
}

/// Classify a query into Spider's hardness taxonomy.
pub fn classify(q: &Query) -> Hardness {
    let c1 = count_component1(q);
    let c2 = count_component2(q);
    let others = count_others(q);

    if c1 <= 1 && others == 0 && c2 == 0 {
        Hardness::Easy
    } else if (others <= 2 && c1 <= 1 && c2 == 0) || (c1 <= 2 && others < 2 && c2 == 0) {
        Hardness::Medium
    } else if (others > 2 && c1 <= 2 && c2 == 0)
        || (c1 > 2 && c1 <= 3 && others <= 2 && c2 == 0)
        || (c1 <= 1 && others == 0 && c2 <= 1)
    {
        Hardness::Hard
    } else {
        Hardness::ExtraHard
    }
}

/// Classify SQL text; parse failures default to `ExtraHard` (the paper's
/// convention — an unparseable query is certainly not easy).
pub fn classify_sql(sql: &str) -> Hardness {
    match sb_sql::parse(sql) {
        Ok(q) => classify(&q),
        Err(_) => Hardness::ExtraHard,
    }
}

/// Distribution of hardness classes over a set of queries; aligned with
/// [`Hardness::ALL`].
pub fn distribution(queries: &[Query]) -> [usize; 4] {
    let mut out = [0usize; 4];
    for q in queries {
        let h = classify(q);
        let idx = Hardness::ALL.iter().position(|x| *x == h).expect("in ALL");
        out[idx] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(sql: &str) -> Hardness {
        classify(&sb_sql::parse(sql).unwrap())
    }

    #[test]
    fn paper_q1_is_easy() {
        // The paper labels Q1 "Spider hardness: Easy".
        assert_eq!(
            h("SELECT s.specobjid FROM specobj AS s WHERE s.subclass = 'STARBURST'"),
            Hardness::Easy
        );
    }

    #[test]
    fn paper_q2_is_medium() {
        // Q2: "Spider hardness: Medium" — one WHERE with 3 conditions.
        assert_eq!(
            h("SELECT s.bestobjid, s.ra, s.dec, s.z FROM specobj AS s \
               WHERE s.class = 'GALAXY' AND s.z > 0.5 AND s.z < 1"),
            Hardness::Medium
        );
    }

    #[test]
    fn paper_q3_is_extra_hard() {
        // Q3: "Spider hardness: Extra hard" — join + multi-condition where
        // + multiple projections.
        assert_eq!(
            h("SELECT p.objid, s.specobjid FROM photoobj AS p \
               JOIN specobj AS s ON s.bestobjid = p.objid \
               WHERE s.class = 'GALAXY' AND p.u - p.r < 2.22 AND p.u - p.r > 1"),
            Hardness::ExtraHard
        );
    }

    #[test]
    fn bare_select_is_easy() {
        assert_eq!(h("SELECT name FROM singer"), Hardness::Easy);
        assert_eq!(h("SELECT COUNT(*) FROM singer"), Hardness::Easy);
    }

    #[test]
    fn single_join_is_easy_join_plus_where_is_medium() {
        // Spider's rule: one component-1 feature with nothing else is
        // still "easy"; a second component pushes it to "medium".
        assert_eq!(
            h("SELECT a.name FROM a JOIN b ON a.id = b.a_id"),
            Hardness::Easy
        );
        assert_eq!(
            h("SELECT a.name FROM a JOIN b ON a.id = b.a_id WHERE b.x = 1"),
            Hardness::Medium
        );
    }

    #[test]
    fn group_and_order_is_harder() {
        let q = "SELECT class, COUNT(*) FROM specobj WHERE z > 1 \
                 GROUP BY class ORDER BY COUNT(*) DESC LIMIT 3";
        // where + group + order + limit = c1 = 4 → extra hard.
        assert_eq!(h(q), Hardness::ExtraHard);
    }

    #[test]
    fn single_subquery_is_hard() {
        assert_eq!(
            h("SELECT name FROM t WHERE z > (SELECT AVG(z) FROM t)"),
            Hardness::Hard
        );
    }

    #[test]
    fn subquery_plus_components_is_extra() {
        assert_eq!(
            h(
                "SELECT name, z FROM t WHERE z > (SELECT AVG(z) FROM t) AND class = 'GALAXY' \
               ORDER BY z DESC LIMIT 5"
            ),
            Hardness::ExtraHard
        );
    }

    #[test]
    fn unparseable_defaults_to_extra_hard() {
        assert_eq!(classify_sql("SELEC nonsense FROM"), Hardness::ExtraHard);
    }

    #[test]
    fn distribution_sums_to_total() {
        let queries: Vec<_> = [
            "SELECT a FROM t",
            "SELECT a FROM t WHERE b = 1",
            "SELECT a, b FROM t WHERE c = 1 AND d = 2",
            "SELECT a FROM t WHERE b IN (SELECT b FROM u)",
        ]
        .iter()
        .map(|s| sb_sql::parse(s).unwrap())
        .collect();
        let d = distribution(&queries);
        assert_eq!(d.iter().sum::<usize>(), 4);
    }

    #[test]
    fn ordering_of_classes() {
        assert!(Hardness::Easy < Hardness::Medium);
        assert!(Hardness::Hard < Hardness::ExtraHard);
        assert_eq!(Hardness::ExtraHard.label(), "Extra Hard");
    }
}
