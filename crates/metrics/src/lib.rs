//! # sb-metrics — the benchmark's evaluation metrics
//!
//! Everything the paper's evaluation sections need:
//!
//! - [`bleu`]: corpus-level SacreBLEU-style BLEU-4 (Table 3, row 1);
//! - the embedding-similarity metric is re-exported from `sb-embed`
//!   (Table 3, row 2);
//! - [`expert`]: the simulated human-expert judge — a semantic checker
//!   that verifies an NL question against its SQL query (Table 3 row 3,
//!   §4.1.2, Table 4);
//! - [`hardness`]: the Spider hardness classifier (Easy / Medium / Hard /
//!   Extra Hard) used throughout Table 2;
//! - [`exec_acc`]: execution accuracy — the Table 5 metric — plus a
//!   [`GoldCache`] so grid runs execute each gold query once per database.

pub mod bleu;
pub mod exec_acc;
pub mod expert;
pub mod hardness;

pub use bleu::corpus_bleu;
pub use exec_acc::{
    execution_accuracy, execution_accuracy_cached, execution_match, execution_match_cached,
    GoldCache,
};
pub use expert::ExpertJudge;
pub use hardness::{classify, Hardness};
pub use sb_embed::corpus_similarity;
