//! Metric names emitted at runtime must all appear in the
//! `crates/obs/NAMES.md` registry.
//!
//! Runs the exact `profile_run --quick` scenario (via the shared
//! `sb_bench::profiling` library path) for one domain, then a small
//! serve load run with profiling and the slow log armed, and checks
//! every counter, span and histogram name the `sb-obs` registry
//! collected against the names registered in the markdown tables. A
//! `<placeholder>` segment in a registered name matches exactly one
//! dynamic segment (`serve.latency_us.<domain>` ⇒
//! `serve.latency_us.sdss`).
//!
//! Both scenarios run inside one test: the `sb-obs` registry is global,
//! so parallel test threads would trample each other's snapshots.

use sb_bench::profiling::{profile_domain, quick_profile_config};
use sb_core::SpiderPairs;
use sb_data::Domain;
use sb_nl2sql::Pair;
use sb_serve::{run_domain_load, LoadConfig};
use std::path::Path;

/// Every backticked name in a table row of `crates/obs/NAMES.md`.
fn registry() -> Vec<String> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../obs/NAMES.md");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let mut names = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("| `") else {
            continue;
        };
        if let Some(end) = rest.find('`') {
            names.push(rest[..end].to_string());
        }
    }
    assert!(
        names.len() > 20,
        "registry parse collapsed — NAMES.md format drifted?"
    );
    names
}

fn is_registered(name: &str, registry: &[String]) -> bool {
    registry.iter().any(|r| {
        if r == name {
            return true;
        }
        if !r.contains('<') {
            return false;
        }
        let rsegs: Vec<&str> = r.split('.').collect();
        let nsegs: Vec<&str> = name.split('.').collect();
        rsegs.len() == nsegs.len()
            && rsegs
                .iter()
                .zip(&nsegs)
                .all(|(r, n)| (r.starts_with('<') && r.ends_with('>')) || r == n)
    })
}

fn assert_all_registered(report: &sb_obs::Report, registry: &[String], scenario: &str) {
    for (kind, names) in [
        (
            "counter",
            report.counters.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        ),
        ("span", report.spans.iter().map(|(n, _)| n).collect()),
        ("hist", report.hists.iter().map(|(n, _)| n).collect()),
    ] {
        for name in names {
            assert!(
                is_registered(name, registry),
                "{scenario}: unregistered {kind} `{name}` — add it to crates/obs/NAMES.md"
            );
        }
    }
}

#[test]
fn every_emitted_metric_name_is_registered() {
    let reg = registry();
    assert!(is_registered("serve.latency_us.sdss", &reg));
    assert!(!is_registered("serve.latency_us.a.b", &reg));
    assert!(!is_registered("engine.scan.rowz", &reg));

    if sb_obs::mode() == sb_obs::Mode::Off {
        sb_obs::set_mode(sb_obs::Mode::Summary);
    }

    // Scenario 1: the profile_run --quick cell (pipeline + grid cell).
    let cfg = quick_profile_config();
    let spider = SpiderPairs::build(&cfg.spider);
    let spider_train: Vec<Pair> = spider
        .train
        .iter()
        .map(|p| Pair::new(p.question.clone(), p.sql.clone(), p.db.clone()))
        .collect();
    let cell = profile_domain(Domain::Sdss, &cfg, &spider, &spider_train);
    assert!(
        !cell.obs.counters.is_empty(),
        "profile cell collected nothing — is sb-obs off?"
    );
    assert_all_registered(&cell.obs, &reg, "profile_run --quick");

    // Scenario 2: a serve load run with profiling sampled and the slow
    // log armed, so the tracing-path counters fire too.
    let _ = run_domain_load(
        Domain::Sdss,
        &LoadConfig {
            clients: 2,
            requests: 40,
            profile_sample: 4,
            slow_log_threshold_us: Some(0),
            ..LoadConfig::default()
        },
    );
    let serve_report = sb_obs::snapshot();
    assert!(
        serve_report
            .hists
            .iter()
            .any(|(n, _)| n == "serve.latency_us.sdss"),
        "load run recorded no latency histogram"
    );
    assert!(serve_report.counter("serve.slow_logged") > 0);
    assert_all_registered(&serve_report, &reg, "serve load");
}
