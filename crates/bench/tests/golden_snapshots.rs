//! Golden snapshot tests: regenerate every results table through the
//! same report functions the `tableN` binaries print, and diff against
//! the committed `results_tableN.txt` files at the repository root.
//!
//! The committed files were captured from `cargo run` output, so they
//! carry cargo's own stderr noise (compilation lines, the `Running`
//! banner, table5's progress messages) ahead of the report proper.
//! Normalization therefore skips everything before the first line that
//! starts with `"Table "` and trims trailing whitespace per line; the
//! report body itself must match exactly.
//!
//! Flags baked into the committed files: table 1 was captured at the
//! Full size class, tables 2–5 with `--quick`, table 3 additionally
//! with `--domains`. Regenerate a file after an intentional change with
//! e.g. `cargo run --release -p sb-bench --bin table4 -- --quick > results_table4.txt 2>&1`.

use sb_bench::reports;
use sb_data::Domain;

/// Force `sb-obs` collection ON for the regeneration. The committed
/// files were captured with observability off, so passing these tests
/// with collection active *is* the obs-on vs obs-off byte-identity
/// check: instrumentation must never leak into a report string.
fn obs_on() {
    sb_obs::set_mode(sb_obs::Mode::Summary);
}

/// Drop everything before the first line starting with `"Table "` and
/// trim trailing whitespace from each remaining line.
fn normalize(s: &str) -> String {
    let mut out = String::new();
    let mut started = false;
    for line in s.lines() {
        if !started && line.starts_with("Table ") {
            started = true;
        }
        if started {
            out.push_str(line.trim_end());
            out.push('\n');
        }
    }
    // The reports end with a trailing newline; normalize the tail too.
    while out.ends_with("\n\n") {
        out.pop();
    }
    out
}

fn committed(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../..").to_string() + "/" + name;
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn assert_matches(generated: String, file: &str, regen_hint: &str) {
    let want = normalize(&committed(file));
    let got = normalize(&generated);
    if want != got {
        let want_lines: Vec<&str> = want.lines().collect();
        let got_lines: Vec<&str> = got.lines().collect();
        let mut diff = String::new();
        for i in 0..want_lines.len().max(got_lines.len()) {
            let w = want_lines.get(i).copied().unwrap_or("<missing>");
            let g = got_lines.get(i).copied().unwrap_or("<missing>");
            if w != g {
                diff.push_str(&format!(
                    "line {}:\n  committed: {w}\n  generated: {g}\n",
                    i + 1
                ));
            }
        }
        panic!(
            "{file} no longer matches the generated report.\n{diff}\
             If the change is intentional, regenerate with:\n  {regen_hint}"
        );
    }
}

#[test]
fn table1_matches_committed_snapshot() {
    obs_on();
    assert_matches(
        reports::table1_report(false),
        "results_table1.txt",
        "cargo run --release -p sb-bench --bin table1 > results_table1.txt 2>&1",
    );
}

#[test]
fn table2_matches_committed_snapshot() {
    obs_on();
    assert_matches(
        reports::table2_report(true),
        "results_table2.txt",
        "cargo run --release -p sb-bench --bin table2 -- --quick > results_table2.txt 2>&1",
    );
}

#[test]
fn table3_matches_committed_snapshot() {
    obs_on();
    assert_matches(
        reports::table3_report(true, true),
        "results_table3.txt",
        "cargo run --release -p sb-bench --bin table3 -- --quick --domains > results_table3.txt 2>&1",
    );
}

#[test]
fn table4_matches_committed_snapshot() {
    obs_on();
    assert_matches(
        reports::table4_report(true),
        "results_table4.txt",
        "cargo run --release -p sb-bench --bin table4 -- --quick > results_table4.txt 2>&1",
    );
}

#[test]
fn table5_matches_committed_snapshot() {
    obs_on();
    assert_matches(
        reports::table5_report(true, &Domain::ALL, true),
        "results_table5.txt",
        "cargo run --release -p sb-bench --bin table5 -- --quick > results_table5.txt 2>&1",
    );
}
