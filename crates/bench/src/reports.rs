//! Paper-table report builders.
//!
//! Each `tableN_report` function renders one results table to a
//! `String`; the `tableN` binaries are thin wrappers that print it, and
//! the golden-snapshot tests (`tests/golden_snapshots.rs`) diff the
//! same strings against the committed `results_tableN.txt` files, so a
//! change in any number the repository ships is a visible test failure,
//! not a silent drift.
//!
//! Progress chatter (table 5 builds whole experiment grids) goes to
//! stderr and is not part of the report.

use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sb_core::dataset::{NlSqlPair, SplitStats};
use sb_core::experiments::{
    build_domain_bundle, run_domain_grid, run_spider_rows, ExperimentConfig, ExperimentResult,
};
use sb_core::spider::{SpiderPairs, SpiderSetConfig};
use sb_data::{Domain, SizeClass, SpiderCorpus};
use sb_metrics::hardness::{classify_sql, Hardness};
use sb_metrics::{corpus_bleu, corpus_similarity, ExpertJudge};
use sb_nl::LlmProfile;
use sb_schema::stats::{humanize_count, humanize_gb};
use sb_schema::SchemaStats;

use crate::TextTable;

/// Table 1: complexity of the Spider databases versus the three
/// ScienceBenchmark databases.
pub fn table1_report(quick: bool) -> String {
    let size = if quick {
        SizeClass::Tiny
    } else {
        SizeClass::Full
    };
    let mut out = String::new();
    let _ = writeln!(out, "Table 1: database complexity (size class {size:?})\n");

    let mut t = TextTable::new(&[
        "Dataset",
        "DBs",
        "Tables",
        "Columns",
        "Rows (gen)",
        "Rows (extrapolated)",
        "Rows (paper)",
        "Avg rows/table (extrapolated)",
        "Size GB (extrapolated)",
        "Size GB (paper)",
    ]);

    // Spider-like corpus (aggregate over all member databases).
    let corpus = SpiderCorpus::build();
    let n_dbs = corpus.databases.len();
    let tables: usize = corpus
        .databases
        .iter()
        .map(|d| d.db.schema.tables.len())
        .sum();
    let columns: usize = corpus
        .databases
        .iter()
        .map(|d| d.db.schema.column_count())
        .sum();
    let rows: usize = corpus.databases.iter().map(|d| d.db.total_rows()).sum();
    let bytes: usize = corpus.databases.iter().map(|d| d.db.approx_bytes()).sum();
    t.row(&[
        "Spider-like".to_string(),
        n_dbs.to_string(),
        tables.to_string(),
        columns.to_string(),
        humanize_count(rows as f64),
        humanize_count(rows as f64),
        "1.6M".to_string(),
        humanize_count(rows as f64 / tables as f64),
        humanize_gb(bytes as f64),
        "0.51".to_string(),
    ]);

    let paper = [
        (Domain::Cordis, "671K", "1.0"),
        (Domain::Sdss, "86M", "6.1"),
        (Domain::OncoMx, "65.9M", "12.0"),
    ];
    for (domain, paper_rows, paper_gb) in paper {
        let d = domain.build(size);
        let stats = SchemaStats::new(
            &d.db.schema,
            d.db.total_rows(),
            d.db.approx_bytes(),
            d.scale_factor(),
        );
        // Bytes extrapolate independently: the real deployments store far
        // wider text payloads than the synthetic rows, so the harness
        // reports the real byte size from the domain constants.
        t.row(&[
            d.db.schema.name.to_uppercase(),
            "1".to_string(),
            stats.tables.to_string(),
            stats.columns.to_string(),
            humanize_count(stats.rows as f64),
            humanize_count(stats.extrapolated_rows()),
            paper_rows.to_string(),
            humanize_count(stats.extrapolated_rows() / stats.tables as f64),
            humanize_gb(d.real_bytes),
            paper_gb.to_string(),
        ]);
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\nShape check: CORDIS ≪ OncoMX < SDSS in rows; all three dwarf the \
         per-database Spider average, matching the paper."
    );
    out
}

/// Table 2: sizes and Spider-hardness distributions of every split.
pub fn table2_report(quick: bool) -> String {
    let cfg = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2: dataset hardness distributions (scale {:.2})\n",
        cfg.scale
    );

    let mut t = TextTable::new(&["Dataset", "Easy", "Medium", "Hard", "Extra Hard", "Total"]);
    let add = |t: &mut TextTable, name: String, stats: &SplitStats| {
        t.row(&[
            name,
            stats.cell(0),
            stats.cell(1),
            stats.cell(2),
            stats.cell(3),
            stats.total.to_string(),
        ]);
    };

    for domain in Domain::ALL {
        let bundle = build_domain_bundle(domain, &cfg);
        for (split, stats) in bundle.dataset.stats() {
            add(
                &mut t,
                format!("{} {split}", domain.name().to_uppercase()),
                &stats,
            );
        }
    }

    let spider_cfg = if quick {
        SpiderSetConfig::small()
    } else {
        SpiderSetConfig::default()
    };
    let spider = SpiderPairs::build(&spider_cfg);
    add(
        &mut t,
        "Spider-like Train".to_string(),
        &SplitStats::of(&spider.train),
    );
    add(
        &mut t,
        "Spider-like Dev".to_string(),
        &SplitStats::of(&spider.dev),
    );
    out.push_str(&t.render());

    let _ = writeln!(out, "\nPaper reference rows (Table 2):");
    let _ = writeln!(
        out,
        "  CORDIS Synth 1306: 55.6% / 37.8% / 5.1% / 1.5%  — synth skews easy"
    );
    let _ = writeln!(
        out,
        "  SDSS   Dev    100: 12% / 28% / 20% / 40%        — dev skews extra-hard"
    );
    let _ = writeln!(
        out,
        "\nShape check: every Synth split is easier than its Seed split \
         (§3.4 — complex templates generate semantically broken queries)."
    );
    out
}

/// Table 3: SQL-to-NL model comparison; `domains` adds the §4.1.2
/// per-domain expert scores of the fine-tuned GPT-3 model.
pub fn table3_report(quick: bool, domains: bool) -> String {
    let spider_cfg = if quick {
        SpiderSetConfig::small()
    } else {
        SpiderSetConfig {
            dev_total: 1032,
            ..SpiderSetConfig::default()
        }
    };
    let spider = SpiderPairs::build(&spider_cfg);
    // The paper samples 25 queries per expert × 7 experts = 175
    // annotations per model; the automatic metrics run on the full dev
    // set. We use the full dev set for everything.
    let dev = &spider.dev;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 3: SQL-to-NL model comparison on {} Spider-like dev queries\n",
        dev.len()
    );

    let mut models = LlmProfile::all(41);
    // Fine-tuning setup per §4.1: GPT-2 on all of Spider (20 epochs),
    // GPT-3 on a 468-pair subset, T5 on all of Spider; GPT-3-zero stays
    // zero-shot.
    for m in &mut models {
        if m.name != "GPT-3-zero" {
            for d in &spider.corpus.databases {
                m.fine_tune(
                    &d.db.schema.name,
                    if m.name == "GPT-3" { 468 } else { 8659 },
                );
            }
        }
    }

    let mut t = TextTable::new(&["Metric", "GPT-2", "GPT-3-zero", "GPT-3", "T5"]);
    let mut bleu_row = vec!["SacreBLEU".to_string()];
    let mut sim_row = vec!["SentenceBERT (surrogate)".to_string()];
    let mut human_row = vec!["Human Expert (simulated)".to_string()];

    for model in &mut models {
        let mut hyp_ref = Vec::with_capacity(dev.len());
        let mut judged = Vec::with_capacity(dev.len());
        for pair in dev {
            let db = spider
                .corpus
                .databases
                .iter()
                .find(|d| d.db.schema.name.eq_ignore_ascii_case(&pair.db))
                .expect("dev pair db exists");
            let query = sb_sql::parse(&pair.sql).expect("dev sql parses");
            let generated = model.translate(&query, &db.enhanced);
            hyp_ref.push((generated.clone(), pair.question.clone()));
            judged.push((generated, query));
        }
        let bleu = corpus_bleu(&hyp_ref);
        let sim = corpus_similarity(&hyp_ref);
        let mut judge = ExpertJudge::new(7);
        let human = judge.rate(&judged);
        bleu_row.push(format!("{bleu:.2}"));
        sim_row.push(format!("{sim:.3}"));
        human_row.push(format!("{human:.3}"));
    }
    t.row(&bleu_row);
    t.row(&sim_row);
    t.row(&human_row);
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\nPaper reference: SacreBLEU 33.85 / 30.36 / 38.55 / 31.79; \
         SentenceBERT 0.840 / 0.870 / 0.888 / 0.864; \
         Human 0.629 / 0.765 / 0.731 / 0.645."
    );
    let _ = writeln!(
        out,
        "Shape check: fine-tuned GPT-3 wins BLEU and similarity; both GPT-3 \
         variants beat GPT-2 and T5 on the expert metric."
    );

    if domains {
        let _ = writeln!(
            out,
            "\n§4.1.2: fine-tuned GPT-3 SQL-to-NL expert scores per domain\n"
        );
        let cfg = if quick {
            ExperimentConfig::quick()
        } else {
            ExperimentConfig::default()
        };
        let mut t = TextTable::new(&["Domain", "Expert score", "Paper"]);
        let paper = [("cordis", "0.82"), ("sdss", "0.53"), ("oncomx", "0.73")];
        for domain in [Domain::Cordis, Domain::Sdss, Domain::OncoMx] {
            let bundle = build_domain_bundle(domain, &cfg);
            let mut model = LlmProfile::gpt3_finetuned(41);
            model.fine_tune(domain.name(), bundle.dataset.seed.len() + 468);
            let mut judged = Vec::new();
            for pair in &bundle.dataset.dev {
                let query = sb_sql::parse(&pair.sql).expect("dev sql parses");
                let generated = model.translate(&query, &bundle.data.enhanced);
                judged.push((generated, query));
            }
            let mut judge = ExpertJudge::new(13);
            let score = judge.rate(&judged);
            let paper_score = paper
                .iter()
                .find(|(d, _)| *d == domain.name())
                .map(|(_, s)| *s)
                .unwrap_or("-");
            t.row(&[
                domain.name().to_uppercase(),
                format!("{score:.3}"),
                paper_score.to_string(),
            ]);
        }
        out.push_str(&t.render());
        let _ = writeln!(
            out,
            "\nShape note: per-clause errors compound with dev-set hardness, so \
             harder dev sets score lower in expectation; at --quick sample \
             sizes (~25 questions) individual orderings move by ±0.1."
        );
    }
    out
}

/// Proportional-by-hardness sample of up to `n` pairs (Table 4).
fn proportional_sample(pairs: &[NlSqlPair], n: usize, seed: u64) -> Vec<&NlSqlPair> {
    let mut buckets: [Vec<&NlSqlPair>; 4] = Default::default();
    for p in pairs {
        let h = classify_sql(&p.sql);
        let idx = Hardness::ALL.iter().position(|x| *x == h).expect("in ALL");
        buckets[idx].push(p);
    }
    let total = pairs.len().max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for bucket in &mut buckets {
        let want = (n * bucket.len()).div_ceil(total);
        bucket.shuffle(&mut rng);
        out.extend(bucket.iter().take(want).copied());
    }
    out.truncate(n);
    out
}

/// Table 4: semantic equivalence of the synthetic silver standard.
pub fn table4_report(quick: bool) -> String {
    let cfg = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 4: semantic equivalence of the synthetic (silver standard) data\n"
    );
    let mut t = TextTable::new(&[
        "Domain",
        "Total synth pairs",
        "Sampled",
        "Semantic equivalence",
        "Paper",
    ]);
    let paper = [("cordis", "83%"), ("sdss", "76%"), ("oncomx", "75%")];
    for domain in Domain::ALL {
        let bundle = build_domain_bundle(domain, &cfg);
        let synth = &bundle.dataset.synth;
        let sample = proportional_sample(synth, 100, 4242);
        let judged: Vec<(String, sb_sql::Query)> = sample
            .iter()
            .filter_map(|p| sb_sql::parse(&p.sql).ok().map(|q| (p.question.clone(), q)))
            .collect();
        let mut judge = ExpertJudge::new(21);
        let rate = judge.rate(&judged);
        let paper_rate = paper
            .iter()
            .find(|(d, _)| *d == domain.name())
            .map(|(_, s)| *s)
            .unwrap_or("-");
        t.row(&[
            domain.name().to_uppercase(),
            synth.len().to_string(),
            judged.len().to_string(),
            format!("{:.0}%", rate * 100.0),
            paper_rate.to_string(),
        ]);
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\nShape check: all three domains land in the paper's 70–90% band — \
         noisy but usable silver-standard data (paper: 83 / 76 / 75%)."
    );
    out
}

/// Table 5: execution accuracy grid. Builds whole experiment grids;
/// progress is reported through [`sb_obs::progress`] (silent unless
/// `SB_OBS` is set) while the report accumulates in the result.
pub fn table5_report(quick: bool, domains: &[Domain], spider_rows: bool) -> String {
    let cfg = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };

    sb_obs::progress("table5", "building Spider-like corpus + pair sets");
    let spider = SpiderPairs::build(&cfg.spider);
    sb_obs::progress(
        "table5",
        &format!(
            "{} train / {} dev pairs over {} databases",
            spider.train.len(),
            spider.dev.len(),
            spider.corpus.databases.len()
        ),
    );

    sb_obs::progress("table5", "running domain grid");
    let mut results = run_domain_grid(&cfg, &spider, domains);
    if spider_rows {
        sb_obs::progress("table5", "running Spider control rows");
        results.extend(run_spider_rows(&cfg, &spider));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "\nTable 5: execution accuracy (dev sets, simulated systems)\n"
    );
    out.push_str(&render_grid(&results));

    let _ = writeln!(out, "\nPaper reference (Table 5, ValueNet / T5 / SmBoP):");
    let _ = writeln!(
        out,
        "  CORDIS zero-shot .12/.16/.16 → seed+synth .35/.29/.21"
    );
    let _ = writeln!(
        out,
        "  SDSS   zero-shot .08/.05/.06 → seed+synth .21/.15/.15"
    );
    let _ = writeln!(
        out,
        "  OncoMX zero-shot .27/.21/.20 → seed+synth .57/.51/.46"
    );
    let _ = writeln!(
        out,
        "  Spider dev .70/.70/.74; +synth slightly lower; synth-only ~.35-.40"
    );
    let _ = writeln!(
        out,
        "\nShape checks: (1) zero-shot transfer to every science domain is \
         poor; (2) seed helps, synth helps more, seed+synth helps most; \
         (3) SDSS is the hardest domain; (4) Spider-dev accuracy is far \
         above any domain zero-shot row."
    );
    out
}

fn render_grid(results: &[ExperimentResult]) -> String {
    let systems = ["ValueNet", "T5-Large w/o PICARD", "SmBoP+GraPPa"];
    let mut t = TextTable::new(&[
        "Train Set",
        "Dev Set",
        "ValueNet",
        "T5-Large w/o PICARD",
        "SmBoP+GraPPa",
    ]);
    // Preserve first-seen regime order per domain.
    let mut seen: Vec<(String, String)> = Vec::new();
    for r in results {
        let key = (r.domain.clone(), r.regime.clone());
        if !seen.contains(&key) {
            seen.push(key);
        }
    }
    // Zero-shot accuracy per (domain, system) for the Δ column.
    let zero = |domain: &str, system: &str| -> Option<f64> {
        results
            .iter()
            .find(|r| r.domain == domain && r.system == system && r.regime.contains("Zero-Shot"))
            .map(|r| r.accuracy)
    };
    for (domain, regime) in seen {
        let mut cells = vec![regime.clone(), domain.to_uppercase()];
        for system in systems {
            let cell = results
                .iter()
                .find(|r| r.domain == domain && r.regime == regime && r.system == system)
                .map(|r| {
                    let base = zero(&domain, system).unwrap_or(r.accuracy);
                    if regime.contains("Zero-Shot") {
                        format!("{:.2}", r.accuracy)
                    } else {
                        format!("{:.2} ({:+.2})", r.accuracy, r.accuracy - base)
                    }
                })
                .unwrap_or_else(|| "-".to_string());
            cells.push(cell);
        }
        t.row(&cells);
    }
    t.render()
}
