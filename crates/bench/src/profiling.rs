//! The `profile_run` scenario as a library function, so the binary and
//! the metric-name registry test (`tests/names_registry.rs`) run the
//! exact same workload: one generation pipeline plus one Table 5 grid
//! cell per domain, with `sb-obs` collection on.

use sb_core::experiments::{build_domain_bundle, evaluate, fresh_systems, ExperimentConfig};
use sb_core::{SpiderPairs, SpiderSetConfig};
use sb_data::{Domain, SizeClass};
use sb_metrics::GoldCache;
use sb_nl2sql::{DbCatalog, Pair};

/// The `--quick` experiment shape `profile_run` and `check.sh` use:
/// tiny splits, seconds-scale.
pub fn quick_profile_config() -> ExperimentConfig {
    ExperimentConfig {
        size: SizeClass::Tiny,
        scale: 0.12,
        spider: SpiderSetConfig {
            train_total: 120,
            dev_total: 40,
            databases: 3,
            seed: 5,
        },
        seed: 5,
    }
}

/// Everything one domain's profile run measured, rendered by
/// `profile_run` into its JSON report.
pub struct ProfiledCell {
    /// `(seed, dev, synth)` split sizes of the generated dataset.
    pub splits: (usize, usize, usize),
    /// Name of the system the grid cell trained.
    pub system: String,
    /// Execution accuracy of that system on the dev split.
    pub accuracy: f64,
    /// Dev pairs scored.
    pub n_dev: usize,
    /// Gold-cache `(entries, hits, misses)` after scoring.
    pub gold_cache: (usize, u64, u64),
    /// The deterministic `sb-obs` snapshot for this domain's run.
    pub obs: sb_obs::Report,
}

/// Run one domain's profile cell: reset the `sb-obs` registries, build
/// the domain bundle (one full generation pipeline), train the first
/// system on Spider + the domain seed split, score the dev set through
/// a shared gold cache, and snapshot the collected metrics.
///
/// The caller owns collection mode (force `Summary` on when `Off`) and
/// builds the Spider corpus once — its counters are deliberately *not*
/// part of any domain's report.
pub fn profile_domain(
    domain: Domain,
    cfg: &ExperimentConfig,
    spider: &SpiderPairs,
    spider_train: &[Pair],
) -> ProfiledCell {
    // Per-domain isolation: each report starts from empty registries.
    sb_obs::reset();

    // One pipeline run (inside the bundle build) ...
    let bundle = build_domain_bundle(domain, cfg);

    // ... and one grid cell: train the first system on Spider + Seed,
    // score the dev set through a shared gold cache.
    let gold_cache = GoldCache::new();
    let mut training = spider_train.to_vec();
    training.extend(
        bundle
            .dataset
            .seed
            .iter()
            .map(|p| Pair::new(p.question.clone(), p.sql.clone(), p.db.clone())),
    );
    let mut system = fresh_systems().remove(0);
    let mut catalog_dbs: Vec<&sb_engine::Database> =
        spider.corpus.databases.iter().map(|d| &d.db).collect();
    catalog_dbs.push(&bundle.data.db);
    system.train(&training, &DbCatalog::new(catalog_dbs));
    let accuracy = evaluate(system.as_ref(), &bundle.dataset.dev, &gold_cache, |name| {
        if name.eq_ignore_ascii_case(domain.name()) {
            Some(&bundle.data.db)
        } else {
            None
        }
    });

    ProfiledCell {
        splits: (
            bundle.dataset.seed.len(),
            bundle.dataset.dev.len(),
            bundle.dataset.synth.len(),
        ),
        system: system.name().to_string(),
        accuracy,
        n_dev: bundle.dataset.dev.len(),
        gold_cache: (gold_cache.len(), gold_cache.hits(), gold_cache.misses()),
        obs: sb_obs::snapshot(),
    }
}
