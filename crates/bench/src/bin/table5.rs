//! Regenerates Table 5: execution accuracy of the three NL-to-SQL
//! systems under the four training regimes on each domain's Dev set,
//! plus the Spider-dev control rows.
//!
//! Flags: `--quick` (scaled-down run), `--domain cordis|sdss|oncomx`
//! (restrict to one domain), `--no-spider-rows` (skip the control rows).
//!
//! The report itself lives in [`sb_bench::reports::table5_report`] so
//! the golden-snapshot tests diff exactly what this binary prints;
//! progress chatter stays on stderr.

use sb_bench::{has_flag, quick_mode, reports};
use sb_data::Domain;

fn main() {
    let domains: Vec<Domain> = match std::env::args()
        .skip_while(|a| a != "--domain")
        .nth(1)
        .as_deref()
    {
        Some("cordis") => vec![Domain::Cordis],
        Some("sdss") => vec![Domain::Sdss],
        Some("oncomx") => vec![Domain::OncoMx],
        _ => Domain::ALL.to_vec(),
    };
    print!(
        "{}",
        reports::table5_report(quick_mode(), &domains, !has_flag("--no-spider-rows"))
    );
}
