//! Regenerates Table 5: execution accuracy of the three NL-to-SQL
//! systems under the four training regimes on each domain's Dev set,
//! plus the Spider-dev control rows.
//!
//! Flags: `--quick` (scaled-down run), `--domain cordis|sdss|oncomx`
//! (restrict to one domain), `--no-spider-rows` (skip the control rows).

use sb_bench::{has_flag, quick_mode, TextTable};
use sb_core::experiments::{run_domain_grid, run_spider_rows, ExperimentConfig, ExperimentResult};
use sb_core::spider::SpiderPairs;
use sb_data::Domain;

fn main() {
    let cfg = if quick_mode() {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    let domains: Vec<Domain> = match std::env::args()
        .skip_while(|a| a != "--domain")
        .nth(1)
        .as_deref()
    {
        Some("cordis") => vec![Domain::Cordis],
        Some("sdss") => vec![Domain::Sdss],
        Some("oncomx") => vec![Domain::OncoMx],
        _ => Domain::ALL.to_vec(),
    };

    eprintln!("building Spider-like corpus + pair sets ...");
    let spider = SpiderPairs::build(&cfg.spider);
    eprintln!(
        "  {} train / {} dev pairs over {} databases",
        spider.train.len(),
        spider.dev.len(),
        spider.corpus.databases.len()
    );

    eprintln!("running domain grid ...");
    let mut results = run_domain_grid(&cfg, &spider, &domains);
    if !has_flag("--no-spider-rows") {
        eprintln!("running Spider control rows ...");
        results.extend(run_spider_rows(&cfg, &spider));
    }

    println!("\nTable 5: execution accuracy (dev sets, simulated systems)\n");
    print_grid(&results);

    println!("\nPaper reference (Table 5, ValueNet / T5 / SmBoP):");
    println!("  CORDIS zero-shot .12/.16/.16 → seed+synth .35/.29/.21");
    println!("  SDSS   zero-shot .08/.05/.06 → seed+synth .21/.15/.15");
    println!("  OncoMX zero-shot .27/.21/.20 → seed+synth .57/.51/.46");
    println!("  Spider dev .70/.70/.74; +synth slightly lower; synth-only ~.35-.40");
    println!(
        "\nShape checks: (1) zero-shot transfer to every science domain is \
         poor; (2) seed helps, synth helps more, seed+synth helps most; \
         (3) SDSS is the hardest domain; (4) Spider-dev accuracy is far \
         above any domain zero-shot row."
    );
}

fn print_grid(results: &[ExperimentResult]) {
    let systems = ["ValueNet", "T5-Large w/o PICARD", "SmBoP+GraPPa"];
    let mut t = TextTable::new(&[
        "Train Set",
        "Dev Set",
        "ValueNet",
        "T5-Large w/o PICARD",
        "SmBoP+GraPPa",
    ]);
    // Preserve first-seen regime order per domain.
    let mut seen: Vec<(String, String)> = Vec::new();
    for r in results {
        let key = (r.domain.clone(), r.regime.clone());
        if !seen.contains(&key) {
            seen.push(key);
        }
    }
    // Zero-shot accuracy per (domain, system) for the Δ column.
    let zero = |domain: &str, system: &str| -> Option<f64> {
        results
            .iter()
            .find(|r| r.domain == domain && r.system == system && r.regime.contains("Zero-Shot"))
            .map(|r| r.accuracy)
    };
    for (domain, regime) in seen {
        let mut cells = vec![regime.clone(), domain.to_uppercase()];
        for system in systems {
            let cell = results
                .iter()
                .find(|r| r.domain == domain && r.regime == regime && r.system == system)
                .map(|r| {
                    let base = zero(&domain, system).unwrap_or(r.accuracy);
                    if regime.contains("Zero-Shot") {
                        format!("{:.2}", r.accuracy)
                    } else {
                        format!("{:.2} ({:+.2})", r.accuracy, r.accuracy - base)
                    }
                })
                .unwrap_or_else(|| "-".to_string());
            cells.push(cell);
        }
        t.row(&cells);
    }
    t.print();
}
