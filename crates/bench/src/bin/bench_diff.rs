//! `bench_diff` — compare two benchmark snapshots and flag regressions.
//!
//! The first automated consumer of the repo's perf trajectory: given a
//! baseline and a candidate snapshot of either benchmark document, it
//! prints a per-entry delta table and exits non-zero when any entry
//! regressed by more than the threshold.
//!
//! ```sh
//! cargo run --release -p sb-bench --bin bench_diff -- OLD.json NEW.json
//! cargo run --release -p sb-bench --bin bench_diff -- --threshold-pct 10 OLD.json NEW.json
//! ```
//!
//! Both document shapes are auto-detected from the JSON root:
//!
//! - `BENCH_engine.json` — a JSON **array** of criterion records; the
//!   compared figure is `ns_per_iter` per `(group, name)` (higher =
//!   slower).
//! - `BENCH_serve.json` — a JSON **object** with a `domains` array; the
//!   compared figures are `qps` (lower = slower) and the `latency_us`
//!   quantiles (higher = slower) per domain.
//!
//! Entries present in only one snapshot are reported but never fail the
//! gate (benchmarks come and go across PRs). Exit codes: 0 clean, 1
//! regression over threshold, 2 usage or unreadable/mismatched input.
//! `check.sh` runs this as an *informational* stage — wall-clock noise
//! on shared runners is real, so the gate's verdict is advisory there.

use serde_json::Value;

/// A comparison's polarity: is a bigger number better or worse?
#[derive(Clone, Copy, PartialEq)]
enum Direction {
    HigherIsWorse,
    LowerIsWorse,
}

/// One comparable figure extracted from a snapshot.
struct Entry {
    /// e.g. `engine_execution/q3_extra ns_per_iter` or `sdss qps`.
    key: String,
    value: f64,
    dir: Direction,
}

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn field<'a>(entries: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Flatten either document shape into comparable entries.
fn extract(doc: &Value, path: &str) -> Result<Vec<Entry>, String> {
    match doc {
        Value::Array(records) => {
            // Engine shape: [{group, name, ns_per_iter, ...}, ...]
            let mut out = Vec::new();
            for rec in records {
                let rec = rec
                    .as_object()
                    .ok_or_else(|| format!("{path}: array entry is not an object"))?;
                let group = field(rec, "group")
                    .and_then(|v| match v {
                        Value::Str(s) => Some(s.as_str()),
                        _ => None,
                    })
                    .ok_or_else(|| format!("{path}: record missing string `group`"))?;
                let name = field(rec, "name")
                    .and_then(|v| match v {
                        Value::Str(s) => Some(s.as_str()),
                        _ => None,
                    })
                    .ok_or_else(|| format!("{path}: record missing string `name`"))?;
                let ns = field(rec, "ns_per_iter")
                    .and_then(num)
                    .ok_or_else(|| format!("{path}: {group}/{name} missing `ns_per_iter`"))?;
                out.push(Entry {
                    key: format!("{group}/{name} ns_per_iter"),
                    value: ns,
                    dir: Direction::HigherIsWorse,
                });
            }
            Ok(out)
        }
        Value::Object(top) => {
            // Serve shape: {domains: [{domain, qps, latency_us: {...}}]}
            let domains = field(top, "domains")
                .and_then(|v| match v {
                    Value::Array(a) => Some(a),
                    _ => None,
                })
                .ok_or_else(|| format!("{path}: object document missing `domains` array"))?;
            let mut out = Vec::new();
            for d in domains {
                let d = d
                    .as_object()
                    .ok_or_else(|| format!("{path}: domain entry is not an object"))?;
                let name = field(d, "domain")
                    .and_then(|v| match v {
                        Value::Str(s) => Some(s.as_str()),
                        _ => None,
                    })
                    .ok_or_else(|| format!("{path}: domain entry missing `domain`"))?;
                let qps = field(d, "qps")
                    .and_then(num)
                    .ok_or_else(|| format!("{path}: {name} missing `qps`"))?;
                out.push(Entry {
                    key: format!("{name} qps"),
                    value: qps,
                    dir: Direction::LowerIsWorse,
                });
                let lat = field(d, "latency_us")
                    .and_then(Value::as_object)
                    .ok_or_else(|| format!("{path}: {name} missing `latency_us`"))?;
                for q in ["p50", "p95", "p99"] {
                    let v = field(lat, q)
                        .and_then(num)
                        .ok_or_else(|| format!("{path}: {name} latency missing `{q}`"))?;
                    out.push(Entry {
                        key: format!("{name} latency_us.{q}"),
                        value: v,
                        dir: Direction::HigherIsWorse,
                    });
                }
            }
            Ok(out)
        }
        _ => Err(format!("{path}: root must be a JSON array or object")),
    }
}

fn load(path: &str) -> Result<Vec<Entry>, String> {
    let content = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc: Value = serde_json::from_str(&content).map_err(|e| format!("{path}: {e}"))?;
    extract(&doc, path)
}

/// Signed "how much worse" percentage: positive = candidate regressed.
fn regression_pct(e_old: f64, e_new: f64, dir: Direction) -> f64 {
    if e_old.abs() < f64::EPSILON {
        return 0.0;
    }
    let delta_pct = (e_new - e_old) / e_old * 100.0;
    match dir {
        Direction::HigherIsWorse => delta_pct,
        Direction::LowerIsWorse => -delta_pct,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold_pct = 25.0f64;
    let mut paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold-pct" => {
                i += 1;
                threshold_pct = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threshold-pct needs a number"));
            }
            other if other.starts_with("--") => usage(&format!("unknown flag `{other}`")),
            other => paths.push(other.to_string()),
        }
        i += 1;
    }
    let [old_path, new_path] = paths.as_slice() else {
        usage("expected exactly two snapshot paths");
    };

    let old = load(old_path).unwrap_or_else(|e| fail(&e));
    let new = load(new_path).unwrap_or_else(|e| fail(&e));

    let mut regressions = 0usize;
    let mut compared = 0usize;
    for e_new in &new {
        let Some(e_old) = old.iter().find(|e| e.key == e_new.key) else {
            println!("bench_diff: {:<45} (new entry, no baseline)", e_new.key);
            continue;
        };
        compared += 1;
        let worse = regression_pct(e_old.value, e_new.value, e_new.dir);
        let verdict = if worse > threshold_pct {
            regressions += 1;
            "  REGRESSION"
        } else if worse < -threshold_pct {
            "  improved"
        } else {
            ""
        };
        println!(
            "bench_diff: {:<45} {:>14.1} -> {:>14.1}  ({:+.1}% {}){verdict}",
            e_new.key,
            e_old.value,
            e_new.value,
            worse,
            if e_new.dir == Direction::HigherIsWorse {
                "worse if +"
            } else {
                "slower if +"
            },
        );
    }
    for e_old in &old {
        if !new.iter().any(|e| e.key == e_old.key) {
            println!("bench_diff: {:<45} (dropped from candidate)", e_old.key);
        }
    }

    if regressions > 0 {
        eprintln!(
            "bench_diff: {regressions} of {compared} compared entries regressed \
             by more than {threshold_pct}%"
        );
        std::process::exit(1);
    }
    eprintln!("bench_diff: {compared} entries compared, none over the {threshold_pct}% threshold");
}

fn fail(msg: &str) -> ! {
    eprintln!("bench_diff: {msg}");
    std::process::exit(2);
}

fn usage(msg: &str) -> ! {
    eprintln!("bench_diff: {msg}");
    eprintln!("usage: bench_diff [--threshold-pct N] OLD.json NEW.json");
    std::process::exit(2);
}
