//! Reproduces Figure 2: extracting a query template (AST with leaf-node
//! quadruples) and applying it to generate new SQL — shown on the paper's
//! `neighbors` example, `SELECT T1.objid FROM neighbors AS T1 WHERE
//! T1.neighbormode = 2`.

use sb_bench::quick_mode;
use sb_data::{Domain, SizeClass};
use sb_gen::Generator;
use sb_semql::Assignment;
use sb_sql::Literal;

fn main() {
    let size = if quick_mode() {
        SizeClass::Tiny
    } else {
        SizeClass::Small
    };
    let domain = Domain::Sdss.build(size);

    // The seed whose template Figure 2 extracts.
    let source = "SELECT s.specobjid FROM specobj AS s WHERE s.subclass = 'STARBURST'";
    println!("Figure 2: query templates and leaf-node quadruples\n");
    println!("Source query:\n  {source}\n");

    let query = sb_sql::parse(source).expect("source parses");
    let template = sb_semql::extract(&query, &domain.db.schema).expect("extracts");

    println!("Template (AST with positional placeholders):");
    println!("  {}", template.signature());
    println!("\nLeaf-node quadruples — A(agg) T(table) C(column) V(value):");
    for quad in template.quadruples() {
        println!("  {quad}");
    }
    println!("\nSlot metadata:");
    println!("  table slots : {}", template.table_count);
    for (i, c) in template.columns.iter().enumerate() {
        println!(
            "  column {i}   : table T({}), contexts {:?}",
            c.table_slot, c.contexts
        );
    }
    for (i, v) in template.values.iter().enumerate() {
        println!(
            "  value {i}    : kind {:?}, bound to column {:?}",
            v.kind, v.column_slot
        );
    }

    // The paper's worked application: fill with the `neighbors` leaves.
    println!("\nDeterministic application (the paper's worked example):");
    let assignment = Assignment {
        tables: vec!["neighbors".to_string()],
        columns: vec!["objid".to_string(), "neighbormode".to_string()],
        values: vec![Literal::Int(2)],
    };
    let applied = template.instantiate(&assignment).expect("instantiates");
    println!("  {applied}");
    let rows = domain.db.run_query(&applied).expect("runs").len();
    println!("  → executes, {rows} rows");

    // Random applications through Algorithm 1's constrained sampler.
    println!("\nRandom applications (Algorithm 1 sampling):");
    let mut generator = Generator::new(&domain.db, &domain.enhanced, 2);
    let mut shown = 0;
    let mut attempts = 0;
    while shown < 4 && attempts < 300 {
        attempts += 1;
        if let Ok(q) = generator.fill(&template) {
            if domain
                .db
                .run_query(&q)
                .map(|r| !r.is_empty())
                .unwrap_or(false)
            {
                println!("  {q}");
                shown += 1;
            }
        }
    }
}
