//! Walks the Figure 1 pipeline end-to-end on the paper's running
//! example: the seed query `SELECT s.specobjid FROM specobj AS s WHERE
//! s.subclass = 'STARBURST'` flows through (1) seeding, (2) SQL
//! generation, (3) SQL-to-NL translation and (4) discriminative
//! selection, printing every intermediate artifact.

use sb_bench::quick_mode;
use sb_core::pipeline::{Pipeline, PipelineConfig};
use sb_data::{Domain, SizeClass};
use sb_embed::Discriminator;
use sb_gen::Generator;
use sb_nl::LlmProfile;

fn main() {
    let size = if quick_mode() {
        SizeClass::Tiny
    } else {
        SizeClass::Small
    };
    let domain = Domain::Sdss.build(size);
    let seed_sql = "SELECT s.specobjid FROM specobj AS s WHERE s.subclass = 'STARBURST'";
    println!("Figure 1: end-to-end automatic training-data generation\n");
    println!("Manually created seed query:\n  {seed_sql}\n");

    // ---- Phase 1: Seeding ----
    let query = sb_sql::parse(seed_sql).expect("seed parses");
    let template = sb_semql::extract(&query, &domain.db.schema).expect("template extracts");
    println!("Phase 1 — Seeding: query template (leaf nodes replaced by *)");
    println!("  skeleton : {}", template.signature());
    println!("  leaf quadruples:");
    for quad in template.quadruples() {
        println!("    {quad}");
    }
    println!();

    // ---- Phase 2: SQL generation ----
    let mut generator = Generator::new(&domain.db, &domain.enhanced, 1601);
    println!("Phase 2 — SQL Generation (enhanced-schema-constrained sampling):");
    let mut generated = Vec::new();
    let mut attempts = 0;
    while generated.len() < 2 && attempts < 200 {
        attempts += 1;
        if let Ok(q) = generator.fill(&template) {
            let sql = q.to_string();
            if domain
                .db
                .run_query(&q)
                .map(|r| !r.is_empty())
                .unwrap_or(false)
                && !generated.contains(&sql)
            {
                generated.push(sql);
            }
        }
    }
    for (i, sql) in generated.iter().enumerate() {
        println!("  Generated SQL ({}) : {sql}", i + 1);
    }
    println!();

    // ---- Phase 3: SQL-to-NL ----
    let mut llm = LlmProfile::gpt3_finetuned(1601);
    llm.fine_tune("sdss", domain.seed_patterns.len() + 468);
    let target = sb_sql::parse(&generated[0]).expect("generated sql parses");
    let candidates = llm.candidates(&target, &domain.enhanced, 8);
    println!("Phase 3 — SQL-to-NL Translation (fine-tuned GPT-3 profile, 8 candidates):");
    for (i, c) in candidates.iter().enumerate() {
        println!("  candidate {}: {c}", i + 1);
    }
    println!();

    // ---- Phase 4: Discriminative selection ----
    let selected = Discriminator::new(2).select(&candidates);
    println!("Phase 4 — Discriminative Phase (geometric-median selection, k = 2):");
    for (i, s) in selected.iter().enumerate() {
        println!("  selected {}: {s}", i + 1);
    }

    // ---- The packaged pipeline produces the same artifacts ----
    println!("\nPackaged pipeline run (target 12 pairs):");
    let mut pipeline = Pipeline::new(
        &domain,
        PipelineConfig {
            target_pairs: 12,
            gen_seed: 1601,
            llm_seed: 1601,
            ..Default::default()
        },
    );
    let report = pipeline.run(&[seed_sql.to_string()]);
    println!(
        "  {} templates, {} SQL queries, {} NL/SQL pairs \
         ({} sampling rejections, {} empty-result rejections)",
        report.templates,
        report.sql_queries,
        report.pairs.len(),
        report.gen_stats.rejected_sampling,
        report.gen_stats.rejected_empty,
    );
    for p in report.pairs.iter().take(4) {
        println!("    `{}`  ←→  `{}`", p.question, p.sql);
    }
}
