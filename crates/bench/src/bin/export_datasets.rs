//! Export the ScienceBenchmark datasets as JSON — the release format of
//! the paper's artifact (Seed / Dev / Synth per domain, plus the
//! Spider-like train/dev sets).
//!
//! ```sh
//! cargo run --release -p sb-bench --bin export_datasets -- [--quick] [--out DIR]
//! ```

use sb_bench::quick_mode;
use sb_core::experiments::{build_domain_bundle, ExperimentConfig};
use sb_core::spider::{SpiderPairs, SpiderSetConfig};
use sb_data::Domain;
use std::fs;
use std::path::PathBuf;

fn main() {
    let out: PathBuf = std::env::args()
        .skip_while(|a| a != "--out")
        .nth(1)
        .unwrap_or_else(|| "datasets".to_string())
        .into();
    fs::create_dir_all(&out).expect("create output directory");

    let cfg = if quick_mode() {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };

    for domain in Domain::ALL {
        eprintln!("building {} ...", domain.name());
        let bundle = build_domain_bundle(domain, &cfg);
        let path = out.join(format!("{}.json", domain.name()));
        fs::write(&path, bundle.dataset.to_json()).expect("write dataset");
        println!(
            "{}: seed {} / dev {} / synth {} → {}",
            domain.name(),
            bundle.dataset.seed.len(),
            bundle.dataset.dev.len(),
            bundle.dataset.synth.len(),
            path.display()
        );
    }

    eprintln!("building spider-like pair sets ...");
    let spider_cfg = if quick_mode() {
        SpiderSetConfig::small()
    } else {
        SpiderSetConfig::default()
    };
    let spider = SpiderPairs::build(&spider_cfg);
    let train_json = serde_json::to_string_pretty(&spider.train).expect("spider train serializes");
    let dev_json = serde_json::to_string_pretty(&spider.dev).expect("spider dev serializes");
    fs::write(out.join("spider_like_train.json"), train_json).expect("write train");
    fs::write(out.join("spider_like_dev.json"), dev_json).expect("write dev");
    println!(
        "spider-like: train {} / dev {} → {}",
        spider.train.len(),
        spider.dev.len(),
        out.display()
    );
}
