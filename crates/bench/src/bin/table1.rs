//! Regenerates Table 1: complexity of the Spider databases versus the
//! three ScienceBenchmark databases (tables, columns, rows, average rows
//! per table, size).
//!
//! The report itself lives in [`sb_bench::reports::table1_report`] so
//! the golden-snapshot tests diff exactly what this binary prints.

use sb_bench::{quick_mode, reports};

fn main() {
    print!("{}", reports::table1_report(quick_mode()));
}
