//! Regenerates Table 1: complexity of the Spider databases versus the
//! three ScienceBenchmark databases (tables, columns, rows, average rows
//! per table, size).
//!
//! The synthetic content is scaled (see `SizeClass`); the harness prints
//! both the measured scaled numbers and the real-deployment extrapolation
//! next to the paper's published values.

use sb_bench::{quick_mode, TextTable};
use sb_data::{Domain, SizeClass, SpiderCorpus};
use sb_schema::stats::{humanize_count, humanize_gb};
use sb_schema::SchemaStats;

fn main() {
    let size = if quick_mode() {
        SizeClass::Tiny
    } else {
        SizeClass::Full
    };
    println!("Table 1: database complexity (size class {size:?})\n");

    let mut t = TextTable::new(&[
        "Dataset",
        "DBs",
        "Tables",
        "Columns",
        "Rows (gen)",
        "Rows (extrapolated)",
        "Rows (paper)",
        "Avg rows/table (extrapolated)",
        "Size GB (extrapolated)",
        "Size GB (paper)",
    ]);

    // Spider-like corpus (aggregate over all member databases).
    let corpus = SpiderCorpus::build();
    let n_dbs = corpus.databases.len();
    let tables: usize = corpus
        .databases
        .iter()
        .map(|d| d.db.schema.tables.len())
        .sum();
    let columns: usize = corpus
        .databases
        .iter()
        .map(|d| d.db.schema.column_count())
        .sum();
    let rows: usize = corpus.databases.iter().map(|d| d.db.total_rows()).sum();
    let bytes: usize = corpus.databases.iter().map(|d| d.db.approx_bytes()).sum();
    t.row(&[
        "Spider-like".to_string(),
        n_dbs.to_string(),
        tables.to_string(),
        columns.to_string(),
        humanize_count(rows as f64),
        humanize_count(rows as f64),
        "1.6M".to_string(),
        humanize_count(rows as f64 / tables as f64),
        humanize_gb(bytes as f64),
        "0.51".to_string(),
    ]);

    let paper = [
        (Domain::Cordis, "671K", "1.0"),
        (Domain::Sdss, "86M", "6.1"),
        (Domain::OncoMx, "65.9M", "12.0"),
    ];
    for (domain, paper_rows, paper_gb) in paper {
        let d = domain.build(size);
        let stats = SchemaStats::new(
            &d.db.schema,
            d.db.total_rows(),
            d.db.approx_bytes(),
            d.scale_factor(),
        );
        // Bytes extrapolate independently: the real deployments store far
        // wider text payloads than the synthetic rows, so the harness
        // reports the real byte size from the domain constants.
        t.row(&[
            d.db.schema.name.to_uppercase(),
            "1".to_string(),
            stats.tables.to_string(),
            stats.columns.to_string(),
            humanize_count(stats.rows as f64),
            humanize_count(stats.extrapolated_rows()),
            paper_rows.to_string(),
            humanize_count(stats.extrapolated_rows() / stats.tables as f64),
            humanize_gb(d.real_bytes),
            paper_gb.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nShape check: CORDIS ≪ OncoMX < SDSS in rows; all three dwarf the \
         per-database Spider average, matching the paper."
    );
}
