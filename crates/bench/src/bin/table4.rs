//! Regenerates Table 4: manual (simulated-expert) evaluation of the
//! synthetic "silver standard" datasets — the fraction of generated NL
//! questions that are semantically equivalent to their generated SQL.
//!
//! As in the paper, 100 pairs per domain are sampled proportionally to
//! the synth split's hardness distribution and judged.
//!
//! The report itself lives in [`sb_bench::reports::table4_report`] so
//! the golden-snapshot tests diff exactly what this binary prints.

use sb_bench::{quick_mode, reports};

fn main() {
    print!("{}", reports::table4_report(quick_mode()));
}
