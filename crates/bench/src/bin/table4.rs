//! Regenerates Table 4: manual (simulated-expert) evaluation of the
//! synthetic "silver standard" datasets — the fraction of generated NL
//! questions that are semantically equivalent to their generated SQL.
//!
//! As in the paper, 100 pairs per domain are sampled proportionally to
//! the synth split's hardness distribution and judged.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sb_bench::{quick_mode, TextTable};
use sb_core::dataset::NlSqlPair;
use sb_core::experiments::{build_domain_bundle, ExperimentConfig};
use sb_data::Domain;
use sb_metrics::hardness::{classify_sql, Hardness};
use sb_metrics::ExpertJudge;

/// Proportional-by-hardness sample of up to `n` pairs.
fn proportional_sample(pairs: &[NlSqlPair], n: usize, seed: u64) -> Vec<&NlSqlPair> {
    let mut buckets: [Vec<&NlSqlPair>; 4] = Default::default();
    for p in pairs {
        let h = classify_sql(&p.sql);
        let idx = Hardness::ALL.iter().position(|x| *x == h).expect("in ALL");
        buckets[idx].push(p);
    }
    let total = pairs.len().max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for bucket in &mut buckets {
        let want = (n * bucket.len()).div_ceil(total);
        bucket.shuffle(&mut rng);
        out.extend(bucket.iter().take(want).copied());
    }
    out.truncate(n);
    out
}

fn main() {
    let cfg = if quick_mode() {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    println!("Table 4: semantic equivalence of the synthetic (silver standard) data\n");
    let mut t = TextTable::new(&[
        "Domain",
        "Total synth pairs",
        "Sampled",
        "Semantic equivalence",
        "Paper",
    ]);
    let paper = [("cordis", "83%"), ("sdss", "76%"), ("oncomx", "75%")];
    for domain in Domain::ALL {
        let bundle = build_domain_bundle(domain, &cfg);
        let synth = &bundle.dataset.synth;
        let sample = proportional_sample(synth, 100, 4242);
        let judged: Vec<(String, sb_sql::Query)> = sample
            .iter()
            .filter_map(|p| sb_sql::parse(&p.sql).ok().map(|q| (p.question.clone(), q)))
            .collect();
        let mut judge = ExpertJudge::new(21);
        let rate = judge.rate(&judged);
        let paper_rate = paper
            .iter()
            .find(|(d, _)| *d == domain.name())
            .map(|(_, s)| *s)
            .unwrap_or("-");
        t.row(&[
            domain.name().to_uppercase(),
            synth.len().to_string(),
            judged.len().to_string(),
            format!("{:.0}%", rate * 100.0),
            paper_rate.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nShape check: all three domains land in the paper's 70–90% band — \
         noisy but usable silver-standard data (paper: 83 / 76 / 75%)."
    );
}
