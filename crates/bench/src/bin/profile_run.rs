//! `profile_run` — machine-readable observability run reports.
//!
//! For each selected domain, runs one generation pipeline (Figure 1)
//! and one Table 5 grid cell (train one system, score the dev set
//! through the shared gold cache) with `sb-obs` collection forced on,
//! then emits one JSON run report per domain on stdout:
//!
//! ```sh
//! cargo run --release -p sb-bench --bin profile_run -- --quick --domain sdss
//! cargo run --release -p sb-bench --bin profile_run -- --validate report.json
//! ```
//!
//! Flags:
//!
//! - `--quick`         tiny splits and corpus, seconds-scale (check.sh uses this)
//! - `--domain NAME`   one of cordis / sdss / oncomx (default: all three)
//! - `--timings`       include wall-clock span totals (off by default, so
//!   the output is deterministic for a fixed workload)
//! - `--validate FILE` validate that FILE is well-formed JSON and exit
//!
//! The report embeds the deterministic `sb-obs` counter snapshot
//! (`Report::to_json(false)` unless `--timings`), the pipeline's phase
//! accounting, and the grid cell's gold-cache effectiveness. Without
//! `--timings` the output contains no wall-clock field at all.

use sb_bench::profiling::{profile_domain, quick_profile_config};
use sb_core::experiments::ExperimentConfig;
use sb_core::SpiderPairs;
use sb_data::Domain;
use sb_nl2sql::Pair;
use sb_obs::json::escape;
use std::fmt::Write as _;

fn parse_domain(name: &str) -> Option<Domain> {
    Domain::ALL
        .into_iter()
        .find(|d| d.name().eq_ignore_ascii_case(name))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut timings = false;
    let mut domains: Vec<Domain> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--timings" => timings = true,
            "--domain" => {
                i += 1;
                let name = args
                    .get(i)
                    .unwrap_or_else(|| usage("--domain needs a value"));
                match parse_domain(name) {
                    Some(d) => domains.push(d),
                    None => usage(&format!("unknown domain `{name}`")),
                }
            }
            "--validate" => {
                i += 1;
                let path = args
                    .get(i)
                    .unwrap_or_else(|| usage("--validate needs a file path"));
                validate_file(path);
                return;
            }
            other => usage(&format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    if domains.is_empty() {
        domains.extend(Domain::ALL);
    }

    // The whole point of this binary is the report: force collection on
    // when SB_OBS left it off. An explicit SB_OBS=json still upgrades
    // the stderr side to JSON event lines.
    if sb_obs::mode() == sb_obs::Mode::Off {
        sb_obs::set_mode(sb_obs::Mode::Summary);
    }

    let cfg = if quick {
        quick_profile_config()
    } else {
        ExperimentConfig::quick()
    };
    sb_obs::progress("profile_run", "building Spider-like corpus");
    let spider = SpiderPairs::build(&cfg.spider);
    let spider_train: Vec<Pair> = spider
        .train
        .iter()
        .map(|p| Pair::new(p.question.clone(), p.sql.clone(), p.db.clone()))
        .collect();

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"report\": \"sb-obs profile_run\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"domains\": [");
    for (di, &domain) in domains.iter().enumerate() {
        sb_obs::progress("profile_run", &format!("profiling {}", domain.name()));
        let cell = profile_domain(domain, &cfg, &spider, &spider_train);

        if di > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        let _ = writeln!(out, "      \"domain\": \"{}\",", escape(domain.name()));
        let _ = writeln!(
            out,
            "      \"splits\": {{\"seed\": {}, \"dev\": {}, \"synth\": {}}},",
            cell.splits.0, cell.splits.1, cell.splits.2
        );
        let _ = writeln!(
            out,
            "      \"grid_cell\": {{\"system\": \"{}\", \"accuracy\": {}, \"n_dev\": {}, \
             \"gold_cache\": {{\"entries\": {}, \"hits\": {}, \"misses\": {}}}}},",
            escape(&cell.system),
            sb_obs::json::number(cell.accuracy),
            cell.n_dev,
            cell.gold_cache.0,
            cell.gold_cache.1,
            cell.gold_cache.2
        );
        // Indent the embedded obs report to keep the document readable.
        let obs_json = cell.obs.to_json(timings).replace('\n', "\n      ");
        let _ = writeln!(out, "      \"obs\": {obs_json}");
        out.push_str("    }");
    }
    out.push_str("\n  ]\n}\n");

    // Self-check before printing: a malformed report must fail loudly,
    // not propagate into tooling.
    if let Err(e) = sb_obs::json::validate(&out) {
        eprintln!("profile_run: internal error, emitted invalid JSON: {e}");
        std::process::exit(2);
    }
    print!("{out}");
    sb_obs::emit_stderr();
}

fn validate_file(path: &str) {
    match std::fs::read_to_string(path) {
        Ok(content) => match sb_obs::json::validate(&content) {
            Ok(()) => println!("{path}: valid JSON"),
            Err(e) => {
                eprintln!("{path}: INVALID JSON: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("profile_run: {msg}");
    eprintln!(
        "usage: profile_run [--quick] [--timings] [--domain cordis|sdss|oncomx]... \
         | --validate FILE"
    );
    std::process::exit(2);
}
