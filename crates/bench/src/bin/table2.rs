//! Regenerates Table 2: sizes and Spider-hardness distributions of every
//! ScienceBenchmark split (Seed / Dev / Synth per domain) plus the
//! Spider-like train/dev sets.
//!
//! The report itself lives in [`sb_bench::reports::table2_report`] so
//! the golden-snapshot tests diff exactly what this binary prints.

use sb_bench::{quick_mode, reports};

fn main() {
    print!("{}", reports::table2_report(quick_mode()));
}
