//! Regenerates Table 2: sizes and Spider-hardness distributions of every
//! ScienceBenchmark split (Seed / Dev / Synth per domain) plus the
//! Spider-like train/dev sets.

use sb_bench::{quick_mode, TextTable};
use sb_core::dataset::SplitStats;
use sb_core::experiments::{build_domain_bundle, ExperimentConfig};
use sb_core::spider::{SpiderPairs, SpiderSetConfig};
use sb_data::Domain;
use sb_metrics::Hardness;

fn main() {
    let cfg = if quick_mode() {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    println!(
        "Table 2: dataset hardness distributions (scale {:.2})\n",
        cfg.scale
    );

    let mut t = TextTable::new(&["Dataset", "Easy", "Medium", "Hard", "Extra Hard", "Total"]);
    let add = |t: &mut TextTable, name: String, stats: &SplitStats| {
        t.row(&[
            name,
            stats.cell(0),
            stats.cell(1),
            stats.cell(2),
            stats.cell(3),
            stats.total.to_string(),
        ]);
    };

    for domain in Domain::ALL {
        let bundle = build_domain_bundle(domain, &cfg);
        for (split, stats) in bundle.dataset.stats() {
            add(
                &mut t,
                format!("{} {split}", domain.name().to_uppercase()),
                &stats,
            );
        }
    }

    let spider_cfg = if quick_mode() {
        SpiderSetConfig::small()
    } else {
        SpiderSetConfig::default()
    };
    let spider = SpiderPairs::build(&spider_cfg);
    add(
        &mut t,
        "Spider-like Train".to_string(),
        &SplitStats::of(&spider.train),
    );
    add(
        &mut t,
        "Spider-like Dev".to_string(),
        &SplitStats::of(&spider.dev),
    );
    t.print();

    println!("\nPaper reference rows (Table 2):");
    println!("  CORDIS Synth 1306: 55.6% / 37.8% / 5.1% / 1.5%  — synth skews easy");
    println!("  SDSS   Dev    100: 12% / 28% / 20% / 40%        — dev skews extra-hard");
    println!(
        "\nShape check: every Synth split is easier than its Seed split \
         (§3.4 — complex templates generate semantically broken queries)."
    );
    let _ = Hardness::ALL; // classes documented above
}
