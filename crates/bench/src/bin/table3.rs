//! Regenerates Table 3: comparison of the four SQL-to-NL language models
//! on the Spider-like dev set, measured with SacreBLEU, embedding
//! similarity (the SentenceBERT surrogate) and the simulated human-expert
//! judge. `--domains` additionally reproduces §4.1.2: the per-domain
//! expert scores of the fine-tuned GPT-3 model (CORDIS 82%, OncoMX 73%,
//! SDSS 53% in the paper).

use sb_bench::{has_flag, quick_mode, TextTable};
use sb_core::experiments::{build_domain_bundle, ExperimentConfig};
use sb_core::spider::{SpiderPairs, SpiderSetConfig};
use sb_data::Domain;
use sb_metrics::{corpus_bleu, corpus_similarity, ExpertJudge};
use sb_nl::LlmProfile;

fn main() {
    let spider_cfg = if quick_mode() {
        SpiderSetConfig::small()
    } else {
        SpiderSetConfig {
            dev_total: 1032,
            ..SpiderSetConfig::default()
        }
    };
    let spider = SpiderPairs::build(&spider_cfg);
    // The paper samples 25 queries per expert × 7 experts = 175
    // annotations per model; the automatic metrics run on the full dev
    // set. We use the full dev set for everything.
    let dev = &spider.dev;
    println!(
        "Table 3: SQL-to-NL model comparison on {} Spider-like dev queries\n",
        dev.len()
    );

    let mut models = LlmProfile::all(41);
    // Fine-tuning setup per §4.1: GPT-2 on all of Spider (20 epochs),
    // GPT-3 on a 468-pair subset, T5 on all of Spider; GPT-3-zero stays
    // zero-shot.
    for m in &mut models {
        if m.name != "GPT-3-zero" {
            for d in &spider.corpus.databases {
                m.fine_tune(
                    &d.db.schema.name,
                    if m.name == "GPT-3" { 468 } else { 8659 },
                );
            }
        }
    }

    let mut t = TextTable::new(&["Metric", "GPT-2", "GPT-3-zero", "GPT-3", "T5"]);
    let mut bleu_row = vec!["SacreBLEU".to_string()];
    let mut sim_row = vec!["SentenceBERT (surrogate)".to_string()];
    let mut human_row = vec!["Human Expert (simulated)".to_string()];

    for model in &mut models {
        let mut hyp_ref = Vec::with_capacity(dev.len());
        let mut judged = Vec::with_capacity(dev.len());
        for pair in dev {
            let db = spider
                .corpus
                .databases
                .iter()
                .find(|d| d.db.schema.name.eq_ignore_ascii_case(&pair.db))
                .expect("dev pair db exists");
            let query = sb_sql::parse(&pair.sql).expect("dev sql parses");
            let generated = model.translate(&query, &db.enhanced);
            hyp_ref.push((generated.clone(), pair.question.clone()));
            judged.push((generated, query));
        }
        let bleu = corpus_bleu(&hyp_ref);
        let sim = corpus_similarity(&hyp_ref);
        let mut judge = ExpertJudge::new(7);
        let human = judge.rate(&judged);
        bleu_row.push(format!("{bleu:.2}"));
        sim_row.push(format!("{sim:.3}"));
        human_row.push(format!("{human:.3}"));
    }
    t.row(&bleu_row);
    t.row(&sim_row);
    t.row(&human_row);
    t.print();
    println!(
        "\nPaper reference: SacreBLEU 33.85 / 30.36 / 38.55 / 31.79; \
         SentenceBERT 0.840 / 0.870 / 0.888 / 0.864; \
         Human 0.629 / 0.765 / 0.731 / 0.645."
    );
    println!(
        "Shape check: fine-tuned GPT-3 wins BLEU and similarity; both GPT-3 \
         variants beat GPT-2 and T5 on the expert metric."
    );

    if has_flag("--domains") {
        println!("\n§4.1.2: fine-tuned GPT-3 SQL-to-NL expert scores per domain\n");
        let cfg = if quick_mode() {
            ExperimentConfig::quick()
        } else {
            ExperimentConfig::default()
        };
        let mut t = TextTable::new(&["Domain", "Expert score", "Paper"]);
        let paper = [("cordis", "0.82"), ("sdss", "0.53"), ("oncomx", "0.73")];
        for domain in [Domain::Cordis, Domain::Sdss, Domain::OncoMx] {
            let bundle = build_domain_bundle(domain, &cfg);
            let mut model = LlmProfile::gpt3_finetuned(41);
            model.fine_tune(domain.name(), bundle.dataset.seed.len() + 468);
            let mut judged = Vec::new();
            for pair in &bundle.dataset.dev {
                let query = sb_sql::parse(&pair.sql).expect("dev sql parses");
                let generated = model.translate(&query, &bundle.data.enhanced);
                judged.push((generated, query));
            }
            let mut judge = ExpertJudge::new(13);
            let score = judge.rate(&judged);
            let paper_score = paper
                .iter()
                .find(|(d, _)| *d == domain.name())
                .map(|(_, s)| *s)
                .unwrap_or("-");
            t.row(&[
                domain.name().to_uppercase(),
                format!("{score:.3}"),
                paper_score.to_string(),
            ]);
        }
        t.print();
        println!(
            "\nShape note: per-clause errors compound with dev-set hardness, so \
             harder dev sets score lower in expectation; at --quick sample \
             sizes (~25 questions) individual orderings move by ±0.1."
        );
    }
}
