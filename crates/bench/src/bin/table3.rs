//! Regenerates Table 3: comparison of the four SQL-to-NL language models
//! on the Spider-like dev set, measured with SacreBLEU, embedding
//! similarity (the SentenceBERT surrogate) and the simulated human-expert
//! judge. `--domains` additionally reproduces §4.1.2: the per-domain
//! expert scores of the fine-tuned GPT-3 model (CORDIS 82%, OncoMX 73%,
//! SDSS 53% in the paper).
//!
//! The report itself lives in [`sb_bench::reports::table3_report`] so
//! the golden-snapshot tests diff exactly what this binary prints.

use sb_bench::{has_flag, quick_mode, reports};

fn main() {
    print!(
        "{}",
        reports::table3_report(quick_mode(), has_flag("--domains"))
    );
}
