//! # sb-bench — the table/figure regeneration harness
//!
//! One binary per table and figure of the paper's evaluation:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 — database complexity |
//! | `table2` | Table 2 — dataset sizes and hardness distributions |
//! | `table3` | Table 3 — SQL-to-NL model comparison (+ §4.1.2 `--domains`) |
//! | `table4` | Table 4 — silver-standard semantic equivalence |
//! | `table5` | Table 5 — NL-to-SQL execution accuracy grid |
//! | `figure1` | Figure 1 — pipeline walkthrough on the `neighbors` example |
//! | `figure2` | Figure 2 — template extraction and leaf quadruples |
//!
//! Every binary accepts `--quick` for a scaled-down run; absolute numbers
//! are produced by the simulated substrate (see DESIGN.md §1), so the
//! claims to check are *relative*: orderings, gaps and trends.
//!
//! Criterion micro-benchmarks for every substrate live in
//! `benches/microbench.rs`.

use std::fmt::Write as _;

pub mod profiling;
pub mod reports;

/// A plain-text table printer with fixed-width columns.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given header cells.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "| {:w$} ", c, w = widths[i]);
            }
            out.push_str("|\n");
        };
        write_row(&mut out, &self.header);
        for (i, w) in widths.iter().enumerate() {
            let _ = write!(out, "|{:-<w$}", "", w = w + 2);
            if i == widths.len() - 1 {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Render and print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Whether `--quick` was passed on the command line.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Whether a specific flag was passed.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(&["alpha".to_string(), "1".to_string()]);
        t.row(&["b".to_string(), "1234567".to_string()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        let widths: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{r}");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_enforced() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only one".to_string()]);
    }
}
