//! Criterion micro-benchmarks for every substrate of the reproduction,
//! plus the ablation benches DESIGN.md calls out (enhanced-schema
//! constraints on/off, discriminative phase on/off, k ∈ {1,2}).
//!
//! ```sh
//! cargo bench -p sb-bench
//! ```

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sb_core::{Pipeline, PipelineConfig};
use sb_data::{synth_db, Domain, SizeClass, SynthScale};
use sb_embed::{embed, select_top_k};
use sb_gen::Generator;
use sb_nl::{LlmProfile, Realizer, Style};
use sb_nl2sql::{DbCatalog, NlToSql, Pair, SmBopSim, T5Sim, ValueNetSim};

const PARSE_CASES: [&str; 3] = [
    "SELECT s.specobjid FROM specobj AS s WHERE s.subclass = 'STARBURST'",
    "SELECT s.bestobjid, s.ra, s.dec, s.z FROM specobj AS s \
     WHERE s.class = 'GALAXY' AND s.z > 0.5 AND s.z < 1",
    "SELECT p.objid, s.specobjid FROM photoobj AS p \
     JOIN specobj AS s ON s.bestobjid = p.objid \
     WHERE s.class = 'GALAXY' AND p.u - p.r < 2.22 AND p.u - p.r > 1",
];

fn bench_parser(c: &mut Criterion) {
    let mut g = c.benchmark_group("sql_parser");
    for (label, sql) in ["q1_easy", "q2_medium", "q3_extra"].iter().zip(PARSE_CASES) {
        g.bench_function(label, |b| {
            b.iter(|| sb_sql::parse(std::hint::black_box(sql)))
        });
    }
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    use sb_engine::ExecOptions;
    let d = Domain::Sdss.build(SizeClass::Small);
    let mut g = c.benchmark_group("engine_execution");
    g.sample_size(20);
    // The headline names run with default options (columnar batch engine
    // on); the `_row` twins force the row-at-a-time path, so the pair
    // isolates the vectorization win on the exact historical workload.
    let row_opts = ExecOptions {
        columnar: false,
        ..ExecOptions::default()
    };
    let agg = "SELECT s.class, COUNT(*), AVG(s.z) FROM specobj AS s GROUP BY s.class";
    let cases = ["q1_easy", "q2_medium", "q3_extra", "grouped_aggregation"]
        .iter()
        .zip([PARSE_CASES[0], PARSE_CASES[1], PARSE_CASES[2], agg]);
    for (label, sql) in cases {
        let q = sb_sql::parse(sql).unwrap();
        g.bench_function(label, |b| {
            b.iter(|| d.db.run_query(std::hint::black_box(&q)))
        });
        g.bench_function(&format!("{label}_row"), |b| {
            b.iter(|| d.db.run_query_with(std::hint::black_box(&q), row_opts))
        });
    }
    g.finish();
}

/// One query per vectorized kernel over the `sb_data::synth` workload:
/// `filter` isolates the predicate kernels (numeric compare +
/// dictionary LUT equality over a selection vector), `hash_probe` the
/// batch hash join (every fk matches exactly one dim row), `aggregate`
/// the grouped kernels (16 dictionary-keyed groups, COUNT/SUM/AVG
/// accumulators).
const SYNTH_KERNELS: [(&str, &str); 3] = [
    ("filter", "SELECT id FROM t WHERE val > 0.5 AND flag = 3"),
    ("hash_probe", "SELECT t.id FROM t JOIN dim ON t.fk = dim.id"),
    (
        "aggregate",
        "SELECT grp, COUNT(*), SUM(val), AVG(val) FROM t GROUP BY grp",
    ),
];

/// The synthetic scales to bench: all three by default, or the one
/// selected with `cargo bench -p sb-bench -- --scale 10k|100k|1m`.
fn selected_scales() -> Vec<SynthScale> {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--scale") {
        None => SynthScale::ALL.to_vec(),
        Some(i) => {
            let value = args.get(i + 1).map(String::as_str).unwrap_or("");
            match SynthScale::parse(value) {
                Some(s) => vec![s],
                None => {
                    eprintln!("microbench: --scale wants 10k, 100k or 1m (got `{value}`)");
                    std::process::exit(2);
                }
            }
        }
    }
}

fn bench_columnar_operators(c: &mut Criterion) {
    use sb_engine::ExecOptions;
    // Each kernel at each selected scale, with a `_row` twin on the
    // row-at-a-time engine — the pair isolates the vectorization win.
    let row_opts = ExecOptions {
        columnar: false,
        ..ExecOptions::default()
    };
    let mut g = c.benchmark_group("columnar_operators");
    g.sample_size(10);
    for scale in selected_scales() {
        let db = synth_db(scale.rows());
        for (kernel, sql) in SYNTH_KERNELS {
            let q = sb_sql::parse(sql).unwrap();
            // Pay the lazy column-vector build once, outside the timer.
            db.run_query(&q).unwrap();
            g.bench_function(&format!("{kernel}_{}", scale.label()), |b| {
                b.iter(|| db.run_query(std::hint::black_box(&q)))
            });
            g.bench_function(&format!("{kernel}_{}_row", scale.label()), |b| {
                b.iter(|| db.run_query_with(std::hint::black_box(&q), row_opts))
            });
        }
    }
    g.finish();
}

fn bench_scaling_curve(c: &mut Criterion) {
    use sb_engine::ExecOptions;
    // Rows vs throughput per operator, serial vs morsel-parallel. The
    // serial leg pins `parallel: false`; the parallel leg runs the
    // default options, so `RAYON_NUM_THREADS` governs the fan-out the
    // way it does in deployment. Both compute byte-identical results —
    // the curve measures scheduling, never semantics.
    let serial = ExecOptions {
        parallel: false,
        ..ExecOptions::default()
    };
    let parallel = ExecOptions::default();
    let mut g = c.benchmark_group("scaling_curve");
    g.sample_size(10);
    for scale in selected_scales() {
        let db = synth_db(scale.rows());
        for (kernel, sql) in SYNTH_KERNELS {
            let q = sb_sql::parse(sql).unwrap();
            // Pay the lazy column-vector build once, outside the timer.
            db.run_query(&q).unwrap();
            g.bench_function(&format!("{kernel}_{}_serial", scale.label()), |b| {
                b.iter(|| db.run_query_with(std::hint::black_box(&q), serial))
            });
            g.bench_function(&format!("{kernel}_{}_parallel", scale.label()), |b| {
                b.iter(|| db.run_query_with(std::hint::black_box(&q), parallel))
            });
        }
    }
    g.finish();
}

fn bench_engine_compiled(c: &mut Criterion) {
    use sb_engine::ExecOptions;
    let d = Domain::Sdss.build(SizeClass::Small);
    let mut g = c.benchmark_group("engine_execution_compiled");
    g.sample_size(20);
    // The compile-once layer in isolation: identical plans, expression
    // programs vs. per-row AST interpretation.
    let agg = "SELECT s.class, COUNT(*), AVG(s.z) FROM specobj AS s GROUP BY s.class";
    let cases = ["q1_easy", "q2_medium", "q3_extra", "grouped_aggregation"]
        .iter()
        .zip([PARSE_CASES[0], PARSE_CASES[1], PARSE_CASES[2], agg]);
    for (label, sql) in cases {
        let q = sb_sql::parse(sql).unwrap();
        for (suffix, compiled) in [("compiled", true), ("interpreted", false)] {
            let opts = ExecOptions {
                compiled,
                ..ExecOptions::default()
            };
            g.bench_function(&format!("{label}_{suffix}"), |b| {
                b.iter(|| d.db.run_query_with(std::hint::black_box(&q), opts))
            });
        }
    }
    g.finish();
}

fn bench_exec_acc_cached(c: &mut Criterion) {
    use sb_metrics::{execution_accuracy, execution_accuracy_cached, GoldCache};
    let d = Domain::Sdss.build(SizeClass::Small);
    // A dev-set-shaped workload: each gold query scored against several
    // predictions, as the Table 5 grid does once per (system × regime).
    let pairs: Vec<(String, String)> = d
        .seed_patterns
        .iter()
        .flat_map(|gold| {
            [
                (gold.clone(), gold.clone()),
                (gold.clone(), "SELECT broken FROM".to_string()),
                (gold.clone(), d.seed_patterns[0].clone()),
            ]
        })
        .collect();
    let mut g = c.benchmark_group("exec_acc_cached");
    g.sample_size(10);
    g.bench_function("uncached", |b| {
        b.iter(|| execution_accuracy(&d.db, std::hint::black_box(&pairs)))
    });
    // One cache across iterations: gold executions amortize to zero,
    // as in a grid run where every cell shares the bundle's cache.
    let cache = GoldCache::new();
    g.bench_function("cached_warm", |b| {
        b.iter(|| execution_accuracy_cached(&cache, &d.db, std::hint::black_box(&pairs)))
    });
    // Cache effectiveness lands next to the timing in BENCH_engine.json:
    // distinct gold queries, lookups served from the memo, and the hit
    // rate over the whole measured run.
    let lookups = cache.hits() + cache.misses();
    g.metric("gold_cache_entries", cache.len() as f64);
    g.metric("gold_cache_hits", cache.hits() as f64);
    g.metric("gold_cache_misses", cache.misses() as f64);
    g.metric(
        "gold_cache_hit_rate",
        if lookups == 0 {
            0.0
        } else {
            cache.hits() as f64 / lookups as f64
        },
    );
    g.finish();
}

fn bench_join_strategies(c: &mut Criterion) {
    use sb_engine::{ExecOptions, JoinStrategy};
    let d = Domain::Sdss.build(SizeClass::Small);
    let mut g = c.benchmark_group("join_strategies");
    g.sample_size(10);
    // The perf-trajectory anchor: the extra-hard join query before the
    // engine rework (cloning scans, nested-loop join, no pushdown) vs.
    // after (zero-copy scans, hash join, pushdown).
    let q3 = sb_sql::parse(PARSE_CASES[2]).unwrap();
    g.bench_function("q3_extra_before", |b| {
        b.iter(|| {
            d.db.run_query_with(std::hint::black_box(&q3), ExecOptions::legacy())
        })
    });
    g.bench_function("q3_extra_after", |b| {
        b.iter(|| {
            d.db.run_query_with(std::hint::black_box(&q3), ExecOptions::default())
        })
    });
    // Join strategy in isolation: the same bare equi-join, hash vs.
    // nested loop.
    let join = sb_sql::parse(
        "SELECT p.objid, s.specobjid FROM photoobj AS p \
         JOIN specobj AS s ON s.bestobjid = p.objid",
    )
    .unwrap();
    for (label, join_strategy) in [
        ("equi_join_hash", JoinStrategy::Auto),
        ("equi_join_nested_loop", JoinStrategy::NestedLoop),
    ] {
        let opts = ExecOptions {
            join: join_strategy,
            ..ExecOptions::default()
        };
        g.bench_function(label, |b| {
            b.iter(|| d.db.run_query_with(std::hint::black_box(&join), opts))
        });
    }
    // Predicate pushdown in isolation on a selective single-table scan.
    let filtered =
        sb_sql::parse("SELECT s.specobjid FROM specobj AS s WHERE s.class = 'QSO' AND s.z > 1.0")
            .unwrap();
    for (label, predicate_pushdown) in [
        ("filtered_scan_pushdown", true),
        ("filtered_scan_no_pushdown", false),
    ] {
        let opts = ExecOptions {
            predicate_pushdown,
            ..ExecOptions::default()
        };
        g.bench_function(label, |b| {
            b.iter(|| d.db.run_query_with(std::hint::black_box(&filtered), opts))
        });
    }
    g.finish();
}

fn bench_templates_and_generation(c: &mut Criterion) {
    let d = Domain::Sdss.build(SizeClass::Tiny);
    let q = sb_sql::parse(PARSE_CASES[2]).unwrap();
    let mut g = c.benchmark_group("phase1_phase2");
    g.bench_function("template_extract_q3", |b| {
        b.iter(|| sb_semql::extract(std::hint::black_box(&q), &d.db.schema))
    });
    let template = sb_semql::extract(&q, &d.db.schema).unwrap();
    g.bench_function("algorithm1_fill", |b| {
        b.iter_batched(
            || Generator::new(&d.db, &d.enhanced, 7),
            |mut gen| {
                let _ = gen.fill(std::hint::black_box(&template));
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_nl_and_embedding(c: &mut Criterion) {
    let d = Domain::Sdss.build(SizeClass::Tiny);
    let q = sb_sql::parse(PARSE_CASES[1]).unwrap();
    let realizer = Realizer::new(&d.enhanced);
    let mut g = c.benchmark_group("phase3_phase4");
    g.bench_function("realize_q2", |b| {
        b.iter(|| realizer.realize(std::hint::black_box(&q), Style::reference()))
    });
    g.bench_function("llm_translate_q2", |b| {
        b.iter_batched(
            || {
                let mut m = LlmProfile::gpt3_finetuned(3);
                m.fine_tune("sdss", 468);
                m
            },
            |mut m| m.translate(std::hint::black_box(&q), &d.enhanced),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("embed_sentence", |b| {
        b.iter(|| {
            embed(std::hint::black_box(
                "find the redshift of spectroscopically observed galaxies",
            ))
        })
    });
    let candidates: Vec<String> = (0..8)
        .map(|i| format!("find galaxies with redshift over 0.{i}"))
        .collect();
    g.bench_function("discriminator_select_8", |b| {
        b.iter(|| select_top_k(std::hint::black_box(&candidates), 2))
    });
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let d = Domain::Sdss.build(SizeClass::Tiny);
    let seeds = d.seed_patterns.clone();
    let mut g = c.benchmark_group("pipeline_end_to_end");
    g.sample_size(10);
    // Ablations: constraints on/off, discrimination on/off, k ∈ {1,2}.
    let configs = [
        ("full_k2", true, true, 2usize),
        ("no_enhanced_constraints", false, true, 2),
        ("no_discrimination", true, false, 2),
        ("keep_k1", true, true, 1),
    ];
    for (label, use_enhanced, discriminate, k) in configs {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut pipeline = Pipeline::new(
                    &d,
                    PipelineConfig {
                        target_pairs: 12,
                        use_enhanced_constraints: use_enhanced,
                        discriminate,
                        keep_k: k,
                        ..Default::default()
                    },
                );
                pipeline.run(std::hint::black_box(&seeds))
            })
        });
    }
    g.finish();
}

fn bench_nl2sql_predict(c: &mut Criterion) {
    let d = Domain::Sdss.build(SizeClass::Tiny);
    let catalog = DbCatalog::new([&d.db]);
    let pairs: Vec<Pair> = d
        .seed_patterns
        .iter()
        .map(|sql| {
            let q = sb_sql::parse(sql).unwrap();
            let realizer = Realizer::new(&d.enhanced);
            Pair::new(
                realizer.realize(&q, Style::reference()),
                sql.clone(),
                "sdss",
            )
        })
        .collect();
    let question = "Find the spectroscopic objects whose class is GALAXY";
    let mut g = c.benchmark_group("nl2sql_predict");
    g.sample_size(10);

    let mut vn = ValueNetSim::new();
    vn.train(&pairs, &catalog);
    g.bench_function("valuenet", |b| {
        b.iter(|| vn.predict(std::hint::black_box(question), &d.db))
    });
    let mut t5 = T5Sim::new();
    t5.train(&pairs, &catalog);
    g.bench_function("t5", |b| {
        b.iter(|| t5.predict(std::hint::black_box(question), &d.db))
    });
    let mut sb = SmBopSim::new();
    sb.train(&pairs, &catalog);
    g.bench_function("smbop", |b| {
        b.iter(|| sb.predict(std::hint::black_box(question), &d.db))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_parser,
    bench_engine,
    bench_columnar_operators,
    bench_scaling_curve,
    bench_engine_compiled,
    bench_exec_acc_cached,
    bench_join_strategies,
    bench_templates_and_generation,
    bench_nl_and_embedding,
    bench_pipeline,
    bench_nl2sql_predict
);
criterion_main!(benches);
