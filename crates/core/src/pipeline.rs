//! The four-phase automatic training-data generation pipeline (Figure 1).
//!
//! 1. **Seeding** — extract SemQL templates from the seed SQL queries;
//! 2. **SQL generation** — fill templates through the enhanced-schema-
//!    constrained sampler (Algorithm 1), keeping only executable,
//!    non-empty, de-duplicated queries;
//! 3. **SQL-to-NL** — the (simulated) fine-tuned GPT-3 generates 8
//!    candidate questions per query;
//! 4. **Discriminative selection** — keep the `k ∈ {1, 2}` candidates
//!    closest to the geometric median of the candidate embeddings
//!    (Equation 1).

use crate::dataset::NlSqlPair;
use rayon::prelude::*;
use sb_data::DomainData;
use sb_embed::Discriminator;
use sb_gen::{GenOptions, GenStats, Generator};
use sb_nl::LlmProfile;
use sb_semql::Template;
use std::collections::HashSet;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Target number of synthetic NL/SQL pairs.
    pub target_pairs: usize,
    /// Candidate questions generated per SQL query (the paper uses 8).
    pub candidates_per_query: usize,
    /// Candidates kept per query (the paper uses 1 or 2).
    pub keep_k: usize,
    /// RNG seed for SQL generation.
    pub gen_seed: u64,
    /// RNG seed for the language model.
    pub llm_seed: u64,
    /// Whether the enhanced-schema constraints are applied (ablation
    /// switch; `false` reproduces unconstrained sampling).
    pub use_enhanced_constraints: bool,
    /// Whether Phase 4 runs (ablation switch; `false` keeps the first
    /// `keep_k` candidates unfiltered).
    pub discriminate: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            target_pairs: 200,
            candidates_per_query: 8,
            keep_k: 2,
            gen_seed: 17,
            llm_seed: 17,
            use_enhanced_constraints: true,
            discriminate: true,
        }
    }
}

/// What the pipeline produced, with phase-level accounting.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// The synthetic pairs (the "Synth" split).
    pub pairs: Vec<NlSqlPair>,
    /// Number of templates extracted in Phase 1.
    pub templates: usize,
    /// Number of distinct SQL queries generated in Phase 2.
    pub sql_queries: usize,
    /// Phase 2 rejection statistics.
    pub gen_stats: GenStats,
    /// NL candidate questions produced in Phase 3 (before selection).
    pub nl_candidates: usize,
    /// Candidates dropped by Phase 4 (the discriminator, or the plain
    /// `keep_k` truncation when discrimination is ablated off).
    pub dropped_discriminator: usize,
    /// Selected questions dropped as duplicates while merging (counted
    /// until the pair target is reached).
    pub dropped_duplicate: usize,
}

/// The pipeline, bound to one domain.
pub struct Pipeline<'a> {
    domain: &'a DomainData,
    /// The SQL-to-NL model (Phase 3). Defaults to fine-tuned GPT-3 —
    /// the winner of the paper's Table 3 comparison.
    pub llm: LlmProfile,
    config: PipelineConfig,
}

impl<'a> Pipeline<'a> {
    /// Create a pipeline with the default (fine-tuned GPT-3) translator.
    /// The model is fine-tuned on the seed pairs plus the 468 Spider
    /// pairs, mirroring §4.1.2.
    pub fn new(domain: &'a DomainData, config: PipelineConfig) -> Self {
        let mut llm = LlmProfile::gpt3_finetuned(config.llm_seed);
        llm.fine_tune(&domain.db.schema.name, domain.seed_patterns.len() + 468);
        Pipeline {
            domain,
            llm,
            config,
        }
    }

    /// Phase 1: extract de-duplicated templates from seed SQL.
    pub fn seeding_phase(&self, seeds: &[String]) -> Vec<Template> {
        let mut out: Vec<Template> = Vec::new();
        let mut seen = HashSet::new();
        for sql in seeds {
            let Ok(query) = sb_sql::parse(sql) else {
                continue;
            };
            let Ok(template) = sb_semql::extract(&query, &self.domain.db.schema) else {
                continue;
            };
            if seen.insert(template.signature()) {
                out.push(template);
            }
        }
        out
    }

    /// Run all four phases over the given seed SQL queries.
    pub fn run(&mut self, seeds: &[String]) -> PipelineReport {
        // Phase 1: Seeding.
        let phase1 = sb_obs::span("pipeline.phase1.seeding");
        let templates = self.seeding_phase(seeds);

        // §3.4: "with more complex templates the generated queries tend to
        // be semantically incorrect" — the pipeline therefore draws easier
        // templates more often, which is what skews the synth split toward
        // the Easy/Medium classes in Table 2. Implemented as replication
        // weights (4/3/2/1 by source-query hardness).
        let templates: Vec<sb_semql::Template> = {
            let mut weighted = Vec::new();
            for t in templates {
                let weight = match sb_metrics::hardness::classify_sql(&t.source) {
                    sb_metrics::Hardness::Easy => 4,
                    sb_metrics::Hardness::Medium => 3,
                    sb_metrics::Hardness::Hard => 2,
                    sb_metrics::Hardness::ExtraHard => 1,
                };
                for _ in 0..weight {
                    weighted.push(t.clone());
                }
            }
            weighted
        };
        let n_templates = {
            let mut seen = std::collections::HashSet::new();
            templates
                .iter()
                .filter(|t| seen.insert(t.signature()))
                .count()
        };
        sb_obs::count("pipeline.templates_extracted", n_templates as u64);
        drop(phase1);

        // Phase 2: SQL generation. The discriminator keeps 1–2 questions
        // per query, so the query budget equals the pair target (Phase 3
        // stops early once the target is met).
        let phase2 = sb_obs::span("pipeline.phase2.sql_gen");
        let sql_target = self.config.target_pairs;
        let mut generator =
            Generator::new(&self.domain.db, &self.domain.enhanced, self.config.gen_seed);
        generator.use_enhanced_constraints = self.config.use_enhanced_constraints;
        let (generated, gen_stats) =
            generator.generate(&templates, sql_target, &GenOptions::default());
        if sb_obs::enabled() {
            sb_obs::count("pipeline.sql.accepted", gen_stats.accepted as u64);
            sb_obs::count(
                "pipeline.sql.rejected_sampling",
                gen_stats.rejected_sampling as u64,
            );
            sb_obs::count(
                "pipeline.sql.rejected_execution",
                gen_stats.rejected_execution as u64,
            );
            sb_obs::count(
                "pipeline.sql.rejected_empty",
                gen_stats.rejected_empty as u64,
            );
            sb_obs::count(
                "pipeline.sql.rejected_duplicate",
                gen_stats.rejected_duplicate as u64,
            );
        }
        drop(phase2);

        // Phases 3 + 4: translate and select, fanned out across queries.
        // Every worker gets its own LLM clone reseeded from (llm_seed,
        // query index), and results merge in query order, so the output
        // is byte-identical for any RAYON_NUM_THREADS.
        let phase34 = sb_obs::span("pipeline.phase34.nl_translate_select");
        let discriminator = Discriminator::new(self.config.keep_k);
        let kept_per_query: Vec<Vec<String>> = (0..generated.len())
            .into_par_iter()
            .map(|i| {
                let mut llm = self.llm.clone();
                llm.reseed(
                    self.config
                        .llm_seed
                        .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                );
                let candidates = llm.candidates(
                    &generated[i].query,
                    &self.domain.enhanced,
                    self.config.candidates_per_query,
                );
                if self.config.discriminate {
                    discriminator
                        .select(&candidates)
                        .into_iter()
                        .cloned()
                        .collect()
                } else {
                    candidates.into_iter().take(self.config.keep_k).collect()
                }
            })
            .collect();
        drop(phase34);

        let nl_candidates = generated.len() * self.config.candidates_per_query;
        let kept_total: usize = kept_per_query.iter().map(Vec::len).sum();
        let dropped_discriminator = nl_candidates - kept_total;

        let mut pairs = Vec::new();
        let mut dropped_duplicate = 0usize;
        'merge: for (gq, kept) in generated.iter().zip(kept_per_query) {
            let sql = gq.query.to_string();
            // Distinct questions only: the discriminator can select two
            // identical realizations.
            let mut seen_q = HashSet::new();
            for q in kept {
                if seen_q.insert(q.clone()) {
                    pairs.push(NlSqlPair::new(
                        q,
                        sql.clone(),
                        self.domain.db.schema.name.clone(),
                    ));
                } else {
                    dropped_duplicate += 1;
                }
            }
            if pairs.len() >= self.config.target_pairs {
                break 'merge;
            }
        }
        pairs.truncate(self.config.target_pairs);

        if sb_obs::enabled() {
            sb_obs::count("pipeline.nl.candidates", nl_candidates as u64);
            sb_obs::count(
                "pipeline.nl.dropped_discriminator",
                dropped_discriminator as u64,
            );
            sb_obs::count("pipeline.nl.dropped_duplicate", dropped_duplicate as u64);
            sb_obs::count("pipeline.pairs_emitted", pairs.len() as u64);
        }

        PipelineReport {
            pairs,
            templates: n_templates,
            sql_queries: generated.len(),
            gen_stats,
            nl_candidates,
            dropped_discriminator,
            dropped_duplicate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SplitStats;
    use sb_data::{Domain, SizeClass};

    fn run_sdss(config: PipelineConfig) -> PipelineReport {
        let d = Domain::Sdss.build(SizeClass::Tiny);
        let seeds = d.seed_patterns.clone();
        let mut p = Pipeline::new(&d, config);
        p.run(&seeds)
    }

    #[test]
    fn produces_target_pairs() {
        let report = run_sdss(PipelineConfig {
            target_pairs: 60,
            ..Default::default()
        });
        assert_eq!(report.pairs.len(), 60);
        assert!(report.templates >= 10);
        assert!(report.sql_queries >= 30);
    }

    #[test]
    fn synth_sql_is_executable_and_nonempty() {
        let d = Domain::Sdss.build(SizeClass::Tiny);
        let seeds = d.seed_patterns.clone();
        let mut p = Pipeline::new(
            &d,
            PipelineConfig {
                target_pairs: 40,
                ..Default::default()
            },
        );
        let report = p.run(&seeds);
        for pair in &report.pairs {
            let rs = d.db.run(&pair.sql).expect("synth sql executes");
            assert!(!rs.is_empty(), "{}", pair.sql);
        }
    }

    #[test]
    fn pipeline_is_deterministic() {
        let a = run_sdss(PipelineConfig {
            target_pairs: 30,
            ..Default::default()
        });
        let b = run_sdss(PipelineConfig {
            target_pairs: 30,
            ..Default::default()
        });
        assert_eq!(a.pairs, b.pairs);
    }

    #[test]
    fn synth_hardness_skews_lower_than_seed() {
        // §3.4: "the complexities of the queries generated by our pipeline
        // are generally lower than the complexity of the manually created
        // training data".
        let d = Domain::Sdss.build(SizeClass::Tiny);
        let seeds = d.seed_patterns.clone();
        let mut p = Pipeline::new(
            &d,
            PipelineConfig {
                target_pairs: 80,
                ..Default::default()
            },
        );
        let report = p.run(&seeds);
        let stats = SplitStats::of(&report.pairs);
        // Easy+Medium dominate.
        assert!(stats.counts[0] + stats.counts[1] > stats.counts[2] + stats.counts[3]);
    }

    #[test]
    fn distinct_questions_per_query() {
        let report = run_sdss(PipelineConfig {
            target_pairs: 40,
            ..Default::default()
        });
        // No (question, sql) duplicates.
        let mut seen = HashSet::new();
        for p in &report.pairs {
            assert!(seen.insert((p.question.clone(), p.sql.clone())));
        }
    }
}
