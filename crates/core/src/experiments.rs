//! The Table 5 experiment runner.
//!
//! For each scientific domain, four training regimes are evaluated on the
//! domain's Dev set with execution accuracy, for each of the three
//! NL-to-SQL systems; three control rows evaluate on the Spider-like dev
//! set. Regimes follow §5.2:
//!
//! 1. Spider Train (zero-shot);
//! 2. Spider Train + domain Seed;
//! 3. Spider Train + domain Synth;
//! 4. Spider Train + domain Seed + Synth.

use crate::assemble::{assemble_expert_set, assemble_expert_set_styled, Quotas};
use crate::dataset::{BenchmarkDataset, NlSqlPair};
use crate::pipeline::{Pipeline, PipelineConfig};
use crate::spider::{SpiderPairs, SpiderSetConfig};
use rayon::prelude::*;
use sb_data::{Domain, DomainData, SizeClass};
use sb_engine::Database;
use sb_metrics::{execution_match_cached, GoldCache};
use sb_nl2sql::{DbCatalog, NlToSql, Pair, SmBopSim, T5Sim, ValueNetSim};
use std::collections::HashSet;

/// The four §5.2 training regimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainRegime {
    /// Spider Train only (zero-shot transfer).
    ZeroShot,
    /// Spider Train + the domain's expert Seed pairs.
    PlusSeed,
    /// Spider Train + the domain's synthetic pairs.
    PlusSynth,
    /// Spider Train + Seed + Synth.
    PlusSeedSynth,
}

impl TrainRegime {
    /// All four regimes, in Table 5 row order.
    pub const ALL: [TrainRegime; 4] = [
        TrainRegime::ZeroShot,
        TrainRegime::PlusSeed,
        TrainRegime::PlusSynth,
        TrainRegime::PlusSeedSynth,
    ];

    /// The row label used in Table 5.
    pub fn label(&self, domain: &str) -> String {
        match self {
            TrainRegime::ZeroShot => "Spider Train (Zero-Shot)".to_string(),
            TrainRegime::PlusSeed => format!("Spider Train + Seed {domain}"),
            TrainRegime::PlusSynth => format!("Spider Train + Synth {domain}"),
            TrainRegime::PlusSeedSynth => {
                format!("Spider Train + Seed {domain} + Synth {domain}")
            }
        }
    }
}

/// One cell of Table 5.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Domain name (or "spider" for the control rows).
    pub domain: String,
    /// Row label.
    pub regime: String,
    /// System name.
    pub system: String,
    /// Execution accuracy on the dev set.
    pub accuracy: f64,
    /// Dev-set size.
    pub n_dev: usize,
}

/// Experiment sizing. `scale` < 1 shrinks every split proportionally for
/// fast runs; 1.0 reproduces the paper's dataset sizes.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Database content size.
    pub size: SizeClass,
    /// Split-size multiplier relative to the paper's Table 2 sizes.
    pub scale: f64,
    /// Spider-like corpus sizing.
    pub spider: SpiderSetConfig,
    /// Master RNG seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            size: SizeClass::Small,
            scale: 1.0,
            spider: SpiderSetConfig::default(),
            seed: 99,
        }
    }
}

impl ExperimentConfig {
    /// A configuration sized for minutes-scale runs: quarter-size splits
    /// over a reduced Spider corpus.
    pub fn quick() -> Self {
        ExperimentConfig {
            size: SizeClass::Small,
            scale: 0.25,
            spider: SpiderSetConfig::small(),
            seed: 99,
        }
    }
}

/// The paper's Table 2 quotas for a domain: (seed, dev, synth-total).
pub fn paper_quotas(domain: Domain) -> (Quotas, Quotas, usize) {
    match domain {
        Domain::Cordis => (Quotas([4, 15, 38, 43]), Quotas([25, 35, 19, 21]), 1306),
        Domain::Sdss => (Quotas([20, 54, 2, 24]), Quotas([12, 28, 20, 40]), 2061),
        Domain::OncoMx => (Quotas([21, 20, 7, 2]), Quotas([39, 49, 11, 4]), 1065),
    }
}

fn scaled_quota(q: Quotas, scale: f64) -> Quotas {
    let mut out = [0usize; 4];
    for (o, &n) in out.iter_mut().zip(q.0.iter()) {
        if n > 0 {
            *o = ((n as f64 * scale).round() as usize).max(1);
        }
    }
    Quotas(out)
}

/// A fully prepared domain: content plus the three dataset splits.
pub struct DomainBundle {
    /// The domain's database, enhanced schema and patterns.
    pub data: DomainData,
    /// The assembled Seed/Dev/Synth dataset.
    pub dataset: BenchmarkDataset,
}

/// Build a domain's dataset with (scaled) paper quotas: Seed and Dev by
/// expert assembly, Synth by the Figure 1 pipeline seeded with the Seed
/// split's SQL.
pub fn build_domain_bundle(domain: Domain, cfg: &ExperimentConfig) -> DomainBundle {
    let data = domain.build(cfg.size);
    let (seed_q, dev_q, synth_n) = paper_quotas(domain);
    let mut exclude = HashSet::new();
    let seed = assemble_expert_set(
        &data.db,
        &data.enhanced,
        &data.seed_patterns,
        scaled_quota(seed_q, cfg.scale),
        cfg.seed,
        &mut exclude,
    );
    let dev = assemble_expert_set_styled(
        &data.db,
        &data.enhanced,
        &data.seed_patterns,
        scaled_quota(dev_q, cfg.scale),
        cfg.seed ^ 0xDE,
        &mut exclude,
        3,
    );
    let seed_sql: Vec<String> = seed.iter().map(|p| p.sql.clone()).collect();
    let mut pipeline = Pipeline::new(
        &data,
        PipelineConfig {
            target_pairs: ((synth_n as f64 * cfg.scale).round() as usize).max(8),
            gen_seed: cfg.seed ^ 0x51,
            llm_seed: cfg.seed ^ 0x52,
            ..Default::default()
        },
    );
    let report = pipeline.run(&seed_sql);
    let dataset = BenchmarkDataset {
        domain: domain.name().to_string(),
        seed,
        dev,
        synth: report.pairs,
    };
    DomainBundle { data, dataset }
}

fn to_train_pairs(pairs: &[NlSqlPair]) -> Vec<Pair> {
    pairs
        .iter()
        .map(|p| Pair::new(p.question.clone(), p.sql.clone(), p.db.clone()))
        .collect()
}

/// Fresh instances of the three systems.
pub fn fresh_systems() -> Vec<Box<dyn NlToSql>> {
    vec![
        Box::new(ValueNetSim::new()),
        Box::new(T5Sim::new()),
        Box::new(SmBopSim::new()),
    ]
}

/// Evaluate one system on dev pairs; `lookup` resolves each pair's
/// database. Pairs are scored in parallel — prediction and execution
/// matching are read-only, and accuracy is an order-independent mean, so
/// the result does not depend on the thread count. Gold executions are
/// served from `cache`: the grid scores the same dev set once per
/// (system × regime) cell, so each gold query runs once per database
/// rather than once per cell.
pub fn evaluate<'a>(
    system: &dyn NlToSql,
    dev: &[NlSqlPair],
    cache: &GoldCache,
    lookup: impl Fn(&str) -> Option<&'a Database> + Sync,
) -> f64 {
    if dev.is_empty() {
        return 0.0;
    }
    let hits: Vec<bool> = dev
        .par_iter()
        .map(|pair| {
            let Some(db) = lookup(&pair.db) else {
                return false;
            };
            let predicted = system.predict(&pair.question, db);
            execution_match_cached(cache, db, &pair.sql, &predicted)
        })
        .collect();
    hits.iter().filter(|h| **h).count() as f64 / dev.len() as f64
}

/// Run the full Table 5 domain grid. Returns one [`ExperimentResult`] per
/// (domain × regime × system) cell.
pub fn run_domain_grid(
    cfg: &ExperimentConfig,
    spider: &SpiderPairs,
    domains: &[Domain],
) -> Vec<ExperimentResult> {
    let spider_train = to_train_pairs(&spider.train);
    let mut results = Vec::new();
    for &domain in domains {
        let bundle = build_domain_bundle(domain, cfg);
        let seed_pairs = to_train_pairs(&bundle.dataset.seed);
        let synth_pairs = to_train_pairs(&bundle.dataset.synth);
        // One cache per bundle: every (regime × system) cell scores the
        // same dev set, so each gold query executes exactly once.
        let gold_cache = GoldCache::new();
        for regime in TrainRegime::ALL {
            let mut training = spider_train.clone();
            match regime {
                TrainRegime::ZeroShot => {}
                TrainRegime::PlusSeed => training.extend(seed_pairs.clone()),
                TrainRegime::PlusSynth => training.extend(synth_pairs.clone()),
                TrainRegime::PlusSeedSynth => {
                    training.extend(seed_pairs.clone());
                    training.extend(synth_pairs.clone());
                }
            }
            let mut catalog_dbs: Vec<&Database> =
                spider.corpus.databases.iter().map(|d| &d.db).collect();
            catalog_dbs.push(&bundle.data.db);
            let catalog = DbCatalog::new(catalog_dbs);
            for mut system in fresh_systems() {
                system.train(&training, &catalog);
                let acc = evaluate(system.as_ref(), &bundle.dataset.dev, &gold_cache, |name| {
                    if name.eq_ignore_ascii_case(domain.name()) {
                        Some(&bundle.data.db)
                    } else {
                        None
                    }
                });
                results.push(ExperimentResult {
                    domain: domain.name().to_string(),
                    regime: regime.label(domain.name()),
                    system: system.name().to_string(),
                    accuracy: acc,
                    n_dev: bundle.dataset.dev.len(),
                });
            }
        }
    }
    results
}

/// Run the three Spider-dev control rows of Table 5: Spider Train,
/// Spider Train + Synth Spider, and Synth Spider alone.
pub fn run_spider_rows(cfg: &ExperimentConfig, spider: &SpiderPairs) -> Vec<ExperimentResult> {
    // Synth Spider: run the pipeline over every corpus database.
    let mut synth = Vec::new();
    let per_db = ((spider.train.len() as f64 * 0.25 / spider.corpus.databases.len() as f64).round()
        as usize)
        .max(6);
    for (i, d) in spider.corpus.databases.iter().enumerate() {
        let domain_data = sb_data::DomainData {
            db: d.db.clone(),
            enhanced: d.enhanced.clone(),
            real_rows: d.db.total_rows() as f64,
            real_bytes: d.db.approx_bytes() as f64,
            seed_patterns: d.seed_patterns.clone(),
        };
        let mut pipeline = Pipeline::new(
            &domain_data,
            PipelineConfig {
                target_pairs: per_db,
                gen_seed: cfg.seed ^ (0x600 + i as u64),
                llm_seed: cfg.seed ^ (0x700 + i as u64),
                ..Default::default()
            },
        );
        let report = pipeline.run(&d.seed_patterns);
        synth.extend(report.pairs);
    }

    let spider_train = to_train_pairs(&spider.train);
    let synth_train = to_train_pairs(&synth);
    let regimes: [(&str, Vec<Pair>); 3] = [
        ("Spider Train (Zero-Shot)", spider_train.clone()),
        ("Spider Train + Synth Spider", {
            let mut t = spider_train.clone();
            t.extend(synth_train.clone());
            t
        }),
        ("Synth Spider", synth_train),
    ];

    let catalog = DbCatalog::new(spider.corpus.databases.iter().map(|d| &d.db));
    let gold_cache = GoldCache::new();
    let mut results = Vec::new();
    for (label, training) in regimes {
        for mut system in fresh_systems() {
            system.train(&training, &catalog);
            let acc = evaluate(system.as_ref(), &spider.dev, &gold_cache, |name| {
                spider
                    .corpus
                    .databases
                    .iter()
                    .find(|d| d.db.schema.name.eq_ignore_ascii_case(name))
                    .map(|d| &d.db)
            });
            results.push(ExperimentResult {
                domain: "spider".to_string(),
                regime: label.to_string(),
                system: system.name().to_string(),
                accuracy: acc,
                n_dev: spider.dev.len(),
            });
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature end-to-end run asserting the paper's *shape*: training
    /// with domain data beats zero-shot for every system.
    #[test]
    fn domain_training_beats_zero_shot() {
        let cfg = ExperimentConfig {
            size: SizeClass::Tiny,
            scale: 0.12,
            spider: SpiderSetConfig {
                train_total: 120,
                dev_total: 40,
                databases: 3,
                seed: 5,
            },
            seed: 5,
        };
        let spider = SpiderPairs::build(&cfg.spider);
        let results = run_domain_grid(&cfg, &spider, &[Domain::Sdss]);
        assert_eq!(results.len(), 12, "4 regimes × 3 systems");
        for system in ["ValueNet", "T5-Large w/o PICARD", "SmBoP+GraPPa"] {
            let acc = |needle: &str| {
                results
                    .iter()
                    .find(|r| r.system == system && r.regime.contains(needle))
                    .map(|r| r.accuracy)
                    .unwrap()
            };
            let zero = acc("Zero-Shot");
            let full = acc("+ Synth");
            assert!(
                full >= zero,
                "{system}: zero-shot {zero} should not beat domain-trained {full}"
            );
        }
    }

    #[test]
    fn paper_quota_totals_match_table2() {
        let (seed, dev, synth) = paper_quotas(Domain::Cordis);
        assert_eq!(seed.total(), 100);
        assert_eq!(dev.total(), 100);
        assert_eq!(synth, 1306);
        let (seed, dev, synth) = paper_quotas(Domain::OncoMx);
        assert_eq!(seed.total(), 50);
        assert_eq!(dev.total(), 103);
        assert_eq!(synth, 1065);
        let (_, _, synth) = paper_quotas(Domain::Sdss);
        assert_eq!(synth, 2061);
    }

    #[test]
    fn scaled_quota_keeps_nonzero_classes() {
        let q = scaled_quota(Quotas([20, 54, 2, 24]), 0.1);
        assert_eq!(q.0, [2, 5, 1, 2]);
        assert_eq!(scaled_quota(Quotas([0, 10, 0, 0]), 0.1).0, [0, 1, 0, 0]);
    }
}
