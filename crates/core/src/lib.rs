//! # sb-core — ScienceBenchmark orchestration
//!
//! Ties the substrates together into the paper's artifacts:
//!
//! - [`dataset`]: NL/SQL pair sets (Seed / Dev / Synth) with hardness
//!   statistics (Table 2) and JSON persistence (the paper releases its
//!   benchmark as JSON files);
//! - [`assemble`]: expert-set assembly — builds Seed and Dev sets with
//!   exactly the hardness quotas of Table 2 from the hand-authored domain
//!   patterns;
//! - [`pipeline`]: the four-phase automatic training-data generation
//!   pipeline of Figure 1 (seeding → SQL generation → SQL-to-NL →
//!   discriminative selection);
//! - [`spider`]: the Spider-like train/dev pair corpus with Spider's
//!   published hardness distribution;
//! - [`experiments`]: the Table 5 grid — four training regimes × three
//!   NL-to-SQL systems × three domains, plus the Spider-dev control rows.

pub mod assemble;
pub mod dataset;
pub mod experiments;
pub mod pipeline;
pub mod spider;

pub use assemble::{assemble_expert_set, assemble_expert_set_styled, Quotas};
pub use dataset::{BenchmarkDataset, NlSqlPair, SplitStats};
pub use experiments::{ExperimentConfig, ExperimentResult, TrainRegime};
pub use pipeline::{Pipeline, PipelineConfig, PipelineReport};
pub use spider::{SpiderPairs, SpiderSetConfig};
