//! Expert-set assembly: build Seed/Dev splits with exact hardness quotas.
//!
//! The paper's Seed and Dev sets were written by ~20 domain and SQL
//! experts; what the pipeline (and the evaluation) actually consume is a
//! set of NL/SQL pairs with a known hardness distribution (Table 2). This
//! module scales the hand-authored domain patterns up to those quotas: it
//! classifies each pattern, and generates same-shape variants (values,
//! columns, tables re-sampled through the enhanced-schema-constrained
//! generator) until every hardness class reaches its quota. Questions are
//! produced by the reference realizer with rotating paraphrase styles —
//! i.e. correct by construction, like expert writing.

use crate::dataset::NlSqlPair;
use sb_engine::Database;
use sb_gen::{GenOptions, Generator};
use sb_metrics::hardness::{classify, Hardness};
use sb_nl::{Realizer, Style};
use sb_schema::EnhancedSchema;
use sb_semql::Template;
use std::collections::HashSet;

/// Hardness quotas, ordered Easy / Medium / Hard / Extra Hard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quotas(pub [usize; 4]);

impl Quotas {
    /// Total pairs requested.
    pub fn total(&self) -> usize {
        self.0.iter().sum()
    }
}

/// Assemble an expert split with the given quotas.
///
/// `exclude` receives every SQL string used, so consecutive calls (Seed
/// then Dev) produce disjoint sets.
pub fn assemble_expert_set(
    db: &Database,
    enhanced: &EnhancedSchema,
    patterns: &[String],
    quotas: Quotas,
    seed: u64,
    exclude: &mut HashSet<String>,
) -> Vec<NlSqlPair> {
    assemble_expert_set_styled(db, enhanced, patterns, quotas, seed, exclude, 0)
}

/// [`assemble_expert_set`] with an explicit paraphrase-style offset.
/// Evaluation (Dev) splits use a different style band than training
/// splits — different experts phrase differently, and a benchmark whose
/// dev questions are word-for-word restatements of training questions
/// would not measure generalization.
#[allow(clippy::too_many_arguments)]
pub fn assemble_expert_set_styled(
    db: &Database,
    enhanced: &EnhancedSchema,
    patterns: &[String],
    quotas: Quotas,
    seed: u64,
    exclude: &mut HashSet<String>,
    style_offset: usize,
) -> Vec<NlSqlPair> {
    let db_name = db.schema.name.clone();
    let realizer = Realizer::new(enhanced);

    // Classify and pre-extract the patterns per hardness class.
    let mut class_templates: [Vec<Template>; 4] = Default::default();
    let mut out: Vec<NlSqlPair> = Vec::new();
    let mut remaining = quotas.0;

    for sql in patterns {
        let Ok(query) = sb_sql::parse(sql) else {
            continue;
        };
        let h = classify(&query);
        let idx = Hardness::ALL.iter().position(|x| *x == h).expect("in ALL");
        if let Ok(t) = sb_semql::extract(&query, &db.schema) {
            class_templates[idx].push(t);
        }
        // The pattern itself joins the split if its class still has room.
        if remaining[idx] > 0 && !exclude.contains(sql) {
            let nl = realizer.realize(&query, Style::numbered(style_offset + out.len() % 3));
            out.push(NlSqlPair::new(nl, sql.clone(), db_name.clone()));
            exclude.insert(sql.clone());
            remaining[idx] -= 1;
        }
    }

    // Generate same-class variants until quotas are met.
    let mut generator = Generator::new(db, enhanced, seed);
    let opts = GenOptions::default();
    for idx in 0..4 {
        let templates = &class_templates[idx];
        if templates.is_empty() {
            continue;
        }
        let mut stall = 0usize;
        let mut ti = 0usize;
        while remaining[idx] > 0 && stall < 400 {
            let template = &templates[ti % templates.len()];
            ti += 1;
            match generator.fill(template) {
                Ok(query) => {
                    let sql = query.to_string();
                    if exclude.contains(&sql) {
                        stall += 1;
                        continue;
                    }
                    // Keep class fidelity (value changes cannot alter
                    // hardness, but verify anyway) and executability.
                    if classify(&query) != Hardness::ALL[idx] {
                        stall += 1;
                        continue;
                    }
                    match db.run_query(&query) {
                        Ok(rs) if !rs.is_empty() || !opts.require_nonempty => {
                            let nl = realizer
                                .realize(&query, Style::numbered(style_offset + out.len() % 3));
                            exclude.insert(sql.clone());
                            out.push(NlSqlPair::new(nl, sql, db_name.clone()));
                            remaining[idx] -= 1;
                            stall = 0;
                        }
                        _ => stall += 1,
                    }
                }
                Err(_) => stall += 1,
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SplitStats;
    use sb_data::{Domain, SizeClass};

    #[test]
    fn assembles_quota_exact_sets() {
        let d = Domain::Sdss.build(SizeClass::Tiny);
        let mut exclude = HashSet::new();
        let quotas = Quotas([5, 8, 2, 4]);
        let set = assemble_expert_set(
            &d.db,
            &d.enhanced,
            &d.seed_patterns,
            quotas,
            11,
            &mut exclude,
        );
        let stats = SplitStats::of(&set);
        assert_eq!(stats.counts, quotas.0, "quota must be met exactly");
    }

    #[test]
    fn consecutive_sets_are_disjoint() {
        let d = Domain::Sdss.build(SizeClass::Tiny);
        let mut exclude = HashSet::new();
        let a = assemble_expert_set(
            &d.db,
            &d.enhanced,
            &d.seed_patterns,
            Quotas([3, 3, 1, 2]),
            1,
            &mut exclude,
        );
        let b = assemble_expert_set(
            &d.db,
            &d.enhanced,
            &d.seed_patterns,
            Quotas([3, 3, 1, 2]),
            2,
            &mut exclude,
        );
        let sqls_a: HashSet<&str> = a.iter().map(|p| p.sql.as_str()).collect();
        for p in &b {
            assert!(!sqls_a.contains(p.sql.as_str()), "{}", p.sql);
        }
    }

    #[test]
    fn questions_are_semantically_faithful() {
        // Expert questions must pass the expert judge (they are correct
        // by construction).
        let d = Domain::Sdss.build(SizeClass::Tiny);
        let mut exclude = HashSet::new();
        let set = assemble_expert_set(
            &d.db,
            &d.enhanced,
            &d.seed_patterns,
            Quotas([4, 4, 1, 2]),
            3,
            &mut exclude,
        );
        for p in &set {
            let q = sb_sql::parse(&p.sql).unwrap();
            assert!(
                sb_metrics::expert::semantically_faithful(&p.question, &q),
                "`{}` should describe `{}`",
                p.question,
                p.sql
            );
        }
    }

    #[test]
    fn all_sql_executes_nonempty() {
        let d = Domain::OncoMx.build(SizeClass::Tiny);
        let mut exclude = HashSet::new();
        let set = assemble_expert_set(
            &d.db,
            &d.enhanced,
            &d.seed_patterns,
            Quotas([4, 4, 2, 2]),
            5,
            &mut exclude,
        );
        for p in &set {
            let rs = d.db.run(&p.sql).expect("sql executes");
            assert!(!rs.is_empty(), "{}", p.sql);
        }
    }
}
