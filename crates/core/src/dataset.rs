//! Dataset types: NL/SQL pairs, splits, hardness statistics and JSON
//! persistence.

use sb_metrics::hardness::{classify_sql, Hardness};
use serde::{Deserialize, Serialize};

/// One NL/SQL pair as released in the benchmark files.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NlSqlPair {
    /// The natural-language question.
    pub question: String,
    /// The SQL query.
    pub sql: String,
    /// The database the pair belongs to.
    pub db: String,
}

impl NlSqlPair {
    /// Construct a pair.
    pub fn new(question: impl Into<String>, sql: impl Into<String>, db: impl Into<String>) -> Self {
        NlSqlPair {
            question: question.into(),
            sql: sql.into(),
            db: db.into(),
        }
    }
}

/// Hardness statistics of one split — a row of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitStats {
    /// Counts per class, aligned with [`Hardness::ALL`]
    /// (Easy, Medium, Hard, Extra Hard).
    pub counts: [usize; 4],
    /// Total pairs.
    pub total: usize,
}

impl SplitStats {
    /// Compute statistics for a set of pairs.
    pub fn of(pairs: &[NlSqlPair]) -> SplitStats {
        let mut counts = [0usize; 4];
        for p in pairs {
            let h = classify_sql(&p.sql);
            let idx = Hardness::ALL.iter().position(|x| *x == h).expect("in ALL");
            counts[idx] += 1;
        }
        SplitStats {
            counts,
            total: pairs.len(),
        }
    }

    /// Percentage of one class.
    pub fn pct(&self, idx: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.counts[idx] as f64 / self.total as f64
        }
    }

    /// Format like the paper's Table 2 cells: `count (pct%)`.
    pub fn cell(&self, idx: usize) -> String {
        format!("{} ({:.1}%)", self.counts[idx], self.pct(idx))
    }
}

/// A domain's full benchmark dataset: the three splits of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkDataset {
    /// Domain/database name.
    pub domain: String,
    /// Expert-written seed pairs (input to the pipeline).
    pub seed: Vec<NlSqlPair>,
    /// Expert-written evaluation pairs.
    pub dev: Vec<NlSqlPair>,
    /// Automatically generated (silver standard) pairs.
    pub synth: Vec<NlSqlPair>,
}

impl BenchmarkDataset {
    /// Statistics for all three splits.
    pub fn stats(&self) -> [(&'static str, SplitStats); 3] {
        [
            ("Seed", SplitStats::of(&self.seed)),
            ("Dev", SplitStats::of(&self.dev)),
            ("Synth", SplitStats::of(&self.synth)),
        ]
    }

    /// Serialize to pretty JSON (the release format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("dataset serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs() -> Vec<NlSqlPair> {
        vec![
            NlSqlPair::new("q1", "SELECT a FROM t", "d"),
            NlSqlPair::new("q2", "SELECT a FROM t WHERE b = 1 AND c = 2", "d"),
            NlSqlPair::new("q3", "SELECT a FROM t WHERE b IN (SELECT b FROM u)", "d"),
        ]
    }

    #[test]
    fn stats_count_hardness_classes() {
        let s = SplitStats::of(&pairs());
        assert_eq!(s.total, 3);
        assert_eq!(s.counts.iter().sum::<usize>(), 3);
        assert_eq!(s.counts[0], 1, "one easy");
        assert_eq!(s.counts[2], 1, "one hard (single subquery)");
    }

    #[test]
    fn cell_format_matches_table2() {
        let s = SplitStats {
            counts: [726, 494, 66, 20],
            total: 1306,
        };
        assert_eq!(s.cell(0), "726 (55.6%)");
    }

    #[test]
    fn json_round_trip() {
        let ds = BenchmarkDataset {
            domain: "sdss".into(),
            seed: pairs(),
            dev: vec![],
            synth: pairs(),
        };
        let json = ds.to_json();
        let back = BenchmarkDataset::from_json(&json).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn empty_split_pct_is_zero() {
        let s = SplitStats::of(&[]);
        assert_eq!(s.pct(0), 0.0);
    }
}
