//! The Spider-like train/dev pair corpus.
//!
//! Builds NL/SQL pairs over the 24-database Spider-like corpus with the
//! hardness distribution of the real Spider release (Table 2, bottom
//! rows: Train 22.45 / 32.7 / 20.3 / 24.55 %, Dev 24.22 / 42.64 / 16.86 /
//! 16.28 %).

use crate::assemble::{assemble_expert_set, assemble_expert_set_styled, Quotas};
use crate::dataset::NlSqlPair;
use sb_data::SpiderCorpus;
use std::collections::HashSet;

/// Sizing of the Spider-like pair sets.
#[derive(Debug, Clone)]
pub struct SpiderSetConfig {
    /// Total training pairs (the real Spider train set has 8659).
    pub train_total: usize,
    /// Total dev pairs (the real Spider dev set has 1032).
    pub dev_total: usize,
    /// How many of the 24 corpus databases to use.
    pub databases: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SpiderSetConfig {
    fn default() -> Self {
        SpiderSetConfig {
            train_total: 8659,
            dev_total: 1032,
            databases: 24,
            seed: 2024,
        }
    }
}

impl SpiderSetConfig {
    /// A reduced configuration for fast evaluation runs and tests.
    pub fn small() -> Self {
        SpiderSetConfig {
            train_total: 960,
            dev_total: 240,
            databases: 8,
            seed: 2024,
        }
    }
}

/// The built corpus: databases plus pair splits.
pub struct SpiderPairs {
    /// The underlying databases.
    pub corpus: SpiderCorpus,
    /// Training pairs (hardness-matched to Spider Train).
    pub train: Vec<NlSqlPair>,
    /// Dev pairs (hardness-matched to Spider Dev).
    pub dev: Vec<NlSqlPair>,
}

/// Spider Train hardness fractions (Table 2).
pub const TRAIN_DIST: [f64; 4] = [0.2245, 0.327, 0.203, 0.2455];
/// Spider Dev hardness fractions (Table 2).
pub const DEV_DIST: [f64; 4] = [0.2422, 0.4264, 0.1686, 0.1628];

fn per_db_quota(total: usize, dist: [f64; 4], dbs: usize) -> Quotas {
    let mut q = [0usize; 4];
    for i in 0..4 {
        q[i] = ((total as f64 * dist[i]) / dbs as f64).round().max(1.0) as usize;
    }
    Quotas(q)
}

impl SpiderPairs {
    /// Build the corpus and both splits.
    pub fn build(config: &SpiderSetConfig) -> SpiderPairs {
        let corpus = SpiderCorpus::build_n(config.databases.clamp(1, 24));
        let n = corpus.databases.len();
        let train_quota = per_db_quota(config.train_total, TRAIN_DIST, n);
        let dev_quota = per_db_quota(config.dev_total, DEV_DIST, n);
        let mut train = Vec::new();
        let mut dev = Vec::new();
        for (i, d) in corpus.databases.iter().enumerate() {
            let mut exclude = HashSet::new();
            train.extend(assemble_expert_set(
                &d.db,
                &d.enhanced,
                &d.seed_patterns,
                train_quota,
                config.seed ^ (i as u64),
                &mut exclude,
            ));
            dev.extend(assemble_expert_set_styled(
                &d.db,
                &d.enhanced,
                &d.seed_patterns,
                dev_quota,
                config.seed ^ (i as u64) ^ 0xD5,
                &mut exclude,
                3,
            ));
        }
        SpiderPairs { corpus, train, dev }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SplitStats;

    #[test]
    fn builds_hardness_matched_splits() {
        let cfg = SpiderSetConfig {
            train_total: 240,
            dev_total: 120,
            databases: 3,
            seed: 7,
        };
        let sp = SpiderPairs::build(&cfg);
        assert!(sp.train.len() >= 200, "{}", sp.train.len());
        assert!(sp.dev.len() >= 100, "{}", sp.dev.len());
        let stats = SplitStats::of(&sp.train);
        // The medium class dominates the easy-only tail classes roughly
        // as in Spider.
        assert!(stats.counts[1] > 0 && stats.counts[3] > 0);
        // Train and dev are disjoint.
        let train_sqls: HashSet<&str> = sp.train.iter().map(|p| p.sql.as_str()).collect();
        assert!(sp.dev.iter().all(|p| !train_sqls.contains(p.sql.as_str())));
    }

    #[test]
    fn pairs_reference_their_database() {
        let cfg = SpiderSetConfig {
            train_total: 60,
            dev_total: 30,
            databases: 2,
            seed: 7,
        };
        let sp = SpiderPairs::build(&cfg);
        let names: HashSet<String> = sp
            .corpus
            .databases
            .iter()
            .map(|d| d.db.schema.name.clone())
            .collect();
        for p in sp.train.iter().chain(&sp.dev) {
            assert!(names.contains(&p.db), "{}", p.db);
        }
    }
}
