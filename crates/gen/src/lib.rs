//! # sb-gen — synthetic SQL generation (Phase 2 of the pipeline)
//!
//! Implements the paper's Algorithm 1: query templates extracted in the
//! seeding phase are filled with database content — tables, columns and
//! values — by constrained random sampling against the *enhanced schema*:
//!
//! - joined table slots are filled along the schema's foreign-key graph and
//!   the join columns come from the chosen FK edge;
//! - aggregated columns must be *aggregatable* (no `AVG(specobjid)`);
//! - `GROUP BY` columns must be *categorical* (no grouping by right
//!   ascension);
//! - math-operator operands must share a *math group* (no
//!   `length - area`);
//! - values are sampled from the actual database content (equality and
//!   `LIKE`) or the column's numeric range (comparisons).
//!
//! Every candidate query is validated by executing it on the database; by
//! default queries must also return a non-empty result, which is the
//! strongest cheap proxy for "meaningful".

pub mod sampler;

pub use sampler::parse_literal;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};
use rayon::prelude::*;
use sb_engine::{profile_database, Database};
use sb_schema::{DataProfile, EnhancedSchema};
use sb_semql::{Assignment, Template, TemplateError};
use sb_sql::Query;
use std::collections::HashSet;
use std::fmt;

/// Why a single fill attempt failed. Attempt failures are expected and
/// retried; they become interesting in aggregate (the generator reports
/// rejection statistics).
#[derive(Debug, Clone, PartialEq)]
pub enum GenError {
    /// No table is FK-joinable for a join edge of the template.
    NoJoinableTable,
    /// No column of the sampled table satisfies the slot's contexts.
    NoCandidateColumn(String),
    /// No value could be sampled for a slot (empty column).
    NoValue(String),
    /// The template could not be instantiated.
    Template(TemplateError),
    /// The instantiated query failed to execute.
    NotExecutable(String),
    /// The query executed but returned no rows (filtered out when
    /// `require_nonempty` is set).
    EmptyResult,
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::NoJoinableTable => write!(f, "no FK-joinable table for a join slot"),
            GenError::NoCandidateColumn(m) => write!(f, "no candidate column: {m}"),
            GenError::NoValue(m) => write!(f, "no sampleable value: {m}"),
            GenError::Template(e) => write!(f, "template: {e}"),
            GenError::NotExecutable(m) => write!(f, "not executable: {m}"),
            GenError::EmptyResult => write!(f, "empty result"),
        }
    }
}

impl std::error::Error for GenError {}

impl From<TemplateError> for GenError {
    fn from(e: TemplateError) -> Self {
        GenError::Template(e)
    }
}

/// Generation options.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Require generated queries to return at least one row.
    pub require_nonempty: bool,
    /// Maximum fill attempts per requested query before giving up.
    pub max_attempts_per_query: usize,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            require_nonempty: true,
            max_attempts_per_query: 40,
        }
    }
}

/// One generated query with provenance.
#[derive(Debug, Clone)]
pub struct GeneratedQuery {
    /// The generated, validated SQL query.
    pub query: Query,
    /// Index of the template it was generated from.
    pub template_idx: usize,
}

/// Aggregate statistics over a generation run — how often each rejection
/// class fired. Used by the enhanced-schema ablation benchmark.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GenStats {
    /// Queries accepted.
    pub accepted: usize,
    /// Attempts rejected before execution (sampling constraints).
    pub rejected_sampling: usize,
    /// Attempts rejected because execution failed.
    pub rejected_execution: usize,
    /// Attempts rejected for an empty result.
    pub rejected_empty: usize,
    /// Attempts rejected as duplicates of an already-accepted query.
    pub rejected_duplicate: usize,
}

impl GenStats {
    /// Total attempts.
    pub fn attempts(&self) -> usize {
        self.accepted
            + self.rejected_sampling
            + self.rejected_execution
            + self.rejected_empty
            + self.rejected_duplicate
    }
}

/// One parallel worker's output: executable candidates plus local
/// rejection counts, merged into [`GenStats`] by the caller.
#[derive(Default)]
struct AttemptBatch {
    candidates: Vec<(Query, String)>,
    rejected_sampling: usize,
    rejected_execution: usize,
    rejected_empty: usize,
    rejected_duplicate: usize,
}

/// Mix a per-run base seed with a round and template index into one
/// worker seed. `seed_from_u64` finishes the avalanche, so simple odd-
/// constant multiplies suffice to separate the streams.
fn derive_seed(base: u64, round: u64, template_idx: u64) -> u64 {
    base ^ round
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(template_idx.wrapping_mul(0xD1B5_4A32_D192_ED03))
}

/// The Phase 2 generator: fills templates against one database.
pub struct Generator<'a> {
    db: &'a Database,
    enhanced: &'a EnhancedSchema,
    profile: DataProfile,
    rng: StdRng,
    /// When `false`, the enhanced-schema constraints are ignored (ablation
    /// mode): aggregates, group-bys and math operands sample any
    /// type-compatible column.
    pub use_enhanced_constraints: bool,
}

impl<'a> Generator<'a> {
    /// Create a generator with a deterministic seed.
    pub fn new(db: &'a Database, enhanced: &'a EnhancedSchema, seed: u64) -> Self {
        Generator {
            db,
            enhanced,
            profile: profile_database(db),
            rng: StdRng::seed_from_u64(seed),
            use_enhanced_constraints: true,
        }
    }

    /// Algorithm 1: one fill attempt for a template. Fails fast on any
    /// constraint violation; callers retry.
    pub fn fill(&mut self, template: &Template) -> Result<Query, GenError> {
        let mut rng = self.rng.clone();
        let out = self.fill_with(&mut rng, template);
        self.rng = rng;
        out
    }

    /// One fill attempt with an explicit RNG — the reentrant core behind
    /// [`Generator::fill`], shared by the parallel generation workers.
    fn fill_with(&self, rng: &mut StdRng, template: &Template) -> Result<Query, GenError> {
        let tables = self.sample_tables(rng, template)?;
        let columns = self.sample_columns(rng, template, &tables)?;
        let values = self.sample_values(rng, template, &tables, &columns)?;
        let assignment = Assignment {
            tables,
            columns,
            values,
        };
        Ok(template.instantiate(&assignment)?)
    }

    /// Generate up to `n` validated, de-duplicated queries by cycling over
    /// the templates. Returns the queries and the rejection statistics.
    ///
    /// Fill-and-execute batches run in parallel, one worker per template
    /// per round, each on its own RNG seeded from `(base, round,
    /// template)`; accepted queries are then merged sequentially in
    /// template-index order. Both the worker seeds and the merge order are
    /// independent of thread scheduling, so the output is identical for
    /// any `RAYON_NUM_THREADS`. Each round accepts at most one query per
    /// template, which keeps the template mix balanced exactly like the
    /// sequential round-robin this replaces.
    pub fn generate(
        &mut self,
        templates: &[Template],
        n: usize,
        opts: &GenOptions,
    ) -> (Vec<GeneratedQuery>, GenStats) {
        let mut out = Vec::new();
        let mut stats = GenStats::default();
        let mut seen: HashSet<String> = HashSet::new();
        if templates.is_empty() || n == 0 {
            return (out, stats);
        }
        let base = self.rng.next_u64();
        let mut round: u64 = 0;
        while out.len() < n {
            let batches: Vec<AttemptBatch> = (0..templates.len())
                .into_par_iter()
                .map(|ti| {
                    let seed = derive_seed(base, round, ti as u64);
                    self.attempt_batch(seed, &templates[ti], opts)
                })
                .collect();
            let mut progressed = false;
            for (ti, batch) in batches.into_iter().enumerate() {
                stats.rejected_sampling += batch.rejected_sampling;
                stats.rejected_execution += batch.rejected_execution;
                stats.rejected_empty += batch.rejected_empty;
                stats.rejected_duplicate += batch.rejected_duplicate;
                if out.len() >= n {
                    continue;
                }
                for (query, sql) in batch.candidates {
                    if !seen.insert(sql) {
                        stats.rejected_duplicate += 1;
                        continue;
                    }
                    out.push(GeneratedQuery {
                        query,
                        template_idx: ti,
                    });
                    stats.accepted += 1;
                    progressed = true;
                    break;
                }
            }
            if !progressed {
                // No template can produce anything new; stop rather than
                // loop forever.
                break;
            }
            round += 1;
        }
        (out, stats)
    }

    /// One worker's round: attempt fills of a single template, execute the
    /// candidates, and return the survivors (a few, so the merge can fall
    /// back when its first choice duplicates another template's output).
    fn attempt_batch(&self, seed: u64, template: &Template, opts: &GenOptions) -> AttemptBatch {
        /// Survivors kept per batch; the merge accepts at most one.
        const MAX_CANDIDATES: usize = 3;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut batch = AttemptBatch::default();
        let mut local_seen: HashSet<String> = HashSet::new();
        for _ in 0..opts.max_attempts_per_query {
            if batch.candidates.len() >= MAX_CANDIDATES {
                break;
            }
            let query = match self.fill_with(&mut rng, template) {
                Ok(q) => q,
                Err(GenError::Template(_)) | Err(GenError::NotExecutable(_)) => {
                    batch.rejected_execution += 1;
                    continue;
                }
                Err(_) => {
                    batch.rejected_sampling += 1;
                    continue;
                }
            };
            let sql = query.to_string();
            if local_seen.contains(&sql) {
                batch.rejected_duplicate += 1;
                continue;
            }
            match self.db.run_query(&query) {
                Ok(rs) => {
                    if opts.require_nonempty && rs.is_empty() {
                        batch.rejected_empty += 1;
                        continue;
                    }
                    local_seen.insert(sql.clone());
                    batch.candidates.push((query, sql));
                }
                Err(_) => {
                    batch.rejected_execution += 1;
                }
            }
        }
        batch
    }

    // ---- Algorithm 1, lines 8-11: table sampling -------------------------

    fn sample_tables(
        &self,
        rng: &mut StdRng,
        template: &Template,
    ) -> Result<Vec<String>, GenError> {
        let schema = &self.enhanced.schema;
        let mut tables: Vec<Option<String>> = vec![None; template.table_count];

        // Resolve join edges first so joined slots are FK-consistent.
        for edge in &template.joins {
            match (
                tables[edge.left_table].clone(),
                tables[edge.right_table].clone(),
            ) {
                (None, None) => {
                    // Pick a random FK edge of the schema.
                    let fks = &schema.foreign_keys;
                    if fks.is_empty() {
                        return Err(GenError::NoJoinableTable);
                    }
                    let fk = &fks[rng.gen_range(0..fks.len())];
                    tables[edge.left_table] = Some(fk.from_table.clone());
                    tables[edge.right_table] = Some(fk.to_table.clone());
                }
                (Some(l), None) => {
                    let edges = schema.join_edges(&l);
                    if edges.is_empty() {
                        return Err(GenError::NoJoinableTable);
                    }
                    let (_, other, _) = &edges[rng.gen_range(0..edges.len())];
                    tables[edge.right_table] = Some(other.clone());
                }
                (None, Some(r)) => {
                    let edges = schema.join_edges(&r);
                    if edges.is_empty() {
                        return Err(GenError::NoJoinableTable);
                    }
                    let (_, other, _) = &edges[rng.gen_range(0..edges.len())];
                    tables[edge.left_table] = Some(other.clone());
                }
                (Some(l), Some(r)) => {
                    // Both fixed (template with a join cycle): verify an FK
                    // edge exists.
                    let ok = schema
                        .join_edges(&l)
                        .iter()
                        .any(|(_, other, _)| other.eq_ignore_ascii_case(&r));
                    if !ok {
                        return Err(GenError::NoJoinableTable);
                    }
                }
            }
        }

        // Free slots: any table.
        for slot in tables.iter_mut() {
            if slot.is_none() {
                let t = schema.tables.choose(rng).ok_or(GenError::NoJoinableTable)?;
                *slot = Some(t.name.clone());
            }
        }
        Ok(tables.into_iter().map(|t| t.expect("filled")).collect())
    }

    // ---- Algorithm 1, lines 12-15: column sampling -----------------------

    fn sample_columns(
        &self,
        rng: &mut StdRng,
        template: &Template,
        tables: &[String],
    ) -> Result<Vec<String>, GenError> {
        let mut columns: Vec<Option<String>> = vec![None; template.columns.len()];

        // 1. Join-key columns come from FK edges between the sampled
        //    tables.
        for edge in &template.joins {
            let lt = &tables[edge.left_table];
            let rt = &tables[edge.right_table];
            let candidates: Vec<(String, String)> = self
                .enhanced
                .schema
                .join_edges(lt)
                .into_iter()
                .filter(|(_, other, _)| other.eq_ignore_ascii_case(rt))
                .map(|(lcol, _, rcol)| (lcol, rcol))
                .collect();
            let (lcol, rcol) = candidates
                .choose(rng)
                .cloned()
                .ok_or(GenError::NoJoinableTable)?;
            columns[edge.left_col] = Some(lcol);
            columns[edge.right_col] = Some(rcol);
        }

        // 2. Math pairs: both operands from one math group of the table.
        for (idx, slot) in template.columns.iter().enumerate() {
            if columns[idx].is_some() || !slot.contexts.math {
                continue;
            }
            let peer = slot
                .math_peer
                .ok_or_else(|| GenError::NoCandidateColumn("math operand without peer".into()))?;
            if columns[peer].is_some() {
                continue;
            }
            let table = &tables[slot.table_slot];
            if template.columns[peer].table_slot != slot.table_slot {
                return Err(GenError::NoCandidateColumn(
                    "math operands in different tables".into(),
                ));
            }
            let pair = self.sample_math_pair(rng, table)?;
            columns[idx] = Some(pair.0);
            columns[peer] = Some(pair.1);
        }

        // 3. Everything else by context.
        for (idx, slot) in template.columns.iter().enumerate() {
            if columns[idx].is_some() {
                continue;
            }
            let table = &tables[slot.table_slot];
            let candidates = self.candidate_columns(table, slot)?;
            let choice = candidates
                .choose(rng)
                .cloned()
                .ok_or_else(|| GenError::NoCandidateColumn(format!("table `{table}`")))?;
            columns[idx] = Some(choice);
        }
        Ok(columns.into_iter().map(|c| c.expect("filled")).collect())
    }

    fn sample_math_pair(
        &self,
        rng: &mut StdRng,
        table: &str,
    ) -> Result<(String, String), GenError> {
        if !self.use_enhanced_constraints {
            // Ablation: any two numeric columns.
            let def = self
                .enhanced
                .schema
                .table(table)
                .ok_or_else(|| GenError::NoCandidateColumn(format!("table `{table}`")))?;
            let numeric: Vec<String> = def
                .columns
                .iter()
                .filter(|c| c.ty.is_numeric())
                .map(|c| c.name.clone())
                .collect();
            if numeric.len() < 2 {
                return Err(GenError::NoCandidateColumn(format!(
                    "table `{table}` lacks two numeric columns"
                )));
            }
            let mut pick = numeric.clone();
            pick.shuffle(rng);
            return Ok((pick[0].clone(), pick[1].clone()));
        }
        let groups = self.enhanced.math_groups(table);
        let mut group_names: Vec<&String> = groups.keys().collect();
        group_names.sort(); // determinism
        let g = group_names
            .choose(rng)
            .ok_or_else(|| GenError::NoCandidateColumn(format!("no math group in `{table}`")))?;
        let members = &groups[*g];
        let mut pick: Vec<String> = members.clone();
        pick.shuffle(rng);
        Ok((pick[0].clone(), pick[1].clone()))
    }

    fn candidate_columns(
        &self,
        table: &str,
        slot: &sb_semql::ColumnSlot,
    ) -> Result<Vec<String>, GenError> {
        let def = self
            .enhanced
            .schema
            .table(table)
            .ok_or_else(|| GenError::NoCandidateColumn(format!("table `{table}`")))?;
        let ctx = &slot.contexts;
        let out: Vec<String> = def
            .columns
            .iter()
            .filter(|c| {
                if self.use_enhanced_constraints {
                    if let Some(agg) = ctx.agg {
                        // COUNT works on anything; other aggregates need an
                        // aggregatable (numeric, non-id) column.
                        if agg != sb_sql::AggFunc::Count
                            && !self.enhanced.aggregatable(table, &c.name)
                        {
                            return false;
                        }
                    }
                    if ctx.group_by && !self.enhanced.categorical(table, &c.name) {
                        return false;
                    }
                } else if ctx.agg.is_some()
                    && ctx.agg != Some(sb_sql::AggFunc::Count)
                    && !c.ty.is_numeric()
                {
                    // Even the ablation cannot SUM over text.
                    return false;
                }
                if ctx.comparison && !c.ty.is_numeric() {
                    return false;
                }
                if ctx.like && c.ty != sb_schema::ColumnType::Text {
                    return false;
                }
                if ctx.order_by && c.ty == sb_schema::ColumnType::Bool {
                    return false;
                }
                true
            })
            .map(|c| c.name.clone())
            .collect();
        Ok(out)
    }

    // ---- Algorithm 1, lines 16-19: value sampling ------------------------

    fn sample_values(
        &self,
        rng: &mut StdRng,
        template: &Template,
        tables: &[String],
        columns: &[String],
    ) -> Result<Vec<sb_sql::Literal>, GenError> {
        let mut out = Vec::with_capacity(template.values.len());
        for vslot in &template.values {
            let lit = match vslot.column_slot {
                Some(ci) => {
                    let cslot = &template.columns[ci];
                    let table = &tables[cslot.table_slot];
                    let column = &columns[ci];
                    sampler::sample_value(rng, &self.profile, table, column, vslot.kind)
                        .ok_or_else(|| GenError::NoValue(format!("{table}.{column}")))?
                }
                None => sampler::sample_agg_value(rng),
            };
            out.push(lit);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_engine::Value;
    use sb_schema::{Column, ColumnType, ForeignKey, Schema, TableDef};
    use sb_semql::extract;

    fn fixture() -> (Database, EnhancedSchema) {
        let schema = Schema::new("sdss")
            .with_table(TableDef::new(
                "specobj",
                vec![
                    Column::pk("specobjid", ColumnType::Int),
                    Column::new("bestobjid", ColumnType::Int),
                    Column::new("class", ColumnType::Text),
                    Column::new("z", ColumnType::Float),
                ],
            ))
            .with_table(TableDef::new(
                "photoobj",
                vec![
                    Column::pk("objid", ColumnType::Int),
                    Column::new("u", ColumnType::Float),
                    Column::new("r", ColumnType::Float),
                ],
            ))
            .with_fk(ForeignKey::new("specobj", "bestobjid", "photoobj", "objid"));
        let mut db = Database::new(schema.clone());
        for i in 0..30i64 {
            db.table_mut("specobj").unwrap().push_rows(vec![vec![
                Value::Int(i),
                Value::Int(i % 10),
                Value::Text(if i % 3 == 0 { "GALAXY" } else { "STAR" }.into()),
                Value::Float(i as f64 / 10.0),
            ]]);
        }
        for i in 0..10i64 {
            db.table_mut("photoobj").unwrap().push_rows(vec![vec![
                Value::Int(i),
                Value::Float(18.0 + i as f64 / 5.0),
                Value::Float(16.0 + i as f64 / 7.0),
            ]]);
        }
        let profile = profile_database(&db);
        let mut enhanced = EnhancedSchema::infer(schema, &profile);
        // Manual refinement (the paper's one-shot expert pass): on a tiny
        // fixture the cardinality heuristic over-fires, so pin the flags.
        enhanced.set_categorical("specobj", "class", true);
        enhanced.set_categorical("specobj", "bestobjid", false);
        enhanced.set_categorical("specobj", "z", false);
        enhanced.set_categorical("photoobj", "u", false);
        enhanced.set_categorical("photoobj", "r", false);
        enhanced.set_math_group("photoobj", "u", "magnitude");
        enhanced.set_math_group("photoobj", "r", "magnitude");
        (db, enhanced)
    }

    fn templates(schema: &Schema) -> Vec<Template> {
        [
            "SELECT s.specobjid FROM specobj AS s WHERE s.class = 'GALAXY'",
            "SELECT COUNT(*), s.class FROM specobj AS s GROUP BY s.class",
            "SELECT p.objid FROM photoobj AS p JOIN specobj AS s ON s.bestobjid = p.objid WHERE s.z > 0.5",
            "SELECT p.objid FROM photoobj AS p WHERE p.u - p.r < 2.22",
            "SELECT AVG(s.z) FROM specobj AS s",
        ]
        .iter()
        .map(|sql| extract(&sb_sql::parse(sql).unwrap(), schema).unwrap())
        .collect()
    }

    #[test]
    fn generates_valid_nonempty_queries() {
        let (db, enhanced) = fixture();
        let templates = templates(&enhanced.schema);
        let mut g = Generator::new(&db, &enhanced, 7);
        let (out, stats) = g.generate(&templates, 25, &GenOptions::default());
        assert!(!out.is_empty(), "should generate something");
        assert_eq!(stats.accepted, out.len());
        // Every output executes and is non-empty.
        for gq in &out {
            let rs = db.run_query(&gq.query).expect("generated query executes");
            assert!(!rs.is_empty(), "non-empty: {}", gq.query);
        }
        // De-duplicated.
        let sqls: HashSet<String> = out.iter().map(|g| g.query.to_string()).collect();
        assert_eq!(sqls.len(), out.len());
    }

    #[test]
    fn deterministic_under_same_seed() {
        let (db, enhanced) = fixture();
        let templates = templates(&enhanced.schema);
        let run = |seed| {
            let mut g = Generator::new(&db, &enhanced, seed);
            let (out, _) = g.generate(&templates, 10, &GenOptions::default());
            out.iter().map(|g| g.query.to_string()).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds diverge");
    }

    #[test]
    fn respects_non_aggregatable_constraint() {
        let (db, enhanced) = fixture();
        let t = extract(
            &sb_sql::parse("SELECT AVG(s.z) FROM specobj AS s").unwrap(),
            &enhanced.schema,
        )
        .unwrap();
        let mut g = Generator::new(&db, &enhanced, 1);
        for _ in 0..50 {
            if let Ok(q) = g.fill(&t) {
                let sql = q.to_string();
                assert!(
                    !sql.contains("AVG(T1.specobjid)")
                        && !sql.contains("AVG(T1.bestobjid)")
                        && !sql.contains("AVG(T1.objid)"),
                    "ID columns must not be averaged: {sql}"
                );
            }
        }
    }

    #[test]
    fn respects_categorical_group_by() {
        let (db, enhanced) = fixture();
        let t = extract(
            &sb_sql::parse("SELECT COUNT(*), s.class FROM specobj AS s GROUP BY s.class").unwrap(),
            &enhanced.schema,
        )
        .unwrap();
        let mut g = Generator::new(&db, &enhanced, 2);
        let mut produced = 0;
        for _ in 0..50 {
            if let Ok(q) = g.fill(&t) {
                produced += 1;
                let sql = q.to_string();
                assert!(
                    sql.contains("GROUP BY T1.class"),
                    "only categorical columns may be grouped: {sql}"
                );
            }
        }
        assert!(produced > 0);
    }

    #[test]
    fn math_operands_share_group() {
        let (db, enhanced) = fixture();
        let t = extract(
            &sb_sql::parse("SELECT p.objid FROM photoobj AS p WHERE p.u - p.r < 2.22").unwrap(),
            &enhanced.schema,
        )
        .unwrap();
        let mut g = Generator::new(&db, &enhanced, 3);
        let mut produced = 0;
        for _ in 0..50 {
            if let Ok(q) = g.fill(&t) {
                produced += 1;
                let sql = q.to_string();
                // Only photoobj has a math group, so the query must use
                // u and r (in either order).
                assert!(
                    sql.contains("T1.u - T1.r") || sql.contains("T1.r - T1.u"),
                    "math operands must share a unit group: {sql}"
                );
            }
        }
        assert!(produced > 0);
    }

    #[test]
    fn join_columns_come_from_fk_edges() {
        let (db, enhanced) = fixture();
        let t = extract(
            &sb_sql::parse(
                "SELECT p.objid FROM photoobj AS p JOIN specobj AS s \
                 ON s.bestobjid = p.objid WHERE s.z > 0.5",
            )
            .unwrap(),
            &enhanced.schema,
        )
        .unwrap();
        let mut g = Generator::new(&db, &enhanced, 4);
        let q = loop {
            if let Ok(q) = g.fill(&t) {
                break q;
            }
        };
        let sql = q.to_string();
        assert!(
            sql.contains("bestobjid") && sql.contains("objid"),
            "join must use the FK edge: {sql}"
        );
    }

    #[test]
    fn ablation_mode_drops_constraints() {
        let (db, enhanced) = fixture();
        let t = extract(
            &sb_sql::parse("SELECT COUNT(*), s.class FROM specobj AS s GROUP BY s.class").unwrap(),
            &enhanced.schema,
        )
        .unwrap();
        let mut g = Generator::new(&db, &enhanced, 5);
        g.use_enhanced_constraints = false;
        let mut saw_non_categorical = false;
        for _ in 0..100 {
            if let Ok(q) = g.fill(&t) {
                if !q.to_string().contains("GROUP BY T1.class") {
                    saw_non_categorical = true;
                    break;
                }
            }
        }
        assert!(
            saw_non_categorical,
            "ablation mode should sometimes group by non-categorical columns"
        );
    }

    #[test]
    fn stats_track_rejections() {
        let (db, enhanced) = fixture();
        let templates = templates(&enhanced.schema);
        let mut g = Generator::new(&db, &enhanced, 6);
        let (_, stats) = g.generate(&templates, 50, &GenOptions::default());
        assert!(stats.attempts() >= stats.accepted);
    }

    #[test]
    fn empty_template_list_yields_nothing() {
        let (db, enhanced) = fixture();
        let mut g = Generator::new(&db, &enhanced, 0);
        let (out, stats) = g.generate(&[], 10, &GenOptions::default());
        assert!(out.is_empty());
        assert_eq!(stats.attempts(), 0);
    }
}
