//! Value sampling (Algorithm 1, `SampleValue`) and SQL-literal parsing.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use sb_schema::DataProfile;
use sb_semql::ValueKind;
use sb_sql::{Lexer, Literal, Token};

/// Parse a single SQL literal string (as stored in
/// [`sb_schema::ColumnProfile::frequent_values`]) into a [`Literal`].
pub fn parse_literal(text: &str) -> Option<Literal> {
    let tokens = Lexer::new(text).tokenize().ok()?;
    match tokens.as_slice() {
        [(t, _), (Token::Eof, _)] => match t {
            Token::Int(v) => Some(Literal::Int(*v)),
            Token::Float(v) => Some(Literal::Float(*v)),
            Token::Str(s) => Some(Literal::Str(s.clone())),
            Token::Keyword(sb_sql::Keyword::Null) => Some(Literal::Null),
            Token::Keyword(sb_sql::Keyword::True) => Some(Literal::Bool(true)),
            Token::Keyword(sb_sql::Keyword::False) => Some(Literal::Bool(false)),
            _ => None,
        },
        // Negative numbers lex as two tokens.
        [(Token::Minus, _), (t, _), (Token::Eof, _)] => match t {
            Token::Int(v) => Some(Literal::Int(-v)),
            Token::Float(v) => Some(Literal::Float(-v)),
            _ => None,
        },
        _ => None,
    }
}

/// Sample a literal for a value slot bound to `table.column`.
pub fn sample_value(
    rng: &mut StdRng,
    profile: &DataProfile,
    table: &str,
    column: &str,
    kind: ValueKind,
) -> Option<Literal> {
    let col = profile.column(table, column)?;
    match kind {
        ValueKind::Eq => {
            let lit = col.frequent_values.choose(rng)?;
            parse_literal(lit)
        }
        ValueKind::Cmp => {
            match (col.min, col.max) {
                (Some(min), Some(max)) if min.is_finite() && max.is_finite() => {
                    let v = if (max - min).abs() < f64::EPSILON {
                        min
                    } else {
                        rng.gen_range(min..=max)
                    };
                    // Integer-looking ranges sample integer literals.
                    let int_like = col
                        .frequent_values
                        .first()
                        .is_some_and(|f| !f.contains('.') && !f.contains('\''));
                    if int_like {
                        Some(Literal::Int(v.round() as i64))
                    } else {
                        // Two decimals keeps generated SQL readable, like
                        // the paper's `2.22`.
                        Some(Literal::Float((v * 100.0).round() / 100.0))
                    }
                }
                // Non-numeric column compared with an inequality: fall
                // back to an existing value (lexicographic comparison).
                _ => {
                    let lit = col.frequent_values.choose(rng)?;
                    parse_literal(lit)
                }
            }
        }
        ValueKind::Like => {
            // Derive a contains-pattern from a real value: pick a word or
            // a 3+-character infix.
            let raw = col
                .frequent_values
                .iter()
                .filter(|v| v.starts_with('\''))
                .collect::<Vec<_>>();
            let pick = raw.choose(rng)?;
            let inner = pick.trim_matches('\'');
            if inner.is_empty() {
                return Some(Literal::Str("%%".into()));
            }
            let words: Vec<&str> = inner.split_whitespace().collect();
            let fragment = if words.len() > 1 && rng.gen_bool(0.5) {
                (*words.choose(rng).expect("non-empty words")).to_string()
            } else {
                let chars: Vec<char> = inner.chars().collect();
                let len = chars.len().min(3 + rng.gen_range(0..3));
                let start = rng.gen_range(0..=chars.len() - len);
                chars[start..start + len].iter().collect()
            };
            Some(Literal::Str(format!("%{}%", fragment.replace('%', ""))))
        }
        ValueKind::AggCmp => Some(sample_agg_value(rng)),
    }
}

/// Sample a small count-like value for aggregate comparisons
/// (`HAVING COUNT(*) > v`).
pub fn sample_agg_value(rng: &mut StdRng) -> Literal {
    Literal::Int(rng.gen_range(1..=10))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sb_schema::ColumnProfile;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    fn profile_with(values: &[&str], min: Option<f64>, max: Option<f64>) -> DataProfile {
        let mut p = DataProfile::new();
        p.insert(
            "t",
            "c",
            ColumnProfile {
                count: 100,
                distinct: values.len(),
                min,
                max,
                frequent_values: values.iter().map(|s| s.to_string()).collect(),
            },
        );
        p
    }

    #[test]
    fn parse_literal_covers_all_forms() {
        assert_eq!(parse_literal("42"), Some(Literal::Int(42)));
        assert_eq!(parse_literal("-7"), Some(Literal::Int(-7)));
        assert_eq!(parse_literal("2.22"), Some(Literal::Float(2.22)));
        assert_eq!(parse_literal("-0.5"), Some(Literal::Float(-0.5)));
        assert_eq!(
            parse_literal("'GALAXY'"),
            Some(Literal::Str("GALAXY".into()))
        );
        assert_eq!(parse_literal("NULL"), Some(Literal::Null));
        assert_eq!(parse_literal("TRUE"), Some(Literal::Bool(true)));
        assert_eq!(parse_literal("1 2"), None);
        assert_eq!(parse_literal(""), None);
    }

    #[test]
    fn eq_samples_existing_value() {
        let p = profile_with(&["'GALAXY'", "'STAR'"], None, None);
        let mut r = rng();
        for _ in 0..10 {
            let lit = sample_value(&mut r, &p, "t", "c", ValueKind::Eq).unwrap();
            match lit {
                Literal::Str(s) => assert!(s == "GALAXY" || s == "STAR"),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn cmp_samples_within_range() {
        let p = profile_with(&["0.5", "1.5"], Some(0.0), Some(2.0));
        let mut r = rng();
        for _ in 0..20 {
            let lit = sample_value(&mut r, &p, "t", "c", ValueKind::Cmp).unwrap();
            let v = match lit {
                Literal::Float(v) => v,
                Literal::Int(v) => v as f64,
                other => panic!("unexpected {other:?}"),
            };
            assert!((0.0..=2.0).contains(&v), "{v} out of range");
        }
    }

    #[test]
    fn cmp_on_integer_column_yields_int() {
        let p = profile_with(&["3", "9"], Some(1.0), Some(10.0));
        let mut r = rng();
        let lit = sample_value(&mut r, &p, "t", "c", ValueKind::Cmp).unwrap();
        assert!(matches!(lit, Literal::Int(_)), "{lit:?}");
    }

    #[test]
    fn like_builds_contains_pattern() {
        let p = profile_with(&["'Information and Media'"], None, None);
        let mut r = rng();
        for _ in 0..10 {
            let lit = sample_value(&mut r, &p, "t", "c", ValueKind::Like).unwrap();
            let Literal::Str(s) = lit else { panic!() };
            assert!(s.starts_with('%') && s.ends_with('%'), "{s}");
            assert!(s.len() > 2, "{s}");
        }
    }

    #[test]
    fn missing_column_yields_none() {
        let p = DataProfile::new();
        let mut r = rng();
        assert_eq!(sample_value(&mut r, &p, "t", "c", ValueKind::Eq), None);
    }

    #[test]
    fn degenerate_range_is_handled() {
        let p = profile_with(&["5"], Some(5.0), Some(5.0));
        let mut r = rng();
        let lit = sample_value(&mut r, &p, "t", "c", ValueKind::Cmp).unwrap();
        assert_eq!(lit, Literal::Int(5));
    }
}
