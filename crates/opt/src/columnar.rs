//! Structural eligibility for the columnar batch engine.
//!
//! [`columnar_eligible`] is a purely syntactic test over one `SELECT`:
//! it answers whether the statement's *shape* is within the vectorized
//! executor's operator set. The engine consults it before attempting
//! batch execution, and EXPLAIN consults the same function to label the
//! chosen path — one predicate, two consumers, no drift.
//!
//! Deliberately structural: no name resolution, no data inspection.
//! The engine's kernel compiler still performs data-dependent checks
//! (e.g. a column whose stored values mix ints and floats cannot be
//! vectorized) and falls back to the row path at runtime; EXPLAIN may
//! therefore label a query `columnar` that a particular database
//! demotes to the row engine. The reverse never happens.
//!
//! Supported shape:
//! - base tables only (derived tables take the row path),
//! - inner joins with `a.x = b.y` constraints over qualified columns,
//! - scalar expressions from the kernel set: columns, literals,
//!   arithmetic, comparisons, `AND`/`OR`/`NOT`, `BETWEEN`,
//!   `IN (literals)`, `LIKE 'literal'`, `IS NULL`,
//! - aggregates (`COUNT`/`SUM`/`AVG`/`MIN`/`MAX`, incl. `DISTINCT`)
//!   over scalar-set arguments, grouped by plain columns,
//! - no subqueries anywhere, no `SELECT *` under grouping.

use sb_sql::{AggArg, Expr, OrderItem, Select, SelectItem, TableFactor};

/// Whether one `SELECT` (with its statement-level ORDER BY keys) is
/// structurally executable by the columnar batch engine.
pub fn columnar_eligible(select: &Select, order_by: &[OrderItem]) -> bool {
    // Base tables only.
    if !matches!(select.from.factor, TableFactor::Table(_)) {
        return false;
    }
    for join in &select.joins {
        if !matches!(join.table.factor, TableFactor::Table(_)) {
            return false;
        }
        // Inner equi-joins over qualified columns only.
        if join.left {
            return false;
        }
        let Some(Expr::Binary {
            left,
            op: sb_sql::BinaryOp::Eq,
            right,
        }) = &join.constraint
        else {
            return false;
        };
        let (Expr::Column(a), Expr::Column(b)) = (left.as_ref(), right.as_ref()) else {
            return false;
        };
        if a.table.is_none() || b.table.is_none() {
            return false;
        }
    }

    if let Some(sel) = &select.selection {
        if !scalar_ok(sel) {
            return false;
        }
    }

    let grouped = is_aggregate(select, order_by);
    if grouped {
        // The row engine rejects `SELECT *` under grouping; grouped keys
        // must be plain columns for the batch grouping kernels.
        if !select.group_by.iter().all(|g| matches!(g, Expr::Column(_))) {
            return false;
        }
        for item in &select.projections {
            match item {
                SelectItem::Wildcard => return false,
                SelectItem::Expr { expr, .. } => {
                    if !grouped_ok(expr) {
                        return false;
                    }
                }
            }
        }
        if let Some(h) = &select.having {
            if !grouped_ok(h) {
                return false;
            }
        }
        order_by.iter().all(|o| grouped_ok(&o.expr))
    } else {
        for item in &select.projections {
            if let SelectItem::Expr { expr, .. } = item {
                if !scalar_ok(expr) {
                    return false;
                }
            }
        }
        order_by.iter().all(|o| scalar_ok(&o.expr))
    }
}

/// Whether one `SELECT` has at least one stage the columnar engine can
/// execute morsel-parallel: a WHERE filter (per-morsel selection
/// vectors), a hash join (parallel build and probe), or a mergeable
/// aggregation (thread-local accumulators). A bare scan-project has no
/// parallel kernel — emission is inherently serial — so it stays
/// single-threaded even with parallelism enabled.
///
/// Like [`columnar_eligible`] this is purely structural and shared by
/// the engine and EXPLAIN, and deliberately independent of worker
/// count, morsel size, and table cardinality: the same statement gets
/// the same answer (and the same EXPLAIN text) on every machine.
pub fn parallel_eligible(select: &Select, order_by: &[OrderItem]) -> bool {
    columnar_eligible(select, order_by)
        && (select.selection.is_some()
            || !select.joins.is_empty()
            || is_aggregate(select, order_by))
}

/// Whether a scalar (per-row) expression is within the kernel set.
fn scalar_ok(e: &Expr) -> bool {
    match e {
        Expr::Column(_) | Expr::Literal(_) => true,
        Expr::Unary { expr, .. } => scalar_ok(expr),
        Expr::Binary { left, right, .. } => scalar_ok(left) && scalar_ok(right),
        Expr::Between {
            expr, low, high, ..
        } => scalar_ok(expr) && scalar_ok(low) && scalar_ok(high),
        Expr::InList { expr, list, .. } => {
            scalar_ok(expr) && list.iter().all(|i| matches!(i, Expr::Literal(_)))
        }
        Expr::Like { expr, pattern, .. } => {
            scalar_ok(expr) && matches!(pattern.as_ref(), Expr::Literal(_))
        }
        Expr::IsNull { expr, .. } => scalar_ok(expr),
        Expr::Agg { .. } | Expr::Subquery(_) | Expr::InSubquery { .. } | Expr::Exists { .. } => {
            false
        }
    }
}

/// Whether a group-context expression (projection / HAVING / ORDER BY
/// of an aggregate query) is within the kernel set: aggregates combined
/// with arithmetic/comparison/logic, scalar-set leaves evaluated on the
/// group's first row.
fn grouped_ok(e: &Expr) -> bool {
    match e {
        Expr::Agg { arg, .. } => match arg {
            AggArg::Star => true,
            AggArg::Expr(a) => scalar_ok(a),
        },
        Expr::Binary { left, right, .. } => grouped_ok(left) && grouped_ok(right),
        Expr::Unary { expr, .. } => grouped_ok(expr),
        other => scalar_ok(other),
    }
}

/// Mirror of the executor's aggregate-query test.
fn is_aggregate(select: &Select, order_by: &[OrderItem]) -> bool {
    if !select.group_by.is_empty() || select.having.is_some() {
        return true;
    }
    let proj_agg = select.projections.iter().any(|p| match p {
        SelectItem::Wildcard => false,
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
    });
    proj_agg || order_by.iter().any(|o| o.expr.contains_aggregate())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eligible(sql: &str) -> bool {
        let q = sb_sql::parse(sql).unwrap();
        let sb_sql::SetExpr::Select(select) = &q.body else {
            panic!("single select expected");
        };
        columnar_eligible(select, &q.order_by)
    }

    #[test]
    fn supported_shapes() {
        assert!(eligible("SELECT a FROM t WHERE b > 1 AND c = 'x'"));
        assert!(eligible("SELECT * FROM t"));
        assert!(eligible(
            "SELECT t.a FROM t JOIN u ON t.id = u.tid WHERE u.v < 3 ORDER BY t.a LIMIT 5"
        ));
        assert!(eligible(
            "SELECT a, COUNT(*), SUM(b) FROM t GROUP BY a HAVING COUNT(*) > 2"
        ));
        assert!(eligible("SELECT COUNT(DISTINCT a) FROM t"));
        assert!(eligible("SELECT a FROM t WHERE b IN (1, 2, 3)"));
        assert!(eligible("SELECT a FROM t WHERE b LIKE '%x%'"));
        assert!(eligible("SELECT DISTINCT a FROM t ORDER BY a"));
    }

    #[test]
    fn unsupported_shapes_fall_back() {
        // Derived table.
        assert!(!eligible("SELECT d.a FROM (SELECT a FROM t) AS d"));
        // Left join.
        assert!(!eligible("SELECT t.a FROM t LEFT JOIN u ON t.id = u.tid"));
        // Non-equi join.
        assert!(!eligible("SELECT t.a FROM t JOIN u ON t.id < u.tid"));
        // Bare join columns.
        assert!(!eligible("SELECT t.a FROM t JOIN u ON id = tid"));
        // Cross join.
        assert!(!eligible("SELECT t.a FROM t JOIN u ON true"));
        // Subqueries.
        assert!(!eligible("SELECT a FROM t WHERE b IN (SELECT c FROM u)"));
        assert!(!eligible("SELECT a FROM t WHERE EXISTS (SELECT * FROM u)"));
        assert!(!eligible(
            "SELECT a FROM t WHERE b > (SELECT AVG(c) FROM u)"
        ));
        // Wildcard under grouping (row engine errors; same path both ways).
        assert!(!eligible("SELECT * FROM t GROUP BY a"));
        // Expression group keys.
        assert!(!eligible("SELECT a + 1 FROM t GROUP BY a + 1"));
        // Non-literal IN list / LIKE pattern.
        assert!(!eligible("SELECT a FROM t WHERE b IN (c, 2)"));
        assert!(!eligible("SELECT a FROM t WHERE b LIKE c"));
    }

    fn par_eligible(sql: &str) -> bool {
        let q = sb_sql::parse(sql).unwrap();
        let sb_sql::SetExpr::Select(select) = &q.body else {
            panic!("single select expected");
        };
        parallel_eligible(select, &q.order_by)
    }

    #[test]
    fn parallel_needs_a_parallelizable_stage() {
        // Filter, join, and aggregate stages all qualify.
        assert!(par_eligible("SELECT a FROM t WHERE b > 1"));
        assert!(par_eligible("SELECT t.a FROM t JOIN u ON t.id = u.tid"));
        assert!(par_eligible("SELECT a, COUNT(*) FROM t GROUP BY a"));
        assert!(par_eligible("SELECT MAX(a) FROM t"));
        // A bare scan-project has nothing to fan out.
        assert!(!par_eligible("SELECT a FROM t"));
        assert!(!par_eligible("SELECT a FROM t ORDER BY a LIMIT 5"));
        // Never broader than columnar eligibility itself.
        assert!(!par_eligible(
            "SELECT t.a FROM t LEFT JOIN u ON t.id = u.tid"
        ));
        assert!(!par_eligible(
            "SELECT a FROM t WHERE b IN (SELECT c FROM u)"
        ));
    }
}
