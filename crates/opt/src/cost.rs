//! The cost model: textbook selectivity heuristics over actual
//! cardinalities.
//!
//! Inputs are deliberately cheap — the planner runs on every executed
//! statement, so it sees only what [`crate::RelMeta`] carries: live row
//! counts (exact, including materialized derived tables) and schema
//! uniqueness (base-table primary keys). Distinct counts for non-unique
//! columns fall back to the classic `rows / 10` guess; wiring
//! `sb-schema`'s `DataProfile` distinct counts in here is the
//! documented upgrade path once profiles are cached per database.
//!
//! Selectivities follow the System-R folklore constants: `1/10` for
//! equality against a non-unique column (or `1/rows` against a unique
//! one), `1/3` per inequality, `1/4` for BETWEEN and LIKE. They don't
//! need to be right — only to rank candidate join orders sensibly —
//! and every estimate is clamped to at least one row so division never
//! explodes.

use crate::{RelMeta, Resolution, Resolver};
use sb_sql::{BinaryOp, Expr, UnaryOp};

/// Default distinct-count divisor for non-unique columns.
const DISTINCT_FRACTION: f64 = 10.0;

/// Estimated distinct values of column `col` of `rel` after its scan
/// kept an estimated `scan_rows` rows.
pub fn distinct_estimate(rel: &RelMeta, col: usize, scan_rows: f64) -> f64 {
    let base = if rel.columns.get(col).is_some_and(|c| c.unique) {
        rel.rows as f64
    } else {
        (rel.rows as f64 / DISTINCT_FRACTION).max(1.0)
    };
    base.min(scan_rows).max(1.0)
}

/// Estimated fraction of rows a predicate keeps, in `[0, 1]`.
///
/// The resolver maps column references to their relations so equality
/// against a unique column can use the sharper `1/rows` selectivity.
pub fn selectivity(e: &Expr, resolver: &dyn Resolver, rels: &[RelMeta]) -> f64 {
    let sel = match e {
        Expr::Binary { left, op, right } => match op {
            BinaryOp::And => selectivity(left, resolver, rels) * selectivity(right, resolver, rels),
            BinaryOp::Or => {
                (selectivity(left, resolver, rels) + selectivity(right, resolver, rels)).min(1.0)
            }
            BinaryOp::Eq => eq_selectivity(left, right, resolver, rels),
            BinaryOp::NotEq => 1.0 - eq_selectivity(left, right, resolver, rels),
            BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => 1.0 / 3.0,
            // Arithmetic in boolean position: no opinion.
            _ => 1.0 / 3.0,
        },
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => 1.0 - selectivity(expr, resolver, rels),
        Expr::Between { negated, .. } => flip(0.25, *negated),
        Expr::InList { list, negated, .. } => flip((0.1 * list.len() as f64).min(1.0), *negated),
        Expr::Like { negated, .. } => flip(0.25, *negated),
        Expr::IsNull { negated, .. } => flip(0.1, *negated),
        // Subqueries, literals, lone columns: no opinion.
        _ => 1.0 / 3.0,
    };
    sel.clamp(0.0, 1.0)
}

fn flip(sel: f64, negated: bool) -> f64 {
    if negated {
        1.0 - sel
    } else {
        sel
    }
}

/// Selectivity of `left = right`: `1 / distinct` when one side is a
/// column whose distinct count we can estimate, `1/10` otherwise.
fn eq_selectivity(left: &Expr, right: &Expr, resolver: &dyn Resolver, rels: &[RelMeta]) -> f64 {
    let mut best: f64 = 0.1;
    for side in [left, right] {
        if let Expr::Column(c) = side {
            if let Resolution::Col { rel, col } = resolver.resolve(c) {
                let d = distinct_estimate(&rels[rel], col, rels[rel].rows as f64);
                best = best.min(1.0 / d);
            }
        }
    }
    best
}

/// Estimated output rows of a scan of `rel` after its pushed conjuncts.
pub fn scan_estimate(
    rel: &RelMeta,
    pushed: &[&Expr],
    resolver: &dyn Resolver,
    rels: &[RelMeta],
) -> f64 {
    let mut est = rel.rows as f64;
    for conj in pushed {
        est *= selectivity(conj, resolver, rels);
    }
    est
}

/// Estimated output rows of an equi-join between inputs of `left_rows`
/// and `right_rows` estimated rows, keyed on the given columns:
/// `|L| · |R| / max(d(L.key), d(R.key))`.
#[allow(clippy::too_many_arguments)]
pub fn join_estimate(
    left_rows: f64,
    right_rows: f64,
    left_rel: &RelMeta,
    left_col: usize,
    left_scan_rows: f64,
    right_rel: &RelMeta,
    right_col: usize,
    right_scan_rows: f64,
) -> f64 {
    let d_left = distinct_estimate(left_rel, left_col, left_scan_rows);
    let d_right = distinct_estimate(right_rel, right_col, right_scan_rows);
    left_rows * right_rows / d_left.max(d_right).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ColMeta;

    fn parse_expr(pred: &str) -> Expr {
        let q = sb_sql::parse(&format!("SELECT a FROM t WHERE {pred}")).unwrap();
        let sb_sql::SetExpr::Select(s) = &q.body else {
            panic!("select expected")
        };
        s.selection.clone().unwrap()
    }

    fn rel(rows: usize, unique_first: bool) -> RelMeta {
        RelMeta {
            binding: "t".into(),
            table: Some("t".into()),
            columns: vec![
                ColMeta {
                    name: "id".into(),
                    unique: unique_first,
                },
                ColMeta {
                    name: "v".into(),
                    unique: false,
                },
            ],
            rows,
        }
    }

    struct Fixed(Resolution);

    impl Resolver for Fixed {
        fn resolve(&self, _: &sb_sql::ColumnRef) -> Resolution {
            self.0
        }
    }

    #[test]
    fn unique_equality_is_sharpest() {
        let rels = vec![rel(1000, true)];
        let r = Fixed(Resolution::Col { rel: 0, col: 0 });
        let e = parse_expr("id = 7");
        let s = selectivity(&e, &r, &rels);
        assert!((s - 1.0 / 1000.0).abs() < 1e-12, "got {s}");
        // Non-unique column: the 1/10 folklore constant.
        let rels = vec![rel(1000, false)];
        let e = parse_expr("v = 7");
        let r = Fixed(Resolution::Col { rel: 0, col: 1 });
        let s = selectivity(&e, &r, &rels);
        assert!((s - 0.01).abs() < 1e-12, "1/(1000/10), got {s}");
    }

    #[test]
    fn connectives_compose() {
        let rels = vec![rel(100, false)];
        let r = Fixed(Resolution::Unknown);
        let and = parse_expr("v > 1 AND v < 9");
        let s = selectivity(&and, &r, &rels);
        assert!((s - 1.0 / 9.0).abs() < 1e-12);
        let not = parse_expr("NOT (v BETWEEN 1 AND 9)");
        assert!((selectivity(&not, &r, &rels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn join_estimate_divides_by_larger_distinct() {
        let big = rel(10_000, true);
        let small = rel(100, false);
        // 10k rows joining 100 rows on big's PK: ~100 rows out.
        let est = join_estimate(10_000.0, 100.0, &big, 0, 10_000.0, &small, 1, 100.0);
        assert!((est - 100.0).abs() < 1e-9, "got {est}");
    }

    #[test]
    fn estimates_never_drop_below_defined_floors() {
        let empty = rel(0, false);
        assert!(distinct_estimate(&empty, 0, 0.0) >= 1.0);
        let est = join_estimate(0.0, 0.0, &empty, 0, 0.0, &empty, 0, 0.0);
        assert_eq!(est, 0.0);
    }
}
