//! Predicate pushdown: assigning WHERE conjuncts to scans.
//!
//! This is the rule the executor's hand-rolled `assign_conjuncts` used
//! to implement; it lives here now so the same decision procedure backs
//! both the legacy executor path and the cost-based planner. The
//! semantics are deliberately conservative — a conjunct moves into a
//! scan only when doing so is provably invisible:
//!
//! - conjuncts containing any subquery stay residual (preserving the
//!   statement-level subquery memoization order),
//! - conjuncts whose references don't all resolve — unknown *or*
//!   ambiguous — stay residual, so the residual filter reports the
//!   error exactly as before,
//! - conjuncts spanning more than one relation stay residual,
//! - conjuncts over the nullable side of a LEFT JOIN stay residual,
//!   because they must see the padded NULLs, not the scan rows.

use crate::{Resolution, Resolver};
use sb_sql::{AggArg, BinaryOp, ColumnRef, Expr};

/// Flatten a predicate into its top-level AND conjuncts, left to right.
pub fn split_conjuncts<'e>(expr: &'e Expr, out: &mut Vec<&'e Expr>) {
    if let Expr::Binary {
        left,
        op: BinaryOp::And,
        right,
    } = expr
    {
        split_conjuncts(left, out);
        split_conjuncts(right, out);
    } else {
        out.push(expr);
    }
}

/// Whether an expression contains any subquery.
pub fn has_subquery(expr: &Expr) -> bool {
    match expr {
        Expr::Subquery(_) | Expr::InSubquery { .. } | Expr::Exists { .. } => true,
        Expr::Column(_) | Expr::Literal(_) => false,
        Expr::Unary { expr, .. } => has_subquery(expr),
        Expr::Binary { left, right, .. } => has_subquery(left) || has_subquery(right),
        Expr::Agg { arg, .. } => match arg {
            AggArg::Star => false,
            AggArg::Expr(e) => has_subquery(e),
        },
        Expr::Between {
            expr, low, high, ..
        } => has_subquery(expr) || has_subquery(low) || has_subquery(high),
        Expr::InList { expr, list, .. } => has_subquery(expr) || list.iter().any(has_subquery),
        Expr::Like { expr, pattern, .. } => has_subquery(expr) || has_subquery(pattern),
        Expr::IsNull { expr, .. } => has_subquery(expr),
    }
}

/// Collect every column reference in an expression. Subquery bodies are
/// skipped: they resolve against their own scopes.
pub fn collect_columns<'e>(expr: &'e Expr, out: &mut Vec<&'e ColumnRef>) {
    match expr {
        Expr::Column(c) => out.push(c),
        Expr::Literal(_) | Expr::Subquery(_) | Expr::Exists { .. } => {}
        Expr::Unary { expr, .. } => collect_columns(expr, out),
        Expr::Binary { left, right, .. } => {
            collect_columns(left, out);
            collect_columns(right, out);
        }
        Expr::Agg { arg, .. } => {
            if let AggArg::Expr(e) = arg {
                collect_columns(e, out);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_columns(expr, out);
            collect_columns(low, out);
            collect_columns(high, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_columns(expr, out);
            for e in list {
                collect_columns(e, out);
            }
        }
        Expr::InSubquery { expr, .. } => collect_columns(expr, out),
        Expr::Like { expr, pattern, .. } => {
            collect_columns(expr, out);
            collect_columns(pattern, out);
        }
        Expr::IsNull { expr, .. } => collect_columns(expr, out),
    }
}

/// Assign WHERE conjuncts to scans. `nullable[i]` is true when relation
/// `i` sits on the nullable side of a LEFT JOIN. With `enabled == false`
/// every conjunct stays residual (pushdown disabled), but the predicate
/// is still split so the residual filter evaluates conjunct-by-conjunct
/// exactly as before.
pub fn assign_pushdown<'e>(
    selection: Option<&'e Expr>,
    resolver: &dyn Resolver,
    n_rel: usize,
    nullable: &[bool],
    enabled: bool,
) -> (Vec<Vec<&'e Expr>>, Vec<&'e Expr>) {
    let mut pushed: Vec<Vec<&'e Expr>> = (0..n_rel).map(|_| Vec::new()).collect();
    let mut residual: Vec<&'e Expr> = Vec::new();
    let Some(pred) = selection else {
        return (pushed, residual);
    };
    let mut conjuncts = Vec::new();
    split_conjuncts(pred, &mut conjuncts);
    if !enabled {
        return (pushed, conjuncts);
    }
    for conj in conjuncts {
        match pushdown_target(conj, resolver, nullable) {
            Some(t) => pushed[t].push(conj),
            None => residual.push(conj),
        }
    }
    (pushed, residual)
}

/// The single relation a conjunct can be pushed into, or `None` when it
/// must stay in the residual filter.
fn pushdown_target(conj: &Expr, resolver: &dyn Resolver, nullable: &[bool]) -> Option<usize> {
    if has_subquery(conj) {
        return None;
    }
    let mut cols = Vec::new();
    collect_columns(conj, &mut cols);
    if cols.is_empty() {
        return None;
    }
    let mut target: Option<usize> = None;
    for col in cols {
        let Resolution::Col { rel, .. } = resolver.resolve(col) else {
            // Unknown or ambiguous: leave it to the residual filter,
            // which reports the error exactly as before.
            return None;
        };
        match target {
            None => target = Some(rel),
            Some(t) if t == rel => {}
            Some(_) => return None,
        }
    }
    let t = target.expect("at least one column");
    if nullable[t] {
        None
    } else {
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_sql::{parse, SetExpr};

    /// Toy resolver over `(relation, column-name)` pairs, first-match
    /// wins per relation, ambiguity across relations.
    struct Names(Vec<Vec<&'static str>>);

    impl Resolver for Names {
        fn resolve(&self, c: &ColumnRef) -> Resolution {
            let hits: Vec<(usize, usize)> = self
                .0
                .iter()
                .enumerate()
                .filter_map(|(r, cols)| {
                    cols.iter()
                        .position(|n| n.eq_ignore_ascii_case(&c.column))
                        .map(|i| (r, i))
                })
                .collect();
            match (&c.table, hits.as_slice()) {
                (Some(q), _) => {
                    // Qualifier "t1"/"t2" selects the relation by number.
                    let rel = match q.as_str() {
                        "t1" => 0,
                        "t2" => 1,
                        _ => return Resolution::Unknown,
                    };
                    match self.0[rel]
                        .iter()
                        .position(|n| n.eq_ignore_ascii_case(&c.column))
                    {
                        Some(col) => Resolution::Col { rel, col },
                        None => Resolution::Unknown,
                    }
                }
                (None, [(rel, col)]) => Resolution::Col {
                    rel: *rel,
                    col: *col,
                },
                (None, []) => Resolution::Unknown,
                (None, _) => Resolution::Ambiguous,
            }
        }
    }

    fn selection(sql: &str) -> Expr {
        let q = parse(sql).unwrap();
        let SetExpr::Select(s) = &q.body else {
            panic!("select expected")
        };
        s.selection.clone().unwrap()
    }

    #[test]
    fn splits_and_routes_conjuncts() {
        let pred = selection(
            "SELECT a FROM x AS t1 WHERE t1.a = 1 AND t2.b > 2 AND t1.a < t2.b \
             AND c IN (SELECT a FROM x)",
        );
        let names = Names(vec![vec!["a"], vec!["b"]]);
        let (pushed, residual) = assign_pushdown(Some(&pred), &names, 2, &[false, false], true);
        assert_eq!(pushed[0].len(), 1, "t1.a = 1 pushes to relation 0");
        assert_eq!(pushed[1].len(), 1, "t2.b > 2 pushes to relation 1");
        // Cross-relation comparison and subquery conjunct stay residual.
        assert_eq!(residual.len(), 2);
    }

    #[test]
    fn ambiguous_and_unknown_stay_residual() {
        let pred = selection("SELECT a FROM x WHERE dup = 1 AND nope = 2");
        let names = Names(vec![vec!["dup"], vec!["dup"]]);
        let (pushed, residual) = assign_pushdown(Some(&pred), &names, 2, &[false, false], true);
        assert!(pushed.iter().all(Vec::is_empty));
        assert_eq!(residual.len(), 2);
    }

    #[test]
    fn nullable_side_of_left_join_is_not_pushed() {
        let pred = selection("SELECT a FROM x WHERE t2.b = 1");
        let names = Names(vec![vec!["a"], vec!["b"]]);
        let (pushed, residual) = assign_pushdown(Some(&pred), &names, 2, &[false, true], true);
        assert!(pushed[1].is_empty());
        assert_eq!(residual.len(), 1);
    }

    #[test]
    fn disabled_pushdown_still_splits() {
        let pred = selection("SELECT a FROM x WHERE t1.a = 1 AND t1.a = 2");
        let names = Names(vec![vec!["a"]]);
        let (pushed, residual) = assign_pushdown(Some(&pred), &names, 1, &[false], false);
        assert!(pushed[0].is_empty());
        assert_eq!(residual.len(), 2);
    }
}
