//! Owned, cacheable plan decisions for prepared-statement reuse.
//!
//! [`PlannedSelect`] borrows its pushed/residual conjuncts from the
//! statement's AST, which makes it perfect for one execution and
//! impossible to store in a cache next to the query that owns those
//! expressions. [`OwnedPlan`] is the borrow-free mirror: conjunct
//! *indices* into the deterministic [`split_conjuncts`] order of the
//! WHERE clause instead of `&Expr` references, everything else copied
//! verbatim.
//!
//! The contract is exact reconstruction: for the same `Select`,
//! [`OwnedPlan::reify`] returns a `PlannedSelect` identical to the one
//! [`OwnedPlan::capture`] saw — same conjunct references (by pointer),
//! same pruning, order, steps and build sides — so a cached plan
//! executes byte-identically to a freshly planned one, errors included.
//! Both directions are defensive: a statement whose conjunct layout
//! does not match the stored indices yields `None`, and callers fall
//! back to fresh planning rather than executing a mismatched plan.

use crate::plan::{PlannedJoin, PlannedSelect};
use crate::pushdown::split_conjuncts;
use sb_sql::{Expr, Select};

/// A [`PlannedSelect`] with every statement borrow replaced by a
/// conjunct index — storable in a cache for as long as the paired
/// query AST lives.
#[derive(Debug, Clone)]
pub struct OwnedPlan {
    /// Per-relation pushed conjuncts, as indices into the WHERE
    /// clause's top-level conjunct list.
    pushed: Vec<Vec<usize>>,
    /// Residual conjunct indices.
    residual: Vec<usize>,
    /// Projection pushdown keep-sets (original column indices).
    keep: Vec<Option<Vec<usize>>>,
    /// Relation execution order.
    order: Vec<usize>,
    /// Join steps aligned with `order[1..]`.
    steps: Vec<PlannedJoin>,
    /// Whether `order` differs from source order.
    reordered: bool,
    /// Build sides for the source-order executor path.
    build_sides: Vec<bool>,
    /// Estimated scan output rows per relation.
    scan_est: Vec<f64>,
}

/// The statement's top-level WHERE conjuncts in [`split_conjuncts`]
/// order — the coordinate system `OwnedPlan` indices live in.
fn top_conjuncts(select: &Select) -> Vec<&Expr> {
    let mut out = Vec::new();
    if let Some(sel) = &select.selection {
        split_conjuncts(sel, &mut out);
    }
    out
}

impl OwnedPlan {
    /// Convert a freshly planned statement into its owned form. Returns
    /// `None` if any planned conjunct is not a top-level WHERE conjunct
    /// of `select` (impossible for plans produced by
    /// [`crate::plan_select`] on the same statement, but checked rather
    /// than assumed).
    pub fn capture(planned: &PlannedSelect<'_>, select: &Select) -> Option<OwnedPlan> {
        let conjuncts = top_conjuncts(select);
        let index_of =
            |e: &Expr| -> Option<usize> { conjuncts.iter().position(|c| std::ptr::eq(*c, e)) };
        let mut pushed = Vec::with_capacity(planned.pushed.len());
        for rel in &planned.pushed {
            let mut idxs = Vec::with_capacity(rel.len());
            for e in rel {
                idxs.push(index_of(e)?);
            }
            pushed.push(idxs);
        }
        let residual: Option<Vec<usize>> = planned.residual.iter().map(|e| index_of(e)).collect();
        Some(OwnedPlan {
            pushed,
            residual: residual?,
            keep: planned.keep.clone(),
            order: planned.order.clone(),
            steps: planned.steps.clone(),
            reordered: planned.reordered,
            build_sides: planned.build_sides.clone(),
            scan_est: planned.scan_est.clone(),
        })
    }

    /// Reconstruct the borrowing plan against (the same) `select`.
    /// Returns `None` when the statement's relation count or conjunct
    /// list no longer matches the stored indices.
    pub fn reify<'e>(&self, select: &'e Select) -> Option<PlannedSelect<'e>> {
        let n = select.joins.len() + 1;
        if self.pushed.len() != n || self.keep.len() != n {
            return None;
        }
        let conjuncts = top_conjuncts(select);
        let mut pushed = Vec::with_capacity(n);
        for rel in &self.pushed {
            let mut refs = Vec::with_capacity(rel.len());
            for &i in rel {
                refs.push(*conjuncts.get(i)?);
            }
            pushed.push(refs);
        }
        let residual: Option<Vec<&Expr>> = self
            .residual
            .iter()
            .map(|&i| conjuncts.get(i).copied())
            .collect();
        Some(PlannedSelect {
            pushed,
            residual: residual?,
            keep: self.keep.clone(),
            order: self.order.clone(),
            steps: self.steps.clone(),
            reordered: self.reordered,
            build_sides: self.build_sides.clone(),
            scan_est: self.scan_est.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColMeta, OptOptions, PlanInput, RelMeta, Resolution, Resolver};
    use sb_sql::{parse, ColumnRef, SetExpr};

    /// Resolver over rel metas: qualified by binding, bare by unique name.
    struct MetaResolver<'a>(&'a [RelMeta]);

    impl Resolver for MetaResolver<'_> {
        fn resolve(&self, c: &ColumnRef) -> Resolution {
            let by_name = |rel: usize| {
                self.0[rel]
                    .columns
                    .iter()
                    .position(|col| col.name.eq_ignore_ascii_case(&c.column))
            };
            match &c.table {
                Some(q) => match self
                    .0
                    .iter()
                    .position(|r| r.binding.eq_ignore_ascii_case(q))
                {
                    Some(rel) => match by_name(rel) {
                        Some(col) => Resolution::Col { rel, col },
                        None => Resolution::Unknown,
                    },
                    None => Resolution::Unknown,
                },
                None => {
                    let mut found = None;
                    for rel in 0..self.0.len() {
                        if let Some(col) = by_name(rel) {
                            if found.is_some() {
                                return Resolution::Ambiguous;
                            }
                            found = Some(Resolution::Col { rel, col });
                        }
                    }
                    found.unwrap_or(Resolution::Unknown)
                }
            }
        }
    }

    fn meta(binding: &str, cols: &[(&str, bool)], rows: usize) -> RelMeta {
        RelMeta {
            binding: binding.into(),
            table: Some(binding.into()),
            columns: cols
                .iter()
                .map(|(n, u)| ColMeta {
                    name: (*n).into(),
                    unique: *u,
                })
                .collect(),
            rows,
        }
    }

    /// Field-by-field comparison via Debug: `PlannedSelect` has no
    /// `PartialEq` (it holds `&Expr`), but its Debug output pins every
    /// decision including the borrowed conjuncts.
    fn assert_same(a: &PlannedSelect<'_>, b: &PlannedSelect<'_>) {
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // Reference identity, not just structural equality: the reified
        // conjuncts must be the very same AST nodes.
        for (ra, rb) in a.pushed.iter().zip(&b.pushed) {
            for (ea, eb) in ra.iter().zip(rb) {
                assert!(std::ptr::eq(*ea, *eb));
            }
        }
        for (ea, eb) in a.residual.iter().zip(&b.residual) {
            assert!(std::ptr::eq(*ea, *eb));
        }
    }

    #[test]
    fn capture_reify_round_trips_reordered_plan() {
        let rels = vec![
            meta("a", &[("id", true), ("b_id", false)], 100_000),
            meta("b", &[("id", true), ("kind", false)], 10),
            meta("c", &[("id", true), ("a_id", false)], 1_000),
        ];
        let sql = "SELECT a.id FROM a JOIN b ON a.b_id = b.id \
                   JOIN c ON c.a_id = a.id WHERE b.kind = 'x' AND a.id > 3 AND a.id < c.id";
        let parsed = parse(sql).unwrap();
        let SetExpr::Select(select) = &parsed.body else {
            panic!("select expected")
        };
        let input = PlanInput {
            select,
            order_by: &parsed.order_by,
            limit: parsed.limit,
            rels: &rels,
            opts: OptOptions::default(),
        };
        let fresh = crate::plan_select(&input, &MetaResolver(&rels));
        assert!(fresh.reordered, "exercises the interesting plan shape");
        let owned = OwnedPlan::capture(&fresh, select).expect("own plan");
        let reified = owned.reify(select).expect("reify against same select");
        assert_same(&fresh, &reified);
    }

    #[test]
    fn reify_rejects_mismatched_statement() {
        let rels = vec![meta("a", &[("id", true)], 10)];
        let sql = "SELECT a.id FROM a WHERE a.id = 1 AND a.id < 5";
        let parsed = parse(sql).unwrap();
        let SetExpr::Select(select) = &parsed.body else {
            panic!("select expected")
        };
        let input = PlanInput {
            select,
            order_by: &parsed.order_by,
            limit: parsed.limit,
            rels: &rels,
            opts: OptOptions::default(),
        };
        let fresh = crate::plan_select(&input, &MetaResolver(&rels));
        let owned = OwnedPlan::capture(&fresh, select).expect("own plan");

        // Fewer conjuncts than the stored indices expect.
        let other = parse("SELECT a.id FROM a WHERE a.id = 1").unwrap();
        let SetExpr::Select(other_select) = &other.body else {
            panic!("select expected")
        };
        assert!(owned.reify(other_select).is_none());

        // Different relation count.
        let wide = parse("SELECT a.id FROM a JOIN b ON a.id = b.id WHERE a.id = 1").unwrap();
        let SetExpr::Select(wide_select) = &wide.body else {
            panic!("select expected")
        };
        assert!(owned.reify(wide_select).is_none());
    }
}
