//! EXPLAIN rendering: a [`PlannedSelect`] as an operator tree.
//!
//! The output is plain indented text in the style of planner-test
//! snapshot suites: one operator per line, children connected with
//! `└──`/`├──` rails, estimated cardinalities as `rows~N`. The
//! plan-snapshot goldens under `tests/goldens/plans/` pin this text per
//! hardness bucket, so any change to a rewrite rule or to the cost
//! model shows up as a reviewable diff.
//!
//! Labels are derived from the same [`PlannedSelect`] the executor
//! consumes — there is no second planning pass that could drift. The
//! one approximation: a join is labelled `HashJoin` when the planner
//! recognized a qualified equi-key for it; the executor additionally
//! hash-joins some bare-name equalities, which EXPLAIN conservatively
//! shows as `NestedLoopJoin`.

use crate::plan::{PlanInput, PlannedSelect};
use sb_sql::{Select, SelectItem};

/// One rendered operator: a label plus child operators. Deliberately
/// schemaless — derived-table subplans nest as ordinary children.
#[derive(Debug, Clone)]
pub struct PlanNode {
    /// Operator description, e.g. `HashJoin on s.bestobjid = p.objid`.
    pub label: String,
    /// Input operators, outermost first.
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    /// A leaf operator.
    pub fn leaf(label: impl Into<String>) -> Self {
        PlanNode {
            label: label.into(),
            children: Vec::new(),
        }
    }

    /// An operator with one input.
    pub fn unary(label: impl Into<String>, child: PlanNode) -> Self {
        PlanNode {
            label: label.into(),
            children: vec![child],
        }
    }
}

/// Render a plan tree as indented text with box-drawing rails.
pub fn render(root: &PlanNode) -> String {
    let mut out = String::new();
    out.push_str(&root.label);
    out.push('\n');
    render_children(&root.children, "", &mut out);
    out
}

fn render_children(children: &[PlanNode], prefix: &str, out: &mut String) {
    for (i, child) in children.iter().enumerate() {
        let last = i + 1 == children.len();
        out.push_str(prefix);
        out.push_str(if last { "└── " } else { "├── " });
        out.push_str(&child.label);
        out.push('\n');
        let next = format!("{prefix}{}", if last { "    " } else { "│   " });
        render_children(&child.children, &next, out);
    }
}

/// Runtime-statistics source for EXPLAIN ANALYZE renderings.
///
/// Each callback returns the annotation text for one operator (or
/// `None` to leave the label bare). The renderer stays ignorant of
/// where the numbers come from — the engine implements this against
/// its per-statement `QueryProfile`, keeping `sb-opt` dependency-free.
/// Join steps are identified by their position in `planned.steps` plus
/// the relation index the step introduced, matching how the executor
/// records them.
pub trait PlanAnnotator {
    /// Annotation for the scan of relation `rel` (original coordinates).
    fn scan(&self, rel: usize) -> Option<String>;
    /// Annotation for join step `step` (introducing relation `rel`).
    fn join(&self, step: usize, rel: usize) -> Option<String>;
    /// Annotation for the residual `Filter` operator.
    fn filter(&self) -> Option<String>;
    /// Annotation for the `Aggregate` operator.
    fn aggregate(&self) -> Option<String>;
    /// Annotation for the `Distinct` operator.
    fn distinct(&self) -> Option<String>;
    /// Annotation for the `TopK`/`Sort`/`Limit` operator.
    fn order(&self) -> Option<String>;
    /// Annotation for the root `Execute` line (actual engine used,
    /// columnar-fallback reason, statement wall time).
    fn root(&self) -> Option<String>;
}

/// Build the operator tree for one planned `SELECT`.
///
/// `derived` supplies a pre-built subplan per relation (for derived
/// tables), in original relation order; `None` entries are base tables.
pub fn build_plan(
    input: &PlanInput<'_>,
    planned: &PlannedSelect<'_>,
    derived: &[Option<PlanNode>],
) -> PlanNode {
    build_plan_inner(input, planned, derived, None)
}

/// [`build_plan`] with runtime statistics appended to operator labels —
/// the EXPLAIN ANALYZE tree.
pub fn build_plan_annotated(
    input: &PlanInput<'_>,
    planned: &PlannedSelect<'_>,
    derived: &[Option<PlanNode>],
    ann: &dyn PlanAnnotator,
) -> PlanNode {
    build_plan_inner(input, planned, derived, Some(ann))
}

fn build_plan_inner(
    input: &PlanInput<'_>,
    planned: &PlannedSelect<'_>,
    derived: &[Option<PlanNode>],
    ann: Option<&dyn PlanAnnotator>,
) -> PlanNode {
    let select = input.select;
    let rels = input.rels;

    // Scan leaves, in original coordinates.
    let scan_node = |i: usize| -> PlanNode {
        let rel = &rels[i];
        let mut label = match &rel.table {
            Some(t) if t.eq_ignore_ascii_case(&rel.binding) => format!("Scan {t}"),
            Some(t) => format!("Scan {t} AS {}", rel.binding),
            None => format!("DerivedScan {}", rel.binding),
        };
        if let Some(kept) = &planned.keep[i] {
            let names: Vec<&str> = kept.iter().map(|&c| rel.columns[c].name.as_str()).collect();
            label.push_str(&format!(" cols=[{}]", names.join(", ")));
        }
        if !planned.pushed[i].is_empty() {
            let preds: Vec<String> = planned.pushed[i].iter().map(|e| e.to_string()).collect();
            label.push_str(&format!(" filter=[{}]", preds.join(" AND ")));
        }
        label.push_str(&format!(" rows~{}", round_est(planned.scan_est[i])));
        if let Some(a) = ann.and_then(|a| a.scan(i)) {
            label.push_str(&a);
        }
        match &derived[i] {
            Some(child) => PlanNode::unary(label, child.clone()),
            None => PlanNode::leaf(label),
        }
    };

    // Left-deep join tree in execution order.
    let mut node = scan_node(planned.order[0]);
    for (si, step) in planned.steps.iter().enumerate() {
        let right = scan_node(step.rel);
        // The source join that introduced this relation. A reordered
        // plan can join the FROM relation (`step.rel == 0`) late — all
        // its joins are inner equi-joins by precondition, so the
        // missing source join only ever means "not a left outer".
        let source_join = step.rel.checked_sub(1).map(|j| &select.joins[j]);
        let outer = source_join.is_some_and(|j| j.left);
        let label = match &step.key {
            Some(k) if input.opts.hash_joins => {
                let l = &rels[k.left_rel];
                let r = &rels[step.rel];
                format!(
                    "HashJoin{} on {}.{} = {}.{} build={} rows~{}",
                    if outer { " (left outer)" } else { "" },
                    l.binding,
                    l.columns[k.left_col].name,
                    r.binding,
                    r.columns[k.right_col].name,
                    if step.build_left { "left" } else { "right" },
                    round_est(step.est_rows),
                )
            }
            _ => match source_join.and_then(|j| j.constraint.as_ref()) {
                Some(c) => format!(
                    "NestedLoopJoin{} pred=[{c}] rows~{}",
                    if outer { " (left outer)" } else { "" },
                    round_est(step.est_rows),
                ),
                None => format!("CrossJoin rows~{}", round_est(step.est_rows)),
            },
        };
        let label = match ann.and_then(|a| a.join(si, step.rel)) {
            Some(a) => format!("{label}{a}"),
            None => label,
        };
        node = PlanNode {
            label,
            children: vec![node, right],
        };
    }
    if planned.reordered {
        node = PlanNode::unary(
            format!(
                "RestoreOrder [{}]",
                planned
                    .order
                    .iter()
                    .map(|&r| rels[r].binding.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            node,
        );
    }

    if !planned.residual.is_empty() {
        let preds: Vec<String> = planned.residual.iter().map(|e| e.to_string()).collect();
        let mut label = format!("Filter [{}]", preds.join(" AND "));
        if let Some(a) = ann.and_then(|a| a.filter()) {
            label.push_str(&a);
        }
        node = PlanNode::unary(label, node);
    }

    if is_aggregate(select, input) {
        let mut label = "Aggregate".to_string();
        if !select.group_by.is_empty() {
            let keys: Vec<String> = select.group_by.iter().map(|e| e.to_string()).collect();
            label.push_str(&format!(" group_by=[{}]", keys.join(", ")));
        }
        if let Some(h) = &select.having {
            label.push_str(&format!(" having=[{h}]"));
        }
        if let Some(a) = ann.and_then(|a| a.aggregate()) {
            label.push_str(&a);
        }
        node = PlanNode::unary(label, node);
    }

    let items: Vec<String> = select
        .projections
        .iter()
        .map(|p| match p {
            SelectItem::Wildcard => "*".to_string(),
            SelectItem::Expr { expr, alias } => match alias {
                Some(a) => format!("{expr} AS {a}"),
                None => expr.to_string(),
            },
        })
        .collect();
    node = PlanNode::unary(format!("Project [{}]", items.join(", ")), node);

    if select.distinct {
        let mut label = "Distinct".to_string();
        if let Some(a) = ann.and_then(|a| a.distinct()) {
            label.push_str(&a);
        }
        node = PlanNode::unary(label, node);
    }

    // ORDER BY + LIMIT fuse into a bounded top-K operator.
    let keys: Vec<String> = input
        .order_by
        .iter()
        .map(|o| format!("{}{}", o.expr, if o.desc { " DESC" } else { " ASC" }))
        .collect();
    let order_ann = || ann.and_then(|a| a.order()).unwrap_or_default();
    match (input.order_by.is_empty(), input.limit) {
        (false, Some(k)) => {
            let label = format!("TopK k={k} keys=[{}]{}", keys.join(", "), order_ann());
            node = PlanNode::unary(label, node);
        }
        (false, None) => {
            let label = format!("Sort keys=[{}]{}", keys.join(", "), order_ann());
            node = PlanNode::unary(label, node);
        }
        (true, Some(k)) => {
            node = PlanNode::unary(format!("Limit k={k}{}", order_ann()), node);
        }
        (true, None) => {}
    }

    // Root label: which executor the engine selects for this statement.
    // Structural only — data-dependent fallbacks (e.g. mixed-typed
    // columns) still demote to the row engine at runtime. The parallel
    // annotation is equally structural: `morsel` when some stage can
    // fan out, `none` when the shape has no parallel kernel, `off` when
    // the session disabled parallelism. Worker counts and morsel sizes
    // never appear here — the same plan text renders on every machine.
    let engine = if input.opts.columnar && crate::columnar_eligible(select, input.order_by) {
        "columnar"
    } else {
        "row"
    };
    let mut root = format!("Execute engine={engine}");
    if engine == "columnar" {
        let par = if !input.opts.parallel {
            "off"
        } else if crate::parallel_eligible(select, input.order_by) {
            "morsel"
        } else {
            "none"
        };
        root.push_str(&format!(" parallel={par}"));
    }
    if let Some(a) = ann.and_then(|a| a.root()) {
        root.push_str(&a);
    }
    PlanNode::unary(root, node)
}

/// Mirror of the executor's aggregate-query test, structured on the
/// plan input (group by / having / any aggregate in projections or
/// order keys).
fn is_aggregate(select: &Select, input: &PlanInput<'_>) -> bool {
    if !select.group_by.is_empty() || select.having.is_some() {
        return true;
    }
    let proj_agg = select.projections.iter().any(|p| match p {
        SelectItem::Wildcard => false,
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
    });
    proj_agg || input.order_by.iter().any(|o| o.expr.contains_aggregate())
}

/// Estimates print as integers: stable, readable, and immune to float
/// formatting churn.
fn round_est(est: f64) -> u64 {
    if est.is_finite() && est >= 0.0 {
        est.round().min(u64::MAX as f64) as u64
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rails_and_indentation() {
        let tree = PlanNode {
            label: "Project [a]".into(),
            children: vec![PlanNode {
                label: "HashJoin".into(),
                children: vec![PlanNode::leaf("Scan t"), PlanNode::leaf("Scan u")],
            }],
        };
        let text = render(&tree);
        let expected = [
            "Project [a]",
            "└── HashJoin",
            "    ├── Scan t",
            "    └── Scan u",
            "",
        ]
        .join("\n");
        assert_eq!(text, expected);
    }
}
