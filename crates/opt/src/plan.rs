//! Lowering and the rewrite pipeline: one `SELECT` in, one
//! [`PlannedSelect`] out.
//!
//! The planner never sees rows. It lowers the statement into per-scan
//! filters plus a join graph, then applies the rules in a fixed order —
//! predicate pushdown, projection pushdown, cost-based join reordering,
//! build-side selection — and returns the surviving decisions in the
//! *original* relation/column coordinate system. The executor remaps
//! into pruned layouts itself, so there is exactly one coordinate
//! translation and it lives next to the code that narrows rows.
//!
//! ## When reordering applies
//!
//! Join reordering is restricted to statements where it is provably
//! invisible: three or more relations, all joins `INNER`, every `ON`
//! constraint a single `a = b` equality of two *table-qualified* column
//! references that resolve uniquely, all binding names distinct, and
//! each constraint connecting the relation it introduces to an earlier
//! one. Those conditions make the join graph a spanning tree whose
//! every execution order needs exactly one hash-join key per step, and
//! they guarantee no resolution error can depend on the chosen order.
//! The executor tags rows with their scan positions and restores the
//! source-order output afterwards, so even tie-breaking in ORDER BY and
//! the strict row-order equivalence tests cannot observe the reorder.

use crate::cost::{join_estimate, scan_estimate};
use crate::pushdown::assign_pushdown;
use crate::{OptOptions, RelMeta, Resolution, Resolver};
use sb_sql::{BinaryOp, Expr, OrderItem, Select, SelectItem};

/// Everything the planner needs about one statement.
pub struct PlanInput<'a> {
    /// The SELECT body.
    pub select: &'a Select,
    /// Statement-level ORDER BY items.
    pub order_by: &'a [OrderItem],
    /// Statement-level LIMIT.
    pub limit: Option<u64>,
    /// Per-relation metadata, in FROM/JOIN order.
    pub rels: &'a [RelMeta],
    /// Which rewrites are enabled.
    pub opts: OptOptions,
}

/// One equi-join hash key, in original coordinates: column `left_col`
/// of relation `left_rel` (already in scope) equals column `right_col`
/// of the relation the step introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeKey {
    /// Relation (original index) providing the probe-side key.
    pub left_rel: usize,
    /// Column of `left_rel` (original index).
    pub left_col: usize,
    /// Column of the introduced relation (original index).
    pub right_col: usize,
}

/// One join step of the chosen execution order.
#[derive(Debug, Clone)]
pub struct PlannedJoin {
    /// The relation (original index) this step joins in.
    pub rel: usize,
    /// Hash-key columns; always `Some` on a reordered plan.
    pub key: Option<EdgeKey>,
    /// Build the hash table on the accumulated (left) side.
    pub build_left: bool,
    /// Estimated output rows of this step.
    pub est_rows: f64,
}

/// The planner's decisions for one `SELECT`, in original coordinates.
#[derive(Debug, Clone)]
pub struct PlannedSelect<'e> {
    /// Per-relation pushed conjuncts (borrowed from the statement).
    pub pushed: Vec<Vec<&'e Expr>>,
    /// Residual WHERE conjuncts.
    pub residual: Vec<&'e Expr>,
    /// Projection pushdown: for each relation, the original column
    /// indices to keep (ascending), or `None` to keep every column.
    pub keep: Vec<Option<Vec<usize>>>,
    /// Execution order of relations (original indices);
    /// `order[0]` is scanned first.
    pub order: Vec<usize>,
    /// Join steps aligned with `order[1..]` — used by the executor only
    /// when `reordered`, and by EXPLAIN for labels either way.
    pub steps: Vec<PlannedJoin>,
    /// Whether `order` differs from source order (the executor must run
    /// the order-restoring join pipeline).
    pub reordered: bool,
    /// Estimate-chosen hash build sides per *source* join, for the
    /// source-order executor path.
    pub build_sides: Vec<bool>,
    /// Estimated scan output rows per relation (after pushed filters).
    pub scan_est: Vec<f64>,
}

/// An equi-join edge extracted from one `ON` constraint, in original
/// coordinates. `new_rel` is the relation the join introduces.
#[derive(Debug, Clone, Copy)]
struct Edge {
    prev_rel: usize,
    prev_col: usize,
    new_rel: usize,
    new_col: usize,
}

/// Plan one `SELECT`. Resolution goes through `resolver` (the engine's
/// scope), so the planner inherits executor name semantics verbatim.
pub fn plan_select<'e>(input: &PlanInput<'e>, resolver: &dyn Resolver) -> PlannedSelect<'e> {
    let select = input.select;
    let rels = input.rels;
    let n = rels.len();

    // Rule 1: predicate pushdown.
    let nullable: Vec<bool> = (0..n).map(|i| i > 0 && select.joins[i - 1].left).collect();
    let (pushed, residual) = assign_pushdown(
        select.selection.as_ref(),
        resolver,
        n,
        &nullable,
        input.opts.pushdown,
    );

    // Rule 2: projection pushdown (decided here, applied by the engine).
    let keep = prune_columns(input, resolver);

    let scan_est: Vec<f64> = (0..n)
        .map(|i| scan_estimate(&rels[i], &pushed[i], resolver, rels))
        .collect();

    // Rule 3: cost-based join reordering over the equi-join tree.
    let edges = if input.opts.reorder && input.opts.hash_joins && n >= 3 {
        extract_join_tree(input, resolver)
    } else {
        None
    };
    let (order, steps) = match &edges {
        Some(edges) => greedy_order(input, edges, &scan_est),
        None => (Vec::new(), Vec::new()),
    };
    let reordered = !order.is_empty() && order.iter().enumerate().any(|(i, &r)| i != r);
    let (order, steps) = if reordered {
        (order, steps)
    } else {
        (
            (0..n).collect(),
            source_order_steps(input, resolver, &scan_est),
        )
    };

    // Rule 4: build-side selection for the source-order path. (Reordered
    // steps carry their own build sides.)
    let build_sides = steps
        .iter()
        .map(|s| input.opts.choose_build && s.build_left)
        .collect();

    PlannedSelect {
        pushed,
        residual,
        keep,
        order,
        steps,
        reordered,
        build_sides,
        scan_est,
    }
}

/// Projection pushdown: keep a column only when its (case-folded) name
/// is referenced somewhere in the statement. Name-level granularity is
/// what makes the rule sound: if a name survives anywhere it survives
/// everywhere, so bare-reference ambiguity, qualified resolution and
/// ORDER BY alias fallback behave identically against the pruned scope.
/// Disabled for single-relation statements (scans stay zero-copy) and
/// in the presence of a wildcard projection.
fn prune_columns(input: &PlanInput<'_>, _resolver: &dyn Resolver) -> Vec<Option<Vec<usize>>> {
    let select = input.select;
    let n = input.rels.len();
    let wildcard = select
        .projections
        .iter()
        .any(|p| matches!(p, SelectItem::Wildcard));
    if !input.opts.prune || n < 2 || wildcard {
        return vec![None; n];
    }
    let mut refs = Vec::new();
    let mut exprs: Vec<&Expr> = Vec::new();
    if let Some(sel) = &select.selection {
        exprs.push(sel);
    }
    for join in &select.joins {
        if let Some(c) = &join.constraint {
            exprs.push(c);
        }
    }
    for p in &select.projections {
        if let SelectItem::Expr { expr, .. } = p {
            exprs.push(expr);
        }
    }
    exprs.extend(select.group_by.iter());
    if let Some(h) = &select.having {
        exprs.push(h);
    }
    exprs.extend(input.order_by.iter().map(|o| &o.expr));
    for e in exprs {
        crate::pushdown::collect_columns(e, &mut refs);
    }
    let needed: Vec<String> = refs.iter().map(|c| c.column.to_ascii_lowercase()).collect();
    (0..n)
        .map(|i| {
            let cols = &input.rels[i].columns;
            let kept: Vec<usize> = (0..cols.len())
                .filter(|&c| {
                    needed
                        .iter()
                        .any(|name| cols[c].name.eq_ignore_ascii_case(name))
                })
                .collect();
            if kept.len() == cols.len() {
                None
            } else {
                Some(kept)
            }
        })
        .collect()
}

/// Extract the equi-join spanning tree, or `None` when any reordering
/// precondition fails.
fn extract_join_tree(input: &PlanInput<'_>, resolver: &dyn Resolver) -> Option<Vec<Edge>> {
    let select = input.select;
    let rels = input.rels;
    // Distinct binding names: prefix-scope and full-scope resolution
    // agree only when no binding shadows another.
    for (i, a) in rels.iter().enumerate() {
        for b in &rels[..i] {
            if a.binding.eq_ignore_ascii_case(&b.binding) {
                return None;
            }
        }
    }
    let mut edges = Vec::with_capacity(select.joins.len());
    for (j, join) in select.joins.iter().enumerate() {
        if join.left {
            return None;
        }
        let Some(Expr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        }) = &join.constraint
        else {
            return None;
        };
        let (Expr::Column(a), Expr::Column(b)) = (left.as_ref(), right.as_ref()) else {
            return None;
        };
        // Qualified references only: a bare name's meaning could depend
        // on which relations are in scope when it is evaluated.
        if a.table.is_none() || b.table.is_none() {
            return None;
        }
        let (Resolution::Col { rel: ra, col: ca }, Resolution::Col { rel: rb, col: cb }) =
            (resolver.resolve(a), resolver.resolve(b))
        else {
            return None;
        };
        // The constraint must connect the relation this join introduces
        // (index j + 1) to an earlier one.
        let introduced = j + 1;
        let edge = if ra == introduced && rb < introduced {
            Edge {
                prev_rel: rb,
                prev_col: cb,
                new_rel: ra,
                new_col: ca,
            }
        } else if rb == introduced && ra < introduced {
            Edge {
                prev_rel: ra,
                prev_col: ca,
                new_rel: rb,
                new_col: cb,
            }
        } else {
            return None;
        };
        edges.push(edge);
    }
    Some(edges)
}

/// Greedy bottom-up join ordering: start from the smallest estimated
/// scan, then repeatedly join in the connected relation minimizing the
/// estimated intermediate result. Ties break toward source order, so
/// plans are deterministic and stay put unless the estimates actually
/// prefer a change.
fn greedy_order(
    input: &PlanInput<'_>,
    edges: &[Edge],
    scan_est: &[f64],
) -> (Vec<usize>, Vec<PlannedJoin>) {
    let rels = input.rels;
    let n = rels.len();
    let start = (0..n)
        .min_by(|&a, &b| {
            scan_est[a]
                .partial_cmp(&scan_est[b])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        })
        .expect("at least one relation");
    let mut order = vec![start];
    let mut in_scope = vec![false; n];
    in_scope[start] = true;
    let mut cur_est = scan_est[start];
    let mut steps = Vec::with_capacity(n - 1);
    while order.len() < n {
        // Candidate relations: connected to the scope by an (unused)
        // edge. The edge set is a spanning tree, so exactly one edge
        // applies per candidate and a candidate always exists.
        let mut best: Option<(f64, usize, EdgeKey)> = None;
        for e in edges {
            // Orient the edge so `have` is in scope and `add` is not.
            let (have, have_col, add, add_col) = if in_scope[e.prev_rel] && !in_scope[e.new_rel] {
                (e.prev_rel, e.prev_col, e.new_rel, e.new_col)
            } else if in_scope[e.new_rel] && !in_scope[e.prev_rel] {
                (e.new_rel, e.new_col, e.prev_rel, e.prev_col)
            } else {
                continue;
            };
            let est = join_estimate(
                cur_est,
                scan_est[add],
                &rels[have],
                have_col,
                scan_est[have],
                &rels[add],
                add_col,
                scan_est[add],
            );
            let better = match &best {
                None => true,
                Some((b_est, b_add, _)) => est < *b_est || (est == *b_est && add < *b_add),
            };
            if better {
                best = Some((
                    est,
                    add,
                    EdgeKey {
                        left_rel: have,
                        left_col: have_col,
                        right_col: add_col,
                    },
                ));
            }
        }
        let (est, add, key) = best.expect("join tree is connected");
        steps.push(PlannedJoin {
            rel: add,
            key: Some(key),
            build_left: cur_est <= scan_est[add],
            est_rows: est,
        });
        in_scope[add] = true;
        order.push(add);
        cur_est = est;
    }
    (order, steps)
}

/// Steps for the source-order path: estimates walk the joins as
/// written, extracting per-join equi keys opportunistically (for build
/// sides and EXPLAIN labels; the executor re-derives its own hash keys
/// on this path).
fn source_order_steps(
    input: &PlanInput<'_>,
    resolver: &dyn Resolver,
    scan_est: &[f64],
) -> Vec<PlannedJoin> {
    let select = input.select;
    let rels = input.rels;
    let mut cur_est = scan_est.first().copied().unwrap_or(0.0);
    let mut steps = Vec::with_capacity(select.joins.len());
    for (j, join) in select.joins.iter().enumerate() {
        let introduced = j + 1;
        let key = source_equi_key(join, introduced, resolver);
        let est = match key {
            Some(k) => join_estimate(
                cur_est,
                scan_est[introduced],
                &rels[k.left_rel],
                k.left_col,
                scan_est[k.left_rel],
                &rels[introduced],
                k.right_col,
                scan_est[introduced],
            ),
            // Nested loop / cross join: assume the constraint (if any)
            // keeps a third of the cross product.
            None => {
                let product = cur_est * scan_est[introduced];
                if join.constraint.is_some() {
                    product / 3.0
                } else {
                    product
                }
            }
        };
        // LEFT JOIN emits at least every left row.
        let est = if join.left { est.max(cur_est) } else { est };
        steps.push(PlannedJoin {
            rel: introduced,
            key,
            build_left: cur_est < scan_est[introduced],
            est_rows: est,
        });
        cur_est = est;
    }
    steps
}

/// Equi key of one source-order join, when its constraint is a
/// qualified two-column equality connecting the introduced relation to
/// an earlier one.
fn source_equi_key(
    join: &sb_sql::Join,
    introduced: usize,
    resolver: &dyn Resolver,
) -> Option<EdgeKey> {
    let Some(Expr::Binary {
        left,
        op: BinaryOp::Eq,
        right,
    }) = &join.constraint
    else {
        return None;
    };
    let (Expr::Column(a), Expr::Column(b)) = (left.as_ref(), right.as_ref()) else {
        return None;
    };
    if a.table.is_none() || b.table.is_none() {
        return None;
    }
    let (Resolution::Col { rel: ra, col: ca }, Resolution::Col { rel: rb, col: cb }) =
        (resolver.resolve(a), resolver.resolve(b))
    else {
        return None;
    };
    if ra == introduced && rb < introduced {
        Some(EdgeKey {
            left_rel: rb,
            left_col: cb,
            right_col: ca,
        })
    } else if rb == introduced && ra < introduced {
        Some(EdgeKey {
            left_rel: ra,
            left_col: ca,
            right_col: cb,
        })
    } else {
        None
    }
}

/// Index of `orig_col` within a pruned layout: the position of the
/// original column index in the keep list (identity when nothing was
/// pruned). The executor uses this to translate planner coordinates
/// after narrowing rows.
pub fn pruned_index(keep: &Option<Vec<usize>>, orig_col: usize) -> usize {
    match keep {
        None => orig_col,
        Some(kept) => kept
            .iter()
            .position(|&c| c == orig_col)
            .expect("planner keeps every referenced column"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ColMeta;
    use sb_sql::{parse, SetExpr};

    /// Resolver over the rel metas themselves: qualified by binding,
    /// bare by unique column name.
    struct MetaResolver<'a>(&'a [RelMeta]);

    impl Resolver for MetaResolver<'_> {
        fn resolve(&self, c: &sb_sql::ColumnRef) -> Resolution {
            match &c.table {
                Some(q) => {
                    let rel = self
                        .0
                        .iter()
                        .position(|r| r.binding.eq_ignore_ascii_case(q));
                    let Some(rel) = rel else {
                        return Resolution::Unknown;
                    };
                    match self.0[rel]
                        .columns
                        .iter()
                        .position(|col| col.name.eq_ignore_ascii_case(&c.column))
                    {
                        Some(col) => Resolution::Col { rel, col },
                        None => Resolution::Unknown,
                    }
                }
                None => {
                    let mut found = None;
                    for (rel, r) in self.0.iter().enumerate() {
                        if let Some(col) = r
                            .columns
                            .iter()
                            .position(|col| col.name.eq_ignore_ascii_case(&c.column))
                        {
                            if found.is_some() {
                                return Resolution::Ambiguous;
                            }
                            found = Some(Resolution::Col { rel, col });
                        }
                    }
                    found.unwrap_or(Resolution::Unknown)
                }
            }
        }
    }

    fn meta(binding: &str, cols: &[(&str, bool)], rows: usize) -> RelMeta {
        RelMeta {
            binding: binding.into(),
            table: Some(binding.into()),
            columns: cols
                .iter()
                .map(|(n, u)| ColMeta {
                    name: (*n).into(),
                    unique: *u,
                })
                .collect(),
            rows,
        }
    }

    fn plan<'a>(
        sql: &'a str,
        parsed: &'a sb_sql::Query,
        rels: &'a [RelMeta],
        opts: OptOptions,
    ) -> PlannedSelect<'a> {
        let _ = sql;
        let SetExpr::Select(select) = &parsed.body else {
            panic!("select expected")
        };
        let input = PlanInput {
            select,
            order_by: &parsed.order_by,
            limit: parsed.limit,
            rels,
            opts,
        };
        plan_select(&input, &MetaResolver(rels))
    }

    #[test]
    fn small_filtered_relation_is_scanned_first() {
        // b (10 rows, heavily filtered) should start; a (100k) and the
        // 1k-row c follow by estimated cardinality.
        let rels = vec![
            meta("a", &[("id", true), ("b_id", false)], 100_000),
            meta("b", &[("id", true), ("kind", false)], 10),
            meta("c", &[("id", true), ("a_id", false)], 1_000),
        ];
        let sql = "SELECT a.id FROM a JOIN b ON a.b_id = b.id \
                   JOIN c ON c.a_id = a.id WHERE b.kind = 'x'";
        let parsed = parse(sql).unwrap();
        let p = plan(sql, &parsed, &rels, OptOptions::default());
        assert!(p.reordered);
        assert_eq!(p.order[0], 1, "starts from the filtered 10-row b");
        assert_eq!(p.steps.len(), 2);
        assert!(p.steps.iter().all(|s| s.key.is_some()));
        // Joined relations follow: a (via b) then c (via a).
        assert_eq!(p.order, vec![1, 0, 2]);
    }

    #[test]
    fn left_join_and_bare_columns_block_reordering() {
        let rels = vec![
            meta("a", &[("id", true)], 10),
            meta("b", &[("a_id", false)], 1000),
            meta("c", &[("b_id", false)], 5),
        ];
        for sql in [
            "SELECT a.id FROM a LEFT JOIN b ON b.a_id = a.id JOIN c ON c.b_id = b.a_id",
            "SELECT a.id FROM a JOIN b ON a_id = a.id JOIN c ON c.b_id = b.a_id",
        ] {
            let parsed = parse(sql).unwrap();
            let p = plan(sql, &parsed, &rels, OptOptions::default());
            assert!(!p.reordered, "{sql}");
            assert_eq!(p.order, vec![0, 1, 2]);
        }
    }

    #[test]
    fn duplicate_bindings_block_reordering() {
        let rels = vec![
            meta("t", &[("id", true)], 10),
            meta("u", &[("t_id", false)], 1000),
            meta("t", &[("id", true)], 10),
        ];
        let sql = "SELECT u.t_id FROM t JOIN u ON u.t_id = t.id JOIN t ON u.t_id = t.id";
        let parsed = parse(sql).unwrap();
        let p = plan(sql, &parsed, &rels, OptOptions::default());
        assert!(!p.reordered);
    }

    #[test]
    fn pruning_keeps_only_referenced_names() {
        let rels = vec![
            meta("a", &[("id", true), ("b_id", false), ("junk", false)], 10),
            meta("b", &[("id", true), ("wide1", false), ("wide2", false)], 10),
        ];
        let sql = "SELECT a.id FROM a JOIN b ON a.b_id = b.id";
        let parsed = parse(sql).unwrap();
        let p = plan(sql, &parsed, &rels, OptOptions::default());
        assert_eq!(p.keep[0], Some(vec![0, 1]), "junk pruned from a");
        assert_eq!(p.keep[1], Some(vec![0]), "wide1/wide2 pruned from b");
        assert_eq!(pruned_index(&p.keep[0], 1), 1);
        assert_eq!(pruned_index(&p.keep[1], 0), 0);
        // Wildcard disables pruning entirely.
        let sql = "SELECT * FROM a JOIN b ON a.b_id = b.id";
        let parsed = parse(sql).unwrap();
        let p = plan(sql, &parsed, &rels, OptOptions::default());
        assert_eq!(p.keep, vec![None, None]);
    }

    #[test]
    fn order_by_alias_shadowing_name_is_kept() {
        // ORDER BY w resolves to b.w in the full scope; pruning b.w
        // would silently switch it to the projection alias fallback.
        let rels = vec![
            meta("a", &[("id", true), ("b_id", false)], 10),
            meta("b", &[("id", true), ("w", false)], 10),
        ];
        let sql = "SELECT a.id AS w FROM a JOIN b ON a.b_id = b.id ORDER BY w";
        let parsed = parse(sql).unwrap();
        let p = plan(sql, &parsed, &rels, OptOptions::default());
        assert_eq!(p.keep[1], None, "w is referenced via ORDER BY");
    }

    #[test]
    fn build_sides_follow_estimates() {
        let rels = vec![
            meta("small", &[("id", true)], 3),
            meta("big", &[("small_id", false)], 3000),
        ];
        let sql = "SELECT small.id FROM small JOIN big ON big.small_id = small.id";
        let parsed = parse(sql).unwrap();
        let p = plan(sql, &parsed, &rels, OptOptions::default());
        assert!(!p.reordered, "two relations never reorder");
        assert_eq!(p.build_sides, vec![true], "build on the 3-row side");
        let no_build = OptOptions {
            choose_build: false,
            ..OptOptions::default()
        };
        let p = plan(sql, &parsed, &rels, no_build);
        assert_eq!(p.build_sides, vec![false]);
    }
}
