//! # sb-opt — logical plans and cost-based rewrites
//!
//! A small query optimizer sitting between the `sb-sql` AST and the
//! `sb-engine` executor. One `SELECT` is lowered into a logical plan
//! (scans, joins, filter, aggregate, sort/top-K, limit), a sequence of
//! rule-based rewrites runs over it, and the surviving decisions are
//! handed back to the executor as a [`PlannedSelect`]:
//!
//! - **Predicate pushdown** ([`assign_pushdown`]): WHERE conjuncts that
//!   reference a single relation move into that relation's scan. The
//!   rule reproduces the executor's historical `assign_conjuncts`
//!   semantics exactly — subquery conjuncts, unresolvable or ambiguous
//!   references, and predicates over the nullable side of a LEFT JOIN
//!   all stay in the residual filter, so error behavior and LEFT JOIN
//!   padding are unchanged.
//! - **Projection pushdown** ([`PlannedSelect::keep`]): columns never
//!   referenced by any expression of the statement are dropped at scan
//!   time, shrinking every row the join pipeline copies.
//! - **Join reordering** ([`PlannedSelect::order`]): for inner
//!   equi-join chains, a greedy bottom-up search over the join graph
//!   picks the cheapest execution order under the cost model; the
//!   executor restores source row order afterwards, so reordering is
//!   observationally invisible.
//! - **Build-side selection** ([`PlannedJoin::build_left`]): each hash
//!   join builds its table on the side the cost model estimates
//!   smaller.
//! - **Top-K fusion**: `ORDER BY` + `LIMIT` is planned as a single
//!   bounded top-K operator rather than a full sort followed by a
//!   truncation.
//!
//! The crate depends only on `sb-sql`. Everything it must know about
//! the physical world arrives through [`RelMeta`] (per-relation
//! cardinalities and uniqueness, supplied by the engine from schema
//! primary keys and live row counts) and a name-resolution callback
//! ([`Resolver`], implemented by the engine's `Scope`) — so resolution
//! semantics, including ambiguity errors, have exactly one home.
//!
//! [`explain::render`] turns a plan into the indented EXPLAIN text that
//! the plan-snapshot goldens under `tests/goldens/plans/` pin.

pub mod cache;
pub mod columnar;
pub mod cost;
pub mod explain;
pub mod plan;
pub mod pushdown;

pub use cache::OwnedPlan;
pub use columnar::{columnar_eligible, parallel_eligible};
pub use explain::{build_plan, build_plan_annotated, render, PlanAnnotator, PlanNode};
pub use plan::{plan_select, EdgeKey, PlanInput, PlannedJoin, PlannedSelect};
pub use pushdown::{assign_pushdown, collect_columns, has_subquery, split_conjuncts};

use sb_sql::ColumnRef;

/// What the planner knows about one column of a FROM relation.
#[derive(Debug, Clone)]
pub struct ColMeta {
    /// Column name as it appears in the relation.
    pub name: String,
    /// Whether values are unique across the relation (base-table primary
    /// keys). Drives distinct-count estimates in the cost model.
    pub unique: bool,
}

/// What the planner knows about one FROM relation: enough to estimate
/// cardinalities, never any row data.
#[derive(Debug, Clone)]
pub struct RelMeta {
    /// Binding name (alias or table name).
    pub binding: String,
    /// Base table name, `None` for derived tables.
    pub table: Option<String>,
    /// Columns in relation order.
    pub columns: Vec<ColMeta>,
    /// Actual row count: base-table size, or the materialized size of a
    /// derived table (which the executor has already run).
    pub rows: usize,
}

/// Which rewrites are enabled. The engine derives this from its
/// `ExecOptions`, so every fuzz configuration exercises a different
/// slice of the rule set.
#[derive(Debug, Clone, Copy)]
pub struct OptOptions {
    /// Push single-relation WHERE conjuncts into scans.
    pub pushdown: bool,
    /// Reorder inner equi-join chains by estimated cost.
    pub reorder: bool,
    /// Choose hash-join build sides from cardinality estimates.
    pub choose_build: bool,
    /// Whether the executor will run equi-joins as hash joins at all
    /// (false under a forced nested-loop strategy); gates reordering
    /// and EXPLAIN's operator labels.
    pub hash_joins: bool,
    /// Drop never-referenced columns at scan time.
    pub prune: bool,
    /// Whether the executor will attempt vectorized columnar execution
    /// for eligible statements (see [`columnar_eligible`]); gates
    /// EXPLAIN's `Execute engine=` label.
    pub columnar: bool,
    /// Whether the executor will run eligible columnar stages
    /// morsel-parallel (see [`parallel_eligible`]); gates EXPLAIN's
    /// `parallel=` root annotation. Deliberately a bool, never a worker
    /// count: plans (and their goldens) must not depend on how many
    /// threads the current machine happens to have.
    pub parallel: bool,
}

impl Default for OptOptions {
    fn default() -> Self {
        OptOptions {
            pushdown: true,
            reorder: true,
            choose_build: true,
            hash_joins: true,
            prune: true,
            columnar: true,
            parallel: true,
        }
    }
}

/// Result of resolving one column reference against the statement's
/// full scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Resolved to column `col` of relation `rel` (both zero-based,
    /// relation in FROM/JOIN order, column in relation order).
    Col { rel: usize, col: usize },
    /// The bare name matched columns in more than one relation — an
    /// `AmbiguousColumn` error at evaluation time.
    Ambiguous,
    /// Unknown table or column — an error at evaluation time.
    Unknown,
}

/// Name resolution callback. Implemented by the engine on top of its
/// `Scope`, so the planner inherits the executor's resolution semantics
/// (case folding, first-binding wins, ambiguity detection) verbatim
/// instead of re-implementing them.
pub trait Resolver {
    /// Resolve a (possibly qualified) column reference.
    fn resolve(&self, col: &ColumnRef) -> Resolution;
}
