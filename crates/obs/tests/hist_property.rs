//! Property tests for `HistStat`: K-shard merges are order-independent
//! and quantile estimates stay within the documented error bound of an
//! exact sorted oracle, on randomized data.
//!
//! Dependency-free randomness: a splitmix64 generator with fixed seeds,
//! so failures reproduce exactly.

use sb_obs::HistStat;

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in one of several regimes a latency histogram sees:
    /// zeros, small exact-bucket integers, mid-range, and heavy tail —
    /// all within the documented 2^40 bucketing range (beyond it the
    /// last bucket saturates and the error bound intentionally lapses).
    fn value(&mut self) -> f64 {
        match self.next() % 10 {
            0 => 0.0,
            1..=3 => (self.next() % 8) as f64,
            4..=7 => (self.next() % 10_000) as f64,
            8 => (self.next() % 10_000_000) as f64,
            _ => (self.next() % (1 << 40)) as f64,
        }
    }
}

/// The documented bound: the estimate is the upper edge of the bucket
/// holding the order statistic, so it never undershoots the exact value
/// and overshoots by at most one bucket width (≤ 1/8 octave, i.e.
/// 15% covers it with margin), clamped into `[min, max]`.
fn assert_quantile_bound(h: &HistStat, sorted: &[f64], q: f64) {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    let exact = sorted[rank - 1];
    let est = h.quantile(q);
    assert!(
        est >= exact,
        "q={q}: estimate {est} undershoots exact {exact}"
    );
    let ceiling = (exact * 1.15).max(exact + 1.0).min(h.max);
    assert!(
        est <= ceiling,
        "q={q}: estimate {est} exceeds bound {ceiling} (exact {exact})"
    );
}

#[test]
fn k_shard_merge_is_order_independent() {
    for seed in 0..20u64 {
        let mut rng = SplitMix64(0xD1CE ^ seed);
        let k = 2 + (rng.next() % 7) as usize;
        let n = 50 + (rng.next() % 500) as usize;
        let values: Vec<f64> = (0..n).map(|_| rng.value()).collect();

        // Shard round-robin, then merge in K! / several permuted orders.
        let mut shards = vec![HistStat::default(); k];
        for (i, v) in values.iter().enumerate() {
            shards[i % k].observe(*v);
        }
        let merge_in_order = |order: &[usize]| {
            let mut acc = HistStat::default();
            for &i in order {
                acc.merge(&shards[i]);
            }
            acc
        };
        let forward: Vec<usize> = (0..k).collect();
        let reverse: Vec<usize> = (0..k).rev().collect();
        let mut shuffled = forward.clone();
        for i in (1..k).rev() {
            shuffled.swap(i, (rng.next() % (i as u64 + 1)) as usize);
        }
        let a = merge_in_order(&forward);
        let b = merge_in_order(&reverse);
        let c = merge_in_order(&shuffled);
        assert_eq!(a, b, "seed {seed}: forward != reverse merge");
        assert_eq!(a, c, "seed {seed}: forward != shuffled merge");

        // Pairwise tree merge agrees with the sequential fold too.
        let mut tree: Vec<HistStat> = shards.clone();
        while tree.len() > 1 {
            let mut nxt = Vec::with_capacity(tree.len().div_ceil(2));
            for pair in tree.chunks(2) {
                let mut m = pair[0];
                if let Some(r) = pair.get(1) {
                    m.merge(r);
                }
                nxt.push(m);
            }
            tree = nxt;
        }
        assert_eq!(a, tree[0], "seed {seed}: tree merge differs");

        // And the merged shards match observing everything directly.
        let mut direct = HistStat::default();
        for v in &values {
            direct.observe(*v);
        }
        assert_eq!(a, direct, "seed {seed}: merge != direct observation");
    }
}

#[test]
fn quantiles_stay_within_documented_bounds_of_exact_oracle() {
    for seed in 0..20u64 {
        let mut rng = SplitMix64(0xBEEF ^ seed.wrapping_mul(0x9E3779B97F4A7C15));
        let n = 100 + (rng.next() % 2000) as usize;
        let values: Vec<f64> = (0..n).map(|_| rng.value()).collect();
        let mut h = HistStat::default();
        for v in &values {
            h.observe(*v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());

        assert_eq!(h.quantile(0.0), sorted[0], "seed {seed}: q=0 is min");
        assert_eq!(h.quantile(1.0), sorted[n - 1], "seed {seed}: q=1 is max");
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999] {
            assert_quantile_bound(&h, &sorted, q);
        }
    }
}

#[test]
fn merged_shards_answer_the_same_quantiles_as_one_histogram() {
    let mut rng = SplitMix64(0x5EED);
    let values: Vec<f64> = (0..3000).map(|_| rng.value()).collect();
    let mut whole = HistStat::default();
    let mut shards = vec![HistStat::default(); 5];
    for (i, v) in values.iter().enumerate() {
        whole.observe(*v);
        shards[i % 5].observe(*v);
    }
    let mut merged = HistStat::default();
    for s in &shards {
        merged.merge(&s.clone());
    }
    for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
        assert_eq!(
            whole.quantile(q),
            merged.quantile(q),
            "q={q}: merged shards disagree with direct histogram"
        );
    }
}
