//! Minimal JSON utilities for the observability layer: string escaping,
//! float formatting, and a strict well-formedness validator.
//!
//! The validator exists so tooling (the `profile_run` binary, the
//! `scripts/check.sh` smoke stage) can assert that every emitted run
//! report is parseable JSON without pulling a parser dependency into a
//! shim-style crate. It checks *syntax* (RFC 8259 grammar, UTF-8 comes
//! free from `&str`), not any schema.

/// Escape a string for embedding inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a finite float as a JSON number (JSON has no NaN/Infinity; they
/// render as 0 with a debug assertion, since no deterministic metric
/// should produce them).
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        debug_assert!(false, "non-finite metric value {v}");
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Validate that `s` is one well-formed JSON value (object, array,
/// string, number, boolean or null) with nothing but whitespace around
/// it. Returns a position-annotated error otherwise.
pub fn validate(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(())
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.numeric(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn numeric(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected fraction digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected exponent digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e3",
            "\"a \\\"quoted\\\" string\"",
            "{\"a\": [1, 2, {\"b\": null}], \"c\": \"x\"}",
            "  {\n  \"k\": 0.5\n}  ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "{\"a\": 1,}",
            "[1, 2",
            "\"unterminated",
            "01",
            "1.",
            "{\"a\" 1}",
            "{} extra",
            "{\"a\": \u{0007}\"x\"}",
        ] {
            assert!(validate(bad).is_err(), "accepted malformed: {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips_through_validate() {
        let nasty = "line\nbreak \"quote\" back\\slash tab\t ctrl\u{1} unicode é";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        validate(&doc).expect("escaped string embeds cleanly");
    }

    #[test]
    fn number_formats_json_safely() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(-2.5), "-2.5");
        assert!(validate(&number(0.1)).is_ok());
    }
}
