//! # sb-obs — zero-overhead structured observability
//!
//! A dependency-free (shim-style, like `shims/`) tracing layer for the
//! whole workspace: RAII [`span`]s with monotonic timers, named
//! [`count`]ers and [`observe`]d histograms, thread-local collectors
//! that merge deterministically across the rayon shim's worker threads,
//! and a [`Report`] that renders both a human summary and a
//! machine-readable JSON run report.
//!
//! ## The determinism contract
//!
//! - **Counters and histogram value statistics are deterministic**: for
//!   a fixed workload they hold the same values at any thread count and
//!   under any scheduling, because merging is commutative addition /
//!   min / max and rendering sorts by name.
//! - **Durations are wall-clock** and therefore *not* deterministic.
//!   [`Report::to_json`] takes `include_timings`; every artifact that is
//!   golden-compared must be rendered with `include_timings = false`,
//!   which reduces spans to their (deterministic) call counts.
//! - **Instrumentation never changes behavior**: an instrumented
//!   function returns byte-identical results whether `SB_OBS` is `off`,
//!   `summary` or `json`. The golden-snapshot and engine-equivalence
//!   tests assert this.
//!
//! ## The `SB_OBS` environment variable
//!
//! | value | effect |
//! |---|---|
//! | unset / `off` / `0` | everything disabled; instrumentation is a single relaxed atomic load |
//! | `summary` / `1` | collect; [`progress`] lines and the final [`emit_stderr`] summary go to stderr |
//! | `json` | collect; progress events and the final report are emitted as JSON lines on stderr |
//!
//! The variable is read once, on first use; tests and tools can force a
//! mode with [`set_mode`].
//!
//! ## Zero overhead when off
//!
//! With `SB_OBS=off` every entry point short-circuits on one
//! `AtomicU8` relaxed load before touching thread-local storage, and
//! [`span`] does not even read the clock. Hot loops are instrumented in
//! *batches* (one counter add per scan / join / group stage, computed
//! from lengths the code already knows) rather than per row, so the
//! enabled cost stays proportional to the number of operators, not the
//! number of rows.

pub mod json;
pub mod profile;

pub use profile::{
    BlockId, BlockSnapshot, FixedOp, OpSnapshot, OpStats, ProfileSnapshot, QueryProfile,
};

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Observability mode, from `SB_OBS` (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Collect nothing, emit nothing (the default).
    Off,
    /// Collect; emit human-readable summaries to stderr.
    Summary,
    /// Collect; emit JSON lines to stderr.
    Json,
}

const MODE_UNINIT: u8 = 0;
const MODE_OFF: u8 = 1;
const MODE_SUMMARY: u8 = 2;
const MODE_JSON: u8 = 3;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNINIT);

fn mode_from_env() -> u8 {
    match std::env::var("SB_OBS").as_deref() {
        Ok("summary") | Ok("1") => MODE_SUMMARY,
        Ok("json") => MODE_JSON,
        _ => MODE_OFF,
    }
}

/// Make every rayon-shim worker thread flush its thread-local collector
/// before the scope that spawned it unblocks. `std::thread::scope` may
/// return before worker TLS destructors run, so the Drop-based flush
/// alone can lose a worker's deltas to a snapshot taken right after the
/// parallel call; the exit hook runs on the worker, inside the scope,
/// which closes that window. Installed the first time a mode is
/// resolved or forced — i.e. before any collection can happen.
fn install_worker_flush() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| rayon::set_worker_exit_hook(flush));
}

/// The active mode, resolving `SB_OBS` on first use.
pub fn mode() -> Mode {
    match MODE.load(Ordering::Relaxed) {
        MODE_UNINIT => {
            install_worker_flush();
            let m = mode_from_env();
            // Racing initializers compute the same value; last store wins
            // harmlessly.
            MODE.store(m, Ordering::Relaxed);
            match m {
                MODE_SUMMARY => Mode::Summary,
                MODE_JSON => Mode::Json,
                _ => Mode::Off,
            }
        }
        MODE_SUMMARY => Mode::Summary,
        MODE_JSON => Mode::Json,
        _ => Mode::Off,
    }
}

/// Force a mode, overriding `SB_OBS`. Tests use this to compare
/// obs-on/obs-off outputs within one process.
pub fn set_mode(m: Mode) {
    install_worker_flush();
    let v = match m {
        Mode::Off => MODE_OFF,
        Mode::Summary => MODE_SUMMARY,
        Mode::Json => MODE_JSON,
    };
    MODE.store(v, Ordering::Relaxed);
}

/// Whether collection is active. This is the no-op fast path: one
/// relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    // Fast path for the common steady state; falls back to the
    // env-resolving `mode()` only on the very first call.
    match MODE.load(Ordering::Relaxed) {
        MODE_OFF => false,
        MODE_UNINIT => mode() != Mode::Off,
        _ => true,
    }
}

/// Aggregate statistics for one named span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Times the span was entered (deterministic).
    pub count: u64,
    /// Total wall-clock nanoseconds inside the span (not deterministic).
    pub total_ns: u64,
}

/// Number of log-linear histogram buckets (see [`bucket_of`]): exact
/// buckets for values 0–7, then 8 linear subdivisions per power of two
/// up to 2^40 — sub-7% relative quantile error over the whole range a
/// microsecond latency can realistically occupy (2^40 µs ≈ 12 days).
const HIST_BUCKETS: usize = 8 + 37 * 8;

/// Bucket index of a (non-negative) observation. Negative and NaN
/// values land in bucket 0; values at or above 2^40 saturate into the
/// last bucket. Pure integer math, so bucketing is deterministic.
fn bucket_of(v: f64) -> usize {
    let x = if v.is_finite() && v > 0.0 {
        v.min(u64::MAX as f64) as u64
    } else {
        0
    };
    if x < 8 {
        return x as usize;
    }
    let o = (63 - x.leading_zeros() as usize).min(39);
    let sub = ((x >> (o - 3)) & 7) as usize;
    8 + (o - 3) * 8 + sub
}

/// Upper edge of a bucket: the largest integer value that maps to it.
/// Quantiles report this edge (clamped to the observed min/max), so an
/// estimate never undershoots the true order statistic's bucket.
fn bucket_upper(b: usize) -> f64 {
    if b < 8 {
        return b as f64;
    }
    let o = 3 + (b - 8) / 8;
    let sub = ((b - 8) % 8) as u64;
    (((sub + 1) << (o - 3)) - 1 + (1u64 << o)) as f64
}

/// Aggregate statistics for one named histogram: exact count / sum /
/// min / max plus log-linear bucket counts for quantile estimation
/// ([`HistStat::quantile`]). Everything is commutative under
/// [`HistStat::merge`], so histogram statistics are deterministic at
/// any thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistStat {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Log-linear bucket counts (see [`bucket_of`]).
    buckets: [u64; HIST_BUCKETS],
}

impl Default for HistStat {
    fn default() -> Self {
        HistStat {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl HistStat {
    /// Record one observation. Public so consumers that need *local*
    /// histograms (e.g. the load generator's per-error-code latency
    /// breakdown, whose names are dynamic) can reuse the bucketing and
    /// merge machinery outside the named global registry.
    pub fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        self.buckets[bucket_of(v)] += 1;
    }

    /// Fold another shard into this one. Commutative and associative,
    /// so K-shard merges are order-independent (property-tested in
    /// `tests/hist_property.rs`).
    pub fn merge(&mut self, other: &HistStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) of the observed values:
    /// the upper edge of the bucket holding the ⌈q·count⌉-th smallest
    /// observation, clamped into `[min, max]`. Relative error is
    /// bounded by the bucket width (≤ 1/8 of a power of two); `q = 0`
    /// returns `min` and `q = 1` returns `max` exactly. Returns 0 for
    /// an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(b).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// One collector's worth of metrics. Used both per-thread and as the
/// global merge target.
#[derive(Default)]
struct Registry {
    counters: HashMap<&'static str, u64>,
    spans: HashMap<&'static str, SpanStat>,
    hists: HashMap<&'static str, HistStat>,
}

impl Registry {
    fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.spans.is_empty() && self.hists.is_empty()
    }

    fn merge_into(&mut self, global: &mut Registry) {
        for (name, v) in self.counters.drain() {
            *global.counters.entry(name).or_default() += v;
        }
        for (name, s) in self.spans.drain() {
            let g = global.spans.entry(name).or_default();
            g.count += s.count;
            g.total_ns += s.total_ns;
        }
        for (name, h) in self.hists.drain() {
            global.hists.entry(name).or_default().merge(&h);
        }
    }
}

static GLOBAL: Mutex<Option<Registry>> = Mutex::new(None);

fn with_global(f: impl FnOnce(&mut Registry)) {
    let mut guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    f(guard.get_or_insert_with(Registry::default));
}

/// Per-thread collector; merges itself into the global registry when the
/// thread exits. The TLS destructor alone is a backstop, not a
/// synchronization point: `std::thread::scope` may unblock before it
/// runs. Rayon-shim workers therefore [`flush`] through the shim's
/// worker-exit hook (see `install_worker_flush`) before their scope
/// returns; threads spawned by any other means must call [`flush`]
/// before the dispatching thread snapshots, or accept that their deltas
/// land at thread teardown.
struct LocalCollector(Registry);

impl Drop for LocalCollector {
    fn drop(&mut self) {
        if !self.0.is_empty() {
            with_global(|g| self.0.merge_into(g));
        }
    }
}

thread_local! {
    static LOCAL: RefCell<LocalCollector> = RefCell::new(LocalCollector(Registry::default()));
}

fn with_local(f: impl FnOnce(&mut Registry)) {
    // During thread teardown the TLS slot may already be gone; fall back
    // to merging straight into the global registry.
    let mut f = Some(f);
    let _ = LOCAL.try_with(|l| {
        (f.take().expect("applied once"))(&mut l.borrow_mut().0);
    });
    if let Some(f) = f {
        with_global(f);
    }
}

/// Add `n` to the named counter. No-op when disabled.
#[inline]
pub fn count(name: &'static str, n: u64) {
    if !enabled() || n == 0 {
        return;
    }
    with_local(|r| *r.counters.entry(name).or_default() += n);
}

/// Record one observation into the named histogram. No-op when disabled.
#[inline]
pub fn observe(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    with_local(|r| r.hists.entry(name).or_default().observe(value));
}

/// An RAII span: construction (via [`span`]) reads the monotonic clock,
/// drop records the elapsed time under the span's name. A disabled span
/// holds nothing and does nothing.
pub struct Span {
    active: Option<(&'static str, Instant)>,
}

impl Span {
    /// Span call counts are deterministic; expose the name for tests.
    pub fn name(&self) -> Option<&'static str> {
        self.active.map(|(n, _)| n)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, start)) = self.active.take() {
            let elapsed = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            with_local(|r| {
                let s = r.spans.entry(name).or_default();
                s.count += 1;
                s.total_ns += elapsed;
            });
        }
    }
}

/// Enter a named span; the returned guard records the duration on drop.
#[inline]
pub fn span(name: &'static str) -> Span {
    Span {
        active: enabled().then(|| (name, Instant::now())),
    }
}

/// Emit a structured progress event. Silent when off; a readable
/// `[sb-obs] scope: message` stderr line under `summary`; a JSON line
/// under `json`. Replaces ad-hoc `eprintln!` chatter in long-running
/// drivers.
pub fn progress(scope: &str, message: &str) {
    match mode() {
        Mode::Off => {}
        Mode::Summary => eprintln!("[sb-obs] {scope}: {message}"),
        Mode::Json => eprintln!(
            "{{\"event\":\"progress\",\"scope\":\"{}\",\"message\":\"{}\"}}",
            json::escape(scope),
            json::escape(message)
        ),
    }
}

/// Merge the calling thread's collector into the global registry.
/// Worker threads flush automatically on exit; the main thread must
/// flush (or call [`snapshot`], which flushes) before rendering.
pub fn flush() {
    let _ = LOCAL.try_with(|l| {
        let local = &mut l.borrow_mut().0;
        if !local.is_empty() {
            with_global(|g| local.merge_into(g));
        }
    });
}

/// Clear all collected metrics (calling thread's collector and the
/// global registry). Call between runs when profiling several workloads
/// from one process; concurrent workers must be quiescent.
pub fn reset() {
    let _ = LOCAL.try_with(|l| l.borrow_mut().0 = Registry::default());
    let mut guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    *guard = None;
}

/// An immutable, name-sorted view of everything collected so far.
/// Flushes the calling thread first.
pub fn snapshot() -> Report {
    flush();
    let guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut report = Report::default();
    if let Some(reg) = guard.as_ref() {
        report.counters = reg
            .counters
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect();
        report.spans = reg.spans.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        report.hists = reg.hists.iter().map(|(k, v)| (k.to_string(), *v)).collect();
    }
    report.counters.sort_by(|a, b| a.0.cmp(&b.0));
    report.spans.sort_by(|a, b| a.0.cmp(&b.0));
    report.hists.sort_by(|a, b| a.0.cmp(&b.0));
    report
}

/// A rendered-out collection snapshot: sorted, self-contained, cheap to
/// clone. Produced by [`snapshot`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// `(name, total)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, stat)` pairs, sorted by name.
    pub spans: Vec<(String, SpanStat)>,
    /// `(name, stat)` pairs, sorted by name.
    pub hists: Vec<(String, HistStat)>,
}

impl Report {
    /// Whether nothing at all was collected.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.spans.is_empty() && self.hists.is_empty()
    }

    /// The value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// The stats of a span, when recorded.
    pub fn span(&self, name: &str) -> Option<SpanStat> {
        self.spans.iter().find(|(n, _)| n == name).map(|(_, s)| *s)
    }

    /// Render as JSON. With `include_timings = false` the output is
    /// fully deterministic for a fixed workload: spans reduce to their
    /// call counts and no wall-clock field is emitted — this is the
    /// form embedded in golden-compared artifacts.
    pub fn to_json(&self, include_timings: bool) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {v}", json::escape(name));
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"spans\": {");
        for (i, (name, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}",
                json::escape(name),
                s.count
            );
            if include_timings {
                let _ = write!(out, ", \"total_ms\": {:.3}", s.total_ns as f64 / 1e6);
            }
            out.push('}');
        }
        out.push_str(if self.spans.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}}",
                json::escape(name),
                h.count,
                json::number(h.sum),
                json::number(h.min),
                json::number(h.max)
            );
        }
        out.push_str(if self.hists.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });
        out.push('}');
        out
    }

    /// Render the human-readable summary (the `SB_OBS=summary` form).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("[sb-obs] nothing collected\n");
            return out;
        }
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.spans.iter().map(|(n, _)| n.len()))
            .chain(self.hists.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        if !self.counters.is_empty() {
            out.push_str("[sb-obs] counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:width$}  {v}");
            }
        }
        if !self.spans.is_empty() {
            out.push_str("[sb-obs] spans:\n");
            for (name, s) in &self.spans {
                let _ = writeln!(
                    out,
                    "  {name:width$}  {} call(s), {:.3} ms total",
                    s.count,
                    s.total_ns as f64 / 1e6
                );
            }
        }
        if !self.hists.is_empty() {
            out.push_str("[sb-obs] histograms:\n");
            for (name, h) in &self.hists {
                let mean = if h.count > 0 {
                    h.sum / h.count as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "  {name:width$}  n={} mean={mean:.3} min={} max={}",
                    h.count,
                    json::number(h.min),
                    json::number(h.max)
                );
            }
        }
        out
    }
}

/// Render everything collected so far to stderr, honoring the mode:
/// nothing when off, [`Report::summary`] under `summary`, full JSON
/// (including timings) under `json`. Binaries call this once before
/// exiting.
pub fn emit_stderr() {
    match mode() {
        Mode::Off => {}
        Mode::Summary => eprint!("{}", snapshot().summary()),
        Mode::Json => eprintln!("{}", snapshot().to_json(true)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry and mode are process-global, so these tests must not
    // run concurrently with each other.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn off_mode_collects_nothing() {
        let _g = locked();
        set_mode(Mode::Off);
        reset();
        count("x.counter", 5);
        observe("x.hist", 1.0);
        {
            let s = span("x.span");
            assert!(s.name().is_none());
        }
        assert!(snapshot().is_empty());
    }

    #[test]
    fn counters_and_spans_collect_when_enabled() {
        let _g = locked();
        set_mode(Mode::Summary);
        reset();
        count("t.alpha", 2);
        count("t.alpha", 3);
        count("t.beta", 1);
        observe("t.h", 2.0);
        observe("t.h", 4.0);
        {
            let _s = span("t.span");
        }
        let r = snapshot();
        assert_eq!(r.counter("t.alpha"), 5);
        assert_eq!(r.counter("t.beta"), 1);
        assert_eq!(r.counter("t.missing"), 0);
        let s = r.span("t.span").unwrap();
        assert_eq!(s.count, 1);
        let h = &r.hists.iter().find(|(n, _)| n == "t.h").unwrap().1;
        assert_eq!(h.count, 2);
        assert!((h.sum - 6.0).abs() < 1e-12);
        assert!((h.min - 2.0).abs() < 1e-12);
        assert!((h.max - 4.0).abs() < 1e-12);
        set_mode(Mode::Off);
        reset();
    }

    #[test]
    fn worker_threads_merge_deterministically() {
        let _g = locked();
        set_mode(Mode::Summary);
        reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        count("merge.n", 1);
                    }
                    drop(span("merge.span"));
                    // Raw scoped threads must flush explicitly: the
                    // scope can unblock before TLS destructors run, so
                    // the Drop-based merge is not ordered before the
                    // snapshot below. (Rayon-shim workers flush through
                    // the worker-exit hook automatically.)
                    flush();
                });
            }
        });
        let r = snapshot();
        assert_eq!(r.counter("merge.n"), 400);
        assert_eq!(r.span("merge.span").unwrap().count, 4);
        set_mode(Mode::Off);
        reset();
    }

    #[test]
    fn rayon_shim_workers_flush_before_the_dispatch_returns() {
        let _g = locked();
        set_mode(Mode::Summary);
        reset();
        // No explicit flush anywhere: the shim's worker-exit hook
        // (installed by set_mode above) must make every worker's deltas
        // visible by the time morsel_map returns.
        let (out, _stats) = rayon::morsel_map(8, 3, |m| {
            count("hook.n", 1);
            m
        });
        assert_eq!(out.len(), 8);
        assert_eq!(snapshot().counter("hook.n"), 8);
        set_mode(Mode::Off);
        reset();
    }

    #[test]
    fn json_report_is_valid_and_deterministic_form_has_no_timings() {
        let _g = locked();
        set_mode(Mode::Summary);
        reset();
        count("j.z", 1);
        count("j.a", 2);
        observe("j.h", 1.5);
        {
            let _s = span("j.span");
        }
        let r = snapshot();
        let deterministic = r.to_json(false);
        let timed = r.to_json(true);
        json::validate(&deterministic).expect("deterministic JSON parses");
        json::validate(&timed).expect("timed JSON parses");
        assert!(!deterministic.contains("total_ms"));
        assert!(timed.contains("total_ms"));
        // Sorted keys: "j.a" renders before "j.z".
        assert!(deterministic.find("j.a").unwrap() < deterministic.find("j.z").unwrap());
        assert!(!r.summary().is_empty());
        set_mode(Mode::Off);
        reset();
    }

    #[test]
    fn histogram_quantiles_bound_order_statistics() {
        let mut h = HistStat::default();
        for v in 1..=1000u64 {
            h.observe(v as f64);
        }
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 1000.0);
        // Log-linear buckets guarantee ≤ 1/8-octave relative error.
        for (q, exact) in [(0.5, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let est = h.quantile(q);
            assert!(
                est >= exact && est <= exact * 1.15,
                "q={q}: estimate {est} vs exact {exact}"
            );
        }
        // Merge is commutative: two shards merge to the same quantiles.
        let (mut a, mut b) = (HistStat::default(), HistStat::default());
        for v in 1..=1000u64 {
            if v % 2 == 0 {
                a.observe(v as f64);
            } else {
                b.observe(v as f64);
            }
        }
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.quantile(0.95), h.quantile(0.95));
        // Zero and tiny values land in the exact buckets.
        let mut z = HistStat::default();
        z.observe(0.0);
        z.observe(3.0);
        assert_eq!(z.quantile(0.5), 0.0);
        assert_eq!(z.quantile(1.0), 3.0);
    }

    #[test]
    fn empty_report_renders_valid_json() {
        let r = Report::default();
        json::validate(&r.to_json(false)).expect("empty report JSON parses");
        json::validate(&r.to_json(true)).expect("empty report JSON parses");
        assert!(r.summary().contains("nothing collected"));
    }
}
