//! Per-query operator profiles — the `EXPLAIN ANALYZE` substrate.
//!
//! The rest of `sb-obs` aggregates across a whole process run; this
//! module answers the question the global counters cannot: *where did
//! this one statement's time and rows go?* A [`QueryProfile`] is a
//! per-statement context the engine threads through execution by
//! reference (never thread-local state), holding a flat arena of
//! node-indexed atomic [`OpStats`] slots that operators write into.
//!
//! ## Layout: blocks and slots
//!
//! Execution of one statement visits one or more SELECT *blocks*: the
//! top-level select, each derived table in FROM/JOIN order (recursively)
//! and each leaf of a set operation, in left-to-right execution order.
//! Each block reserves a contiguous slot range:
//!
//! ```text
//! [scan 0 .. scan R-1][join step 0 .. join step R-2][filter][aggregate][distinct][order]
//! ```
//!
//! Scan slots are indexed by the relation's *source* position (FROM
//! first, then JOINs in order), join slots by execution step. Because
//! the planner may reorder joins, each join slot records which source
//! relation it introduced (`rhs`) so renderers and invariant checkers
//! can re-associate steps with plan nodes without re-deriving the join
//! order.
//!
//! ## Why per-statement contexts, not thread-local globals
//!
//! The process-global registry merges thread-local deltas at thread
//! exit — correct for run totals, useless for attributing rows to one
//! operator of one concurrent request. A `QueryProfile` is owned by the
//! caller that asked for it, costs one arena allocation, and is written
//! by whichever thread coordinates the operator (morsel workers hand
//! their counts back to the dispatching thread, which writes once per
//! operator), so profiles compose under `sb-serve` concurrency without
//! any global state. Profiling is strictly opt-in: when no profile is
//! attached the engine's hot paths skip every write behind an
//! `Option::is_some` check, and results are byte-identical either way.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Total slot capacity of one profile arena. A block with `R` relations
/// uses `2R - 1 + 4` slots, so this covers dozens of blocks per
/// statement — far beyond anything the dialect can express in practice.
/// When the arena is exhausted, later blocks degrade to unslotted
/// metadata (never a reallocation, never a panic).
pub const PROFILE_SLOT_CAP: usize = 128;

const NO_BASE: usize = usize::MAX;
const FIXED_OPS: usize = 4;

/// Fixed per-block operator slots that follow the scan and join ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixedOp {
    /// Residual (post-join) filter.
    Filter = 0,
    /// Grouped aggregation (including HAVING).
    Aggregate = 1,
    /// DISTINCT deduplication.
    Distinct = 2,
    /// Final ordering stage: Sort, TopK or bare Limit.
    Order = 3,
}

/// Atomic statistics for one operator instance. All counters saturate
/// at `u64::MAX` in theory and in practice never get near it; writes
/// use relaxed ordering because slots are only read after execution
/// completes (the caller owns the happens-before edge).
#[derive(Debug, Default)]
pub struct OpStats {
    touched: AtomicU64,
    rows_in: AtomicU64,
    rows_out: AtomicU64,
    batches: AtomicU64,
    /// Joins: build-side rows. Aggregates: groups created (pre-HAVING).
    aux1: AtomicU64,
    /// Joins: probe-side rows.
    aux2: AtomicU64,
    morsels: AtomicU64,
    steals: AtomicU64,
    elapsed_ns: AtomicU64,
    /// Source relation index + 1 of the left input (join step 0 only);
    /// 0 = none.
    lhs: AtomicU64,
    /// Source relation index + 1 of the relation this join step
    /// introduced; 0 = none.
    rhs: AtomicU64,
}

impl OpStats {
    /// Record input/output row counts and mark the operator as run.
    #[inline]
    pub fn rows(&self, rows_in: u64, rows_out: u64) {
        self.touched.store(1, Ordering::Relaxed);
        self.rows_in.fetch_add(rows_in, Ordering::Relaxed);
        self.rows_out.fetch_add(rows_out, Ordering::Relaxed);
    }

    /// Add processed batch/conjunct evaluations.
    #[inline]
    pub fn add_batches(&self, n: u64) {
        self.batches.fetch_add(n, Ordering::Relaxed);
    }

    /// Record hash-join build/probe cardinalities.
    #[inline]
    pub fn build_probe(&self, build: u64, probe: u64) {
        self.aux1.fetch_add(build, Ordering::Relaxed);
        self.aux2.fetch_add(probe, Ordering::Relaxed);
    }

    /// Record groups created by an aggregation (before HAVING).
    #[inline]
    pub fn groups(&self, n: u64) {
        self.aux1.fetch_add(n, Ordering::Relaxed);
    }

    /// Record morsel-parallel scheduling counts. `morsels` is
    /// deterministic for a fixed workload; `steals` is scheduling noise
    /// and is masked by deterministic renderings.
    #[inline]
    pub fn parallel(&self, morsels: u64, steals: u64) {
        self.morsels.fetch_add(morsels, Ordering::Relaxed);
        self.steals.fetch_add(steals, Ordering::Relaxed);
    }

    /// Add wall-clock time attributed to this operator.
    #[inline]
    pub fn elapsed(&self, ns: u64) {
        self.elapsed_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record which source relations fed a join step (see module docs).
    #[inline]
    pub fn link(&self, lhs: Option<usize>, rhs: usize) {
        if let Some(l) = lhs {
            self.lhs.store(l as u64 + 1, Ordering::Relaxed);
        }
        self.rhs.store(rhs as u64 + 1, Ordering::Relaxed);
    }

    fn reset(&self) {
        self.touched.store(0, Ordering::Relaxed);
        self.rows_in.store(0, Ordering::Relaxed);
        self.rows_out.store(0, Ordering::Relaxed);
        self.batches.store(0, Ordering::Relaxed);
        self.aux1.store(0, Ordering::Relaxed);
        self.aux2.store(0, Ordering::Relaxed);
        self.morsels.store(0, Ordering::Relaxed);
        self.steals.store(0, Ordering::Relaxed);
        self.elapsed_ns.store(0, Ordering::Relaxed);
        self.lhs.store(0, Ordering::Relaxed);
        self.rhs.store(0, Ordering::Relaxed);
    }

    fn snap(&self) -> Option<OpSnapshot> {
        if self.touched.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let link = |a: &AtomicU64| match a.load(Ordering::Relaxed) {
            0 => None,
            n => Some((n - 1) as usize),
        };
        Some(OpSnapshot {
            rows_in: self.rows_in.load(Ordering::Relaxed),
            rows_out: self.rows_out.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            build_rows: self.aux1.load(Ordering::Relaxed),
            probe_rows: self.aux2.load(Ordering::Relaxed),
            morsels: self.morsels.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            elapsed_ns: self.elapsed_ns.load(Ordering::Relaxed),
            lhs: link(&self.lhs),
            rhs: link(&self.rhs),
        })
    }
}

#[derive(Debug, Clone, Copy)]
struct BlockMeta {
    base: usize,
    scans: usize,
    columnar: bool,
    fallback: Option<&'static str>,
}

/// Handle to one SELECT block's slot range. `Copy` so the engine can
/// pass it down its call tree freely; all methods go through the owning
/// [`QueryProfile`].
#[derive(Debug, Clone, Copy)]
pub struct BlockId {
    idx: usize,
    base: usize,
    scans: usize,
}

impl BlockId {
    /// Number of scan slots (source relations) in this block.
    pub fn scans(&self) -> usize {
        self.scans
    }
}

/// A per-statement profile arena. See the module docs for layout and
/// design rationale.
#[derive(Debug)]
pub struct QueryProfile {
    slots: Box<[OpStats]>,
    next: AtomicUsize,
    blocks: Mutex<Vec<BlockMeta>>,
}

impl Default for QueryProfile {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryProfile {
    /// A fresh arena: one allocation, all slots zero.
    pub fn new() -> QueryProfile {
        QueryProfile {
            slots: (0..PROFILE_SLOT_CAP).map(|_| OpStats::default()).collect(),
            next: AtomicUsize::new(0),
            blocks: Mutex::new(Vec::new()),
        }
    }

    fn metas(&self) -> std::sync::MutexGuard<'_, Vec<BlockMeta>> {
        self.blocks.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Reserve the slot range for one SELECT block with `scans` source
    /// relations. Blocks must be begun in execution order (top-level
    /// select first, derived tables in FROM/JOIN order, set-operation
    /// leaves left to right) — renderers re-walk the statement in the
    /// same order to associate blocks with plan subtrees.
    pub fn begin_block(&self, scans: usize) -> BlockId {
        let need = scans + scans.saturating_sub(1) + FIXED_OPS;
        let at = self.next.fetch_add(need, Ordering::Relaxed);
        let base = if at + need <= self.slots.len() {
            at
        } else {
            NO_BASE
        };
        let mut metas = self.metas();
        metas.push(BlockMeta {
            base,
            scans,
            columnar: false,
            fallback: None,
        });
        BlockId {
            idx: metas.len() - 1,
            base,
            scans,
        }
    }

    fn slot(&self, b: BlockId, off: usize) -> Option<&OpStats> {
        if b.base == NO_BASE {
            return None;
        }
        self.slots.get(b.base + off)
    }

    /// The scan slot for source relation `rel`, when slotted.
    #[inline]
    pub fn scan(&self, b: BlockId, rel: usize) -> Option<&OpStats> {
        if rel >= b.scans {
            return None;
        }
        self.slot(b, rel)
    }

    /// The join slot for execution step `step`, when slotted.
    #[inline]
    pub fn join(&self, b: BlockId, step: usize) -> Option<&OpStats> {
        if step + 1 >= b.scans {
            return None;
        }
        self.slot(b, b.scans + step)
    }

    /// The fixed operator slot, when slotted.
    #[inline]
    pub fn fixed(&self, b: BlockId, op: FixedOp) -> Option<&OpStats> {
        self.slot(b, b.scans + b.scans.saturating_sub(1) + op as usize)
    }

    /// Mark which engine ran the block (`true` = columnar/batch).
    pub fn set_columnar(&self, b: BlockId, columnar: bool) {
        if let Some(m) = self.metas().get_mut(b.idx) {
            m.columnar = columnar;
        }
    }

    /// Record why the columnar engine fell back to the row engine for
    /// this block. The first recorded reason wins.
    pub fn set_fallback(&self, b: BlockId, reason: &'static str) {
        if let Some(m) = self.metas().get_mut(b.idx) {
            if m.fallback.is_none() {
                m.fallback = Some(reason);
            }
        }
    }

    /// Whether a fallback reason was recorded for the block.
    pub fn has_fallback(&self, b: BlockId) -> bool {
        self.metas()
            .get(b.idx)
            .is_some_and(|m| m.fallback.is_some())
    }

    /// Zero every operator slot of the block, keeping its metadata.
    /// Called when the columnar engine bails after partially recording a
    /// block, so the row-engine retry does not double-count.
    pub fn reset_block(&self, b: BlockId) {
        if b.base == NO_BASE {
            return;
        }
        let need = b.scans + b.scans.saturating_sub(1) + FIXED_OPS;
        for off in 0..need {
            if let Some(s) = self.slots.get(b.base + off) {
                s.reset();
            }
        }
        self.set_columnar(b, false);
    }

    /// An immutable copy of everything recorded so far.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let metas = self.metas().clone();
        let blocks = metas
            .iter()
            .map(|m| {
                let slotted = m.base != NO_BASE;
                let op = |off: usize| {
                    if slotted {
                        self.slots.get(m.base + off).and_then(OpStats::snap)
                    } else {
                        None
                    }
                };
                let joins = m.scans.saturating_sub(1);
                BlockSnapshot {
                    columnar: m.columnar,
                    fallback: m.fallback,
                    slotted,
                    scans: (0..m.scans).map(op).collect(),
                    joins: (0..joins).map(|j| op(m.scans + j)).collect(),
                    filter: op(m.scans + joins + FixedOp::Filter as usize),
                    aggregate: op(m.scans + joins + FixedOp::Aggregate as usize),
                    distinct: op(m.scans + joins + FixedOp::Distinct as usize),
                    order: op(m.scans + joins + FixedOp::Order as usize),
                }
            })
            .collect();
        ProfileSnapshot { blocks }
    }
}

/// Plain-data copy of one [`OpStats`] slot (only produced for operators
/// that actually ran).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpSnapshot {
    /// Rows entering the operator.
    pub rows_in: u64,
    /// Rows leaving the operator.
    pub rows_out: u64,
    /// Batches / conjunct passes evaluated.
    pub batches: u64,
    /// Hash-join build rows, or groups created for aggregates.
    pub build_rows: u64,
    /// Hash-join probe rows.
    pub probe_rows: u64,
    /// Morsels dispatched (deterministic).
    pub morsels: u64,
    /// Morsels stolen off the home worker (scheduling noise).
    pub steals: u64,
    /// Wall-clock nanoseconds attributed to the operator.
    pub elapsed_ns: u64,
    /// Join step 0: source relation index of the left input.
    pub lhs: Option<usize>,
    /// Join steps: source relation index the step introduced.
    pub rhs: Option<usize>,
}

impl OpSnapshot {
    /// Output/input selectivity in whole percent, when defined.
    pub fn selectivity_pct(&self) -> Option<u64> {
        (self.rows_in > 0).then(|| self.rows_out * 100 / self.rows_in)
    }
}

/// Plain-data copy of one SELECT block.
#[derive(Debug, Clone)]
pub struct BlockSnapshot {
    /// Whether the columnar/batch engine produced the block's rows.
    pub columnar: bool,
    /// Why the columnar engine fell back, when it attempted and bailed.
    pub fallback: Option<&'static str>,
    /// False when the arena was exhausted and no slots were recorded.
    pub slotted: bool,
    /// Per source relation, in FROM/JOIN order.
    pub scans: Vec<Option<OpSnapshot>>,
    /// Per join execution step.
    pub joins: Vec<Option<OpSnapshot>>,
    /// Residual filter, when one ran.
    pub filter: Option<OpSnapshot>,
    /// Aggregation, when one ran.
    pub aggregate: Option<OpSnapshot>,
    /// DISTINCT, when one ran.
    pub distinct: Option<OpSnapshot>,
    /// Sort/TopK/Limit stage, when one ran.
    pub order: Option<OpSnapshot>,
}

impl BlockSnapshot {
    /// Rows leaving the block's operator chain, when determinable.
    pub fn final_rows(&self) -> Option<u64> {
        self.order
            .or(self.distinct)
            .or(self.aggregate)
            .or(self.filter)
            .map(|o| o.rows_out)
            .or_else(|| self.chain_tail())
    }

    fn chain_tail(&self) -> Option<u64> {
        if let Some(last) = self.joins.last() {
            return last.map(|j| j.rows_out);
        }
        match self.scans.as_slice() {
            [Some(s)] => Some(s.rows_out),
            _ => None,
        }
    }
}

/// Plain-data copy of a whole statement profile.
#[derive(Debug, Clone)]
pub struct ProfileSnapshot {
    /// Blocks in execution order (see [`QueryProfile::begin_block`]).
    pub blocks: Vec<BlockSnapshot>,
}

impl ProfileSnapshot {
    /// Verify row-flow conservation through every slotted block:
    ///
    /// - every scan slot was written, and join steps form a chain where
    ///   each step's `rows_in` equals its left input's `rows_out` plus
    ///   the scanned rows of the relation it introduced;
    /// - each downstream operator (filter → aggregate → distinct →
    ///   order) consumes exactly the rows its predecessor produced.
    ///
    /// Returns the first violation as a diagnostic string. The fuzzer
    /// runs this for every statement in its campaign.
    pub fn check_conservation(&self) -> Result<(), String> {
        for (bi, b) in self.blocks.iter().enumerate() {
            if !b.slotted {
                continue;
            }
            let fail = |what: String| Err(format!("block {bi}: {what}"));
            for (i, s) in b.scans.iter().enumerate() {
                if s.is_none() {
                    return fail(format!("scan {i} never ran"));
                }
            }
            let scan_out = |rel: usize| -> Result<u64, String> {
                b.scans
                    .get(rel)
                    .copied()
                    .flatten()
                    .map(|s| s.rows_out)
                    .ok_or(format!("block {bi}: join references missing scan {rel}"))
            };
            let mut last: Option<u64> = None;
            for (j, step) in b.joins.iter().enumerate() {
                let Some(step) = step else {
                    return fail(format!("join step {j} never ran"));
                };
                let Some(rhs) = step.rhs else {
                    return fail(format!("join step {j} has no rhs link"));
                };
                let lhs_rows = match (j, last) {
                    (0, _) => {
                        let Some(lhs) = step.lhs else {
                            return fail("join step 0 has no lhs link".to_string());
                        };
                        scan_out(lhs)?
                    }
                    (_, Some(prev)) => prev,
                    _ => unreachable!("non-first join always has a predecessor"),
                };
                let expect = lhs_rows + scan_out(rhs)?;
                if step.rows_in != expect {
                    return fail(format!(
                        "join step {j} rows_in {} != lhs {} + scan[{rhs}] rows_out {}",
                        step.rows_in,
                        lhs_rows,
                        expect - lhs_rows
                    ));
                }
                last = Some(step.rows_out);
            }
            if last.is_none() {
                last = b.chain_tail();
            }
            for (name, op) in [
                ("filter", b.filter),
                ("aggregate", b.aggregate),
                ("distinct", b.distinct),
                ("order", b.order),
            ] {
                let Some(op) = op else { continue };
                if let Some(prev) = last {
                    if op.rows_in != prev {
                        return fail(format!(
                            "{name} rows_in {} != upstream rows_out {prev}",
                            op.rows_in
                        ));
                    }
                }
                last = Some(op.rows_out);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_layout_and_snapshot_round_trip() {
        let p = QueryProfile::new();
        let b = p.begin_block(3);
        assert_eq!(b.scans(), 3);
        for (rel, (inn, out)) in [(24u64, 10u64), (24, 24), (8, 8)].iter().enumerate() {
            p.scan(b, rel).unwrap().rows(*inn, *out);
        }
        let j0 = p.join(b, 0).unwrap();
        j0.rows(34, 30);
        j0.build_probe(10, 24);
        j0.link(Some(0), 1);
        let j1 = p.join(b, 1).unwrap();
        j1.rows(38, 12);
        j1.build_probe(8, 30);
        j1.link(None, 2);
        p.fixed(b, FixedOp::Filter).unwrap().rows(12, 5);
        p.fixed(b, FixedOp::Order).unwrap().rows(5, 3);
        p.set_columnar(b, true);
        p.set_fallback(b, "first");
        p.set_fallback(b, "second"); // first wins

        let snap = p.snapshot();
        assert_eq!(snap.blocks.len(), 1);
        let blk = &snap.blocks[0];
        assert!(blk.columnar);
        assert_eq!(blk.fallback, Some("first"));
        assert_eq!(blk.scans[0].unwrap().rows_out, 10);
        assert_eq!(blk.joins[0].unwrap().rhs, Some(1));
        assert_eq!(blk.joins[0].unwrap().lhs, Some(0));
        assert_eq!(blk.joins[1].unwrap().lhs, None);
        assert_eq!(blk.filter.unwrap().selectivity_pct(), Some(41));
        assert_eq!(blk.final_rows(), Some(3));
        snap.check_conservation().expect("conserved");
    }

    #[test]
    fn conservation_catches_row_leaks() {
        let p = QueryProfile::new();
        let b = p.begin_block(2);
        p.scan(b, 0).unwrap().rows(10, 10);
        p.scan(b, 1).unwrap().rows(5, 5);
        let j = p.join(b, 0).unwrap();
        j.rows(14, 9); // should be 15 in
        j.link(Some(0), 1);
        let err = p.snapshot().check_conservation().unwrap_err();
        assert!(err.contains("join step 0"), "got: {err}");

        // Fix the join, then break the filter chain.
        j.reset();
        j.rows(15, 9);
        j.link(Some(0), 1);
        p.fixed(b, FixedOp::Filter).unwrap().rows(8, 8);
        let err = p.snapshot().check_conservation().unwrap_err();
        assert!(err.contains("filter rows_in 8"), "got: {err}");
    }

    #[test]
    fn reset_block_clears_partial_columnar_attempts() {
        let p = QueryProfile::new();
        let b = p.begin_block(1);
        p.scan(b, 0).unwrap().rows(100, 40);
        p.set_columnar(b, true);
        p.set_fallback(b, "join-kernel");
        p.reset_block(b);
        // Row-engine retry records fresh numbers into the same slots.
        p.scan(b, 0).unwrap().rows(100, 40);
        let blk = &p.snapshot().blocks[0];
        assert!(!blk.columnar);
        assert_eq!(blk.fallback, Some("join-kernel"), "reason survives reset");
        assert_eq!(blk.scans[0].unwrap().rows_in, 100);
        p.snapshot().check_conservation().expect("conserved");
    }

    #[test]
    fn arena_exhaustion_degrades_to_unslotted_blocks() {
        let p = QueryProfile::new();
        let big = PROFILE_SLOT_CAP; // needs 2*cap-1+4 slots: never fits
        let b = p.begin_block(big);
        assert!(p.scan(b, 0).is_none());
        assert!(p.join(b, 0).is_none());
        assert!(p.fixed(b, FixedOp::Order).is_none());
        p.reset_block(b); // no-op, must not panic
        let snap = p.snapshot();
        assert!(!snap.blocks[0].slotted);
        snap.check_conservation()
            .expect("unslotted blocks are skipped");
    }

    #[test]
    fn empty_single_scan_block_conserves_trivially() {
        let p = QueryProfile::new();
        let b = p.begin_block(1);
        p.scan(b, 0).unwrap().rows(7, 7);
        p.fixed(b, FixedOp::Order).unwrap().rows(7, 2);
        let snap = p.snapshot();
        assert_eq!(snap.blocks[0].final_rows(), Some(2));
        snap.check_conservation().expect("conserved");
    }
}
