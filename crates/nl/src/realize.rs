//! Compositional SQL→English realization.
//!
//! The realizer walks the query AST and verbalizes each clause using the
//! enhanced schema's human-readable table/column aliases. It is *total*:
//! expression shapes without a bespoke phrasing fall back to a readable
//! gloss, so every query in the dialect gets a semantically complete
//! question.

use sb_schema::EnhancedSchema;
use sb_sql::{
    AggArg, AggFunc, BinaryOp, ColumnRef, Expr, Literal, Query, Select, SelectItem, SetExpr, SetOp,
    TableFactor, UnaryOp,
};
use std::collections::HashMap;

/// A phrasing style: indexes into the paraphrase banks. Style 0 is the
/// canonical *reference* style used for gold questions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Style {
    /// Question opener variant.
    pub opener: usize,
    /// Clause-phrasing variant.
    pub variant: usize,
}

impl Style {
    /// The canonical reference style.
    pub fn reference() -> Style {
        Style::default()
    }

    /// A numbered style; different indexes give different but equivalent
    /// phrasings.
    pub fn numbered(n: usize) -> Style {
        Style {
            opener: n,
            variant: n / 2,
        }
    }
}

/// Openers for plain retrieval questions.
const OPENERS: [&str; 6] = ["Find", "Show", "List", "Return", "Give me", "Retrieve"];
/// Openers for counting questions.
const COUNT_OPENERS: [&str; 4] = [
    "How many",
    "Count the number of",
    "Find the number of",
    "What is the count of",
];

fn pick<'a>(bank: &'a [&'a str], idx: usize) -> &'a str {
    bank[idx % bank.len()]
}

/// The rule-based SQL→English generator.
pub struct Realizer<'a> {
    enhanced: &'a EnhancedSchema,
    style: Style,
}

impl<'a> Realizer<'a> {
    /// Create a realizer over an enhanced schema.
    pub fn new(enhanced: &'a EnhancedSchema) -> Self {
        Realizer {
            enhanced,
            style: Style::reference(),
        }
    }

    /// Verbalize a query in the given style.
    pub fn realize(&self, q: &Query, style: Style) -> String {
        let bound = Realizer {
            enhanced: self.enhanced,
            style,
        };
        bound.realize_inner(q, style)
    }

    fn realize_inner(&self, q: &Query, style: Style) -> String {
        let mut text = self.realize_body(&q.body, style);
        // ORDER BY / LIMIT.
        match (&q.order_by.first(), q.limit) {
            (Some(item), Some(n)) => {
                let key = self.expr_phrase(&item.expr, &self.binding_map(q));
                let dir = if item.desc { "highest" } else { "lowest" };
                let lead = pick(
                    &["with the", "having the", "showing only the"],
                    style.variant,
                );
                if n == 1 {
                    text.push_str(&format!(" {lead} {dir} {key}"));
                } else {
                    text.push_str(&format!(" {lead} {n} {dir} {key}"));
                }
            }
            (Some(item), None) => {
                let key = self.expr_phrase(&item.expr, &self.binding_map(q));
                let dir = if item.desc { "descending" } else { "ascending" };
                text.push_str(&format!(", ordered by {key} {dir}"));
            }
            (None, Some(n)) => text.push_str(&format!(", limited to {n} results")),
            (None, None) => {}
        }
        let mut out = text.trim().to_string();
        if !out.ends_with('?') && !out.ends_with('.') {
            out.push('?');
        }
        // Capitalize the first letter.
        let mut chars = out.chars();
        match chars.next() {
            Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
            None => out,
        }
    }

    /// Map binding names (aliases) of the outermost selects to table
    /// names, for resolving qualified column references.
    fn binding_map(&self, q: &Query) -> HashMap<String, String> {
        let mut map = HashMap::new();
        for sel in q.selects() {
            for tr in sel.table_refs() {
                if let TableFactor::Table(name) = &tr.factor {
                    if let Some(b) = tr.binding() {
                        map.insert(b.to_ascii_lowercase(), name.clone());
                    }
                }
            }
        }
        map
    }

    fn realize_body(&self, body: &SetExpr, style: Style) -> String {
        match body {
            SetExpr::Select(s) => self.realize_select(s, style),
            SetExpr::SetOp {
                op, left, right, ..
            } => {
                let l = self.realize_body(left, style);
                let r = self.realize_body(right, style);
                let connective = match op {
                    SetOp::Union => "; also include",
                    SetOp::Intersect => "; keep only those that also match:",
                    SetOp::Except => "; exclude those that match:",
                };
                format!("{l}{connective} {r}")
            }
        }
    }

    fn realize_select(&self, s: &Select, style: Style) -> String {
        let mut bindings = HashMap::new();
        for tr in s.table_refs() {
            if let TableFactor::Table(name) = &tr.factor {
                if let Some(b) = tr.binding() {
                    bindings.insert(b.to_ascii_lowercase(), name.clone());
                }
            }
        }
        let main_table = match &s.from.factor {
            TableFactor::Table(name) => self.enhanced.readable_table(name),
            TableFactor::Derived(_) => "the intermediate results".to_string(),
        };

        // Projection phrase, choosing the opener by shape.
        let mut parts: Vec<String> = Vec::new();
        let is_pure_count = s.projections.len() == 1
            && matches!(
                &s.projections[0],
                SelectItem::Expr {
                    expr: Expr::Agg {
                        func: AggFunc::Count,
                        arg: AggArg::Star,
                        ..
                    },
                    ..
                }
            );
        if is_pure_count && s.group_by.is_empty() {
            parts.push(format!(
                "{} {} records",
                pick(&COUNT_OPENERS, style.opener),
                main_table
            ));
        } else {
            let items: Vec<String> = s
                .projections
                .iter()
                .map(|p| self.projection_phrase(p, &main_table, &bindings))
                .collect();
            let distinct = if s.distinct { "distinct " } else { "" };
            parts.push(format!(
                "{} the {distinct}{} of {} records",
                pick(&OPENERS, style.opener),
                join_and(&items),
                main_table
            ));
        }

        // Joined tables.
        for join in &s.joins {
            if let TableFactor::Table(name) = &join.table.factor {
                parts.push(format!(
                    "together with their related {}",
                    self.enhanced.readable_table(name)
                ));
            }
        }

        // WHERE.
        if let Some(sel) = &s.selection {
            let conds: Vec<String> = sel
                .conjuncts()
                .iter()
                .map(|c| self.condition_phrase(c, &bindings))
                .collect();
            let connector = pick(&["where", "for which", "such that"], style.variant);
            parts.push(format!("{connector} {}", join_and(&conds)));
        }

        // GROUP BY.
        if !s.group_by.is_empty() {
            let keys: Vec<String> = s
                .group_by
                .iter()
                .map(|g| self.expr_phrase(g, &bindings))
                .collect();
            let conn = pick(&["for each", "per", "grouped by every"], style.variant);
            parts.push(format!("{conn} {}", join_and(&keys)));
        }

        // HAVING.
        if let Some(h) = &s.having {
            let conds: Vec<String> = h
                .conjuncts()
                .iter()
                .map(|c| self.condition_phrase(c, &bindings))
                .collect();
            parts.push(format!("keeping only groups where {}", join_and(&conds)));
        }

        parts.join(" ")
    }

    fn projection_phrase(
        &self,
        item: &SelectItem,
        main_table: &str,
        bindings: &HashMap<String, String>,
    ) -> String {
        match item {
            SelectItem::Wildcard => "full details".to_string(),
            SelectItem::Expr { expr, .. } => {
                self.expr_phrase_with_table(expr, main_table, bindings)
            }
        }
    }

    fn expr_phrase_with_table(
        &self,
        e: &Expr,
        main_table: &str,
        bindings: &HashMap<String, String>,
    ) -> String {
        match e {
            Expr::Agg {
                func,
                distinct,
                arg,
            } => {
                let d = if *distinct { "distinct " } else { "" };
                match (func, arg) {
                    (AggFunc::Count, AggArg::Star) => format!("number of {main_table} records"),
                    (AggFunc::Count, AggArg::Expr(inner)) => {
                        format!("number of {d}{}", self.expr_phrase(inner, bindings))
                    }
                    (f, AggArg::Expr(inner)) => {
                        let w = match f {
                            AggFunc::Sum => "total",
                            AggFunc::Avg => "average",
                            AggFunc::Min => "minimum",
                            AggFunc::Max => "maximum",
                            AggFunc::Count => unreachable!(),
                        };
                        format!("{w} {}", self.expr_phrase(inner, bindings))
                    }
                    (f, AggArg::Star) => format!("{} of all records", f.as_str()),
                }
            }
            other => self.expr_phrase(other, bindings),
        }
    }

    /// The readable phrase for a value expression.
    pub fn expr_phrase(&self, e: &Expr, bindings: &HashMap<String, String>) -> String {
        match e {
            Expr::Column(c) => self.column_phrase(c, bindings),
            Expr::Literal(l) => literal_phrase(l),
            Expr::Binary { left, op, right } if op.is_arithmetic() => {
                let l = self.expr_phrase(left, bindings);
                let r = self.expr_phrase(right, bindings);
                match op {
                    BinaryOp::Sub => format!("difference of {l} and {r}"),
                    BinaryOp::Add => format!("sum of {l} and {r}"),
                    BinaryOp::Mul => format!("product of {l} and {r}"),
                    BinaryOp::Div => format!("ratio of {l} to {r}"),
                    _ => unreachable!(),
                }
            }
            Expr::Agg { .. } => self.expr_phrase_with_table(e, "matching", bindings),
            Expr::Unary {
                op: UnaryOp::Neg,
                expr,
            } => format!("negative {}", self.expr_phrase(expr, bindings)),
            other => format!("the value {other}"),
        }
    }

    fn column_phrase(&self, c: &ColumnRef, bindings: &HashMap<String, String>) -> String {
        let table = c
            .table
            .as_ref()
            .and_then(|q| bindings.get(&q.to_ascii_lowercase()))
            .cloned();
        match table {
            Some(t) => self.enhanced.readable_column(&t, &c.column),
            None => {
                // Unqualified: search the bound tables.
                for t in bindings.values() {
                    if self
                        .enhanced
                        .schema
                        .table(t)
                        .is_some_and(|d| d.column(&c.column).is_some())
                    {
                        return self.enhanced.readable_column(t, &c.column);
                    }
                }
                c.column.replace('_', " ")
            }
        }
    }

    /// Verbalize one WHERE/HAVING conjunct.
    pub fn condition_phrase(&self, e: &Expr, bindings: &HashMap<String, String>) -> String {
        match e {
            Expr::Binary { left, op, right } if op.is_comparison() => {
                let subject = self.expr_phrase(left, bindings);
                let object = self.expr_phrase(right, bindings);
                let v = self.style.variant;
                let verb = match op {
                    BinaryOp::Eq => pick(&["is", "equals", "is exactly"], v),
                    BinaryOp::NotEq => pick(&["is not", "is different from"], v),
                    BinaryOp::Lt => pick(
                        &["is less than", "is below", "is smaller than", "is under"],
                        v,
                    ),
                    BinaryOp::LtEq => pick(&["is at most", "is no more than"], v),
                    BinaryOp::Gt => pick(
                        &["is greater than", "is above", "exceeds", "is more than"],
                        v,
                    ),
                    BinaryOp::GtEq => pick(&["is at least", "is no less than"], v),
                    _ => unreachable!(),
                };
                format!("the {subject} {verb} {object}")
            }
            Expr::Binary {
                left,
                op: BinaryOp::Or,
                right,
            } => format!(
                "{} or {}",
                self.condition_phrase(left, bindings),
                self.condition_phrase(right, bindings)
            ),
            Expr::Binary {
                left,
                op: BinaryOp::And,
                right,
            } => format!(
                "{} and {}",
                self.condition_phrase(left, bindings),
                self.condition_phrase(right, bindings)
            ),
            Expr::Between {
                expr,
                negated,
                low,
                high,
            } => {
                let subject = self.expr_phrase(expr, bindings);
                let lo = self.expr_phrase(low, bindings);
                let hi = self.expr_phrase(high, bindings);
                if *negated {
                    format!("the {subject} is not between {lo} and {hi}")
                } else {
                    format!("the {subject} is between {lo} and {hi}")
                }
            }
            Expr::InList {
                expr,
                negated,
                list,
            } => {
                let subject = self.expr_phrase(expr, bindings);
                let items: Vec<String> =
                    list.iter().map(|i| self.expr_phrase(i, bindings)).collect();
                let neg = if *negated { "none of" } else { "one of" };
                format!("the {subject} is {neg} {}", join_or(&items))
            }
            Expr::InSubquery {
                expr,
                negated,
                subquery,
            } => {
                let subject = self.expr_phrase(expr, bindings);
                let sub = self.realize_body(&subquery.body, Style::reference());
                let sub = lowercase_first(&sub);
                let neg = if *negated { "not " } else { "" };
                format!("the {subject} is {neg}among the results of: {sub}")
            }
            Expr::Like {
                expr,
                negated,
                pattern,
            } => {
                let subject = self.expr_phrase(expr, bindings);
                let fragment = match pattern.as_ref() {
                    Expr::Literal(Literal::Str(p)) => p.trim_matches('%').replace('%', " "),
                    other => self.expr_phrase(other, bindings),
                };
                if *negated {
                    format!("the {subject} does not contain '{fragment}'")
                } else {
                    format!("the {subject} contains '{fragment}'")
                }
            }
            Expr::IsNull { expr, negated } => {
                let subject = self.expr_phrase(expr, bindings);
                if *negated {
                    format!("the {subject} is known")
                } else {
                    format!("the {subject} is missing")
                }
            }
            Expr::Exists { negated, subquery } => {
                let sub = self.realize_body(&subquery.body, Style::reference());
                let sub = lowercase_first(&sub);
                if *negated {
                    format!("there are no results for: {sub}")
                } else {
                    format!("there is at least one result for: {sub}")
                }
            }
            Expr::Unary {
                op: UnaryOp::Not,
                expr,
            } => format!(
                "it is not the case that {}",
                self.condition_phrase(expr, bindings)
            ),
            other => format!("the condition {other} holds"),
        }
    }
}

fn literal_phrase(l: &Literal) -> String {
    match l {
        Literal::Null => "unknown".to_string(),
        Literal::Int(v) => v.to_string(),
        Literal::Float(v) => {
            if v.fract() == 0.0 {
                format!("{v:.0}")
            } else {
                format!("{v}")
            }
        }
        Literal::Str(s) => format!("'{s}'"),
        Literal::Bool(b) => if *b { "true" } else { "false" }.to_string(),
    }
}

fn join_and(items: &[String]) -> String {
    join_with(items, "and")
}

fn join_or(items: &[String]) -> String {
    join_with(items, "or")
}

fn join_with(items: &[String], conj: &str) -> String {
    match items.len() {
        0 => String::new(),
        1 => items[0].clone(),
        2 => format!("{} {conj} {}", items[0], items[1]),
        _ => {
            let head = items[..items.len() - 1].join(", ");
            format!("{head} {conj} {}", items[items.len() - 1])
        }
    }
}

fn lowercase_first(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_lowercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_schema::{Column, ColumnType, ForeignKey, Schema, TableDef};

    fn enhanced() -> EnhancedSchema {
        let schema = Schema::new("sdss")
            .with_table(TableDef::new(
                "specobj",
                vec![
                    Column::pk("specobjid", ColumnType::Int),
                    Column::new("bestobjid", ColumnType::Int),
                    Column::new("class", ColumnType::Text),
                    Column::new("subclass", ColumnType::Text),
                    Column::new("z", ColumnType::Float),
                    Column::new("ra", ColumnType::Float),
                ],
            ))
            .with_table(TableDef::new(
                "photoobj",
                vec![
                    Column::pk("objid", ColumnType::Int),
                    Column::new("u", ColumnType::Float),
                    Column::new("r", ColumnType::Float),
                ],
            ))
            .with_fk(ForeignKey::new("specobj", "bestobjid", "photoobj", "objid"));
        let mut e = EnhancedSchema::new(schema);
        e.set_table_alias("specobj", "spectroscopic object");
        e.set_table_alias("photoobj", "photometric object");
        e.set_column_alias("specobj", "z", "redshift");
        e.set_column_alias("specobj", "ra", "right ascension");
        e.set_column_alias("photoobj", "u", "ultraviolet magnitude");
        e.set_column_alias("photoobj", "r", "infrared magnitude");
        e
    }

    fn realize(sql: &str) -> String {
        let e = enhanced();
        let r = Realizer::new(&e);
        r.realize(&sb_sql::parse(sql).unwrap(), Style::reference())
    }

    #[test]
    fn realizes_simple_filter() {
        let nl = realize("SELECT s.specobjid FROM specobj AS s WHERE s.subclass = 'STARBURST'");
        assert!(nl.contains("spectroscopic object"), "{nl}");
        assert!(nl.contains("subclass"), "{nl}");
        assert!(nl.contains("STARBURST"), "{nl}");
    }

    #[test]
    fn uses_readable_aliases() {
        let nl = realize("SELECT s.z FROM specobj AS s WHERE s.z > 0.5");
        assert!(nl.contains("redshift"), "{nl}");
        assert!(nl.contains("greater than 0.5"), "{nl}");
        assert!(!nl.contains(" z "), "raw column name should not leak: {nl}");
    }

    #[test]
    fn realizes_math_difference() {
        let nl = realize("SELECT p.objid FROM photoobj AS p WHERE p.u - p.r < 2.22");
        assert!(
            nl.contains("difference of ultraviolet magnitude and infrared magnitude"),
            "{nl}"
        );
        assert!(nl.contains("less than 2.22"), "{nl}");
    }

    #[test]
    fn realizes_count_star() {
        let nl = realize("SELECT COUNT(*) FROM specobj");
        assert!(nl.starts_with("How many"), "{nl}");
        assert!(nl.contains("spectroscopic object"), "{nl}");
    }

    #[test]
    fn realizes_group_by_and_having() {
        let nl = realize(
            "SELECT s.class, COUNT(*) FROM specobj AS s GROUP BY s.class HAVING COUNT(*) > 10",
        );
        assert!(nl.contains("for each class"), "{nl}");
        assert!(nl.contains("greater than 10"), "{nl}");
    }

    #[test]
    fn realizes_order_limit_as_superlative() {
        let nl = realize("SELECT s.specobjid FROM specobj AS s ORDER BY s.z DESC LIMIT 1");
        assert!(nl.contains("highest redshift"), "{nl}");
        let nl = realize("SELECT s.specobjid FROM specobj AS s ORDER BY s.z LIMIT 3");
        assert!(nl.contains("3 lowest redshift"), "{nl}");
    }

    #[test]
    fn realizes_join() {
        let nl =
            realize("SELECT p.objid FROM photoobj AS p JOIN specobj AS s ON s.bestobjid = p.objid");
        assert!(nl.contains("photometric object"), "{nl}");
        assert!(nl.contains("spectroscopic object"), "{nl}");
    }

    #[test]
    fn realizes_between_in_like() {
        let nl = realize(
            "SELECT s.specobjid FROM specobj AS s WHERE s.z BETWEEN 0.5 AND 1 \
             AND s.class IN ('GALAXY', 'QSO') AND s.subclass LIKE '%BURST%'",
        );
        assert!(nl.contains("between 0.5 and 1"), "{nl}");
        assert!(nl.contains("one of 'GALAXY' or 'QSO'"), "{nl}");
        assert!(nl.contains("contains 'BURST'"), "{nl}");
    }

    #[test]
    fn realizes_subquery() {
        let nl = realize(
            "SELECT s.specobjid FROM specobj AS s WHERE s.bestobjid IN \
             (SELECT p.objid FROM photoobj AS p WHERE p.u > 19)",
        );
        assert!(nl.contains("among the results of"), "{nl}");
        assert!(nl.contains("ultraviolet magnitude"), "{nl}");
    }

    #[test]
    fn styles_differ_but_share_content() {
        let e = enhanced();
        let r = Realizer::new(&e);
        let q = sb_sql::parse("SELECT s.z FROM specobj AS s WHERE s.class = 'GALAXY'").unwrap();
        let a = r.realize(&q, Style::numbered(0));
        let b = r.realize(&q, Style::numbered(1));
        assert_ne!(a, b);
        for nl in [&a, &b] {
            assert!(nl.contains("GALAXY"), "{nl}");
            assert!(nl.contains("redshift"), "{nl}");
        }
    }

    #[test]
    fn every_style_ends_as_question_or_sentence() {
        let e = enhanced();
        let r = Realizer::new(&e);
        let q = sb_sql::parse("SELECT COUNT(*) FROM specobj").unwrap();
        for i in 0..8 {
            let nl = r.realize(&q, Style::numbered(i));
            assert!(nl.ends_with('?') || nl.ends_with('.'), "{nl}");
            let first = nl.chars().next().unwrap();
            assert!(first.is_uppercase(), "{nl}");
        }
    }

    #[test]
    fn realizes_set_operation() {
        let nl = realize("SELECT s.z FROM specobj AS s EXCEPT SELECT s.z FROM specobj AS s WHERE s.class = 'STAR'");
        assert!(nl.contains("exclude"), "{nl}");
    }

    #[test]
    fn is_null_phrasing() {
        let nl = realize("SELECT s.specobjid FROM specobj AS s WHERE s.z IS NULL");
        assert!(nl.contains("redshift is missing"), "{nl}");
        let nl = realize("SELECT s.specobjid FROM specobj AS s WHERE s.z IS NOT NULL");
        assert!(nl.contains("redshift is known"), "{nl}");
    }
}
