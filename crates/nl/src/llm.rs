//! Simulated large language models for SQL-to-NL translation.
//!
//! Each [`LlmProfile`] wraps the rule-based [`Realizer`] with a calibrated
//! error model. Errors are applied *per semantic unit* (filter conjunct,
//! aggregate, ordering), so complex queries are mistranslated more often —
//! this is what reproduces the paper's observation that SDSS (whose dev
//! set is 40% extra-hard) gets markedly worse SQL-to-NL quality than
//! CORDIS (§4.1.2: 53% vs 82%).
//!
//! Fine-tuning ([`LlmProfile::fine_tune`]) registers a schema as known:
//! the model then uses the enhanced schema's human-readable aliases and
//! suffers a much smaller domain penalty. Without fine-tuning, cryptic
//! schemas (many aliased short column names, like SDSS's `ra`/`z`) inflate
//! the error rate — the "unseen domain" failure mode of §2.

use crate::realize::{Realizer, Style};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sb_schema::EnhancedSchema;
use sb_sql::{BinaryOp, Expr, Literal, Query, SetExpr};
use std::collections::HashMap;

/// A simulated SQL-to-NL language model.
#[derive(Debug, Clone)]
pub struct LlmProfile {
    /// Model name as it appears in Table 3.
    pub name: &'static str,
    /// Per-semantic-unit corruption probability on a fully known,
    /// non-cryptic schema.
    pub base_error_rate: f64,
    /// Paraphrase diversity: styles are sampled from `0..=style_range`.
    /// 0 keeps the canonical reference phrasing (high BLEU).
    pub style_range: usize,
    /// Probability of stilted, "robotic" post-processing per question
    /// (hurts fluency/BLEU, not semantics).
    pub robotic_rate: f64,
    /// Error-rate multiplier slope per unit of schema crypticity when the
    /// schema was *not* fine-tuned on.
    pub zero_shot_penalty: f64,
    /// Residual slope when the schema *was* fine-tuned on.
    pub fine_tuned_penalty: f64,
    /// Fine-tuned schema name → tuning strength in `[0, 1]`.
    fine_tuned: HashMap<String, f64>,
    rng: StdRng,
}

impl LlmProfile {
    /// Fine-tuned GPT-2-large: weakest generator — most per-unit errors,
    /// noticeable robotic phrasing.
    pub fn gpt2(seed: u64) -> Self {
        LlmProfile {
            name: "GPT-2",
            base_error_rate: 0.26,
            style_range: 2,
            robotic_rate: 0.35,
            zero_shot_penalty: 3.0,
            fine_tuned_penalty: 0.9,
            fine_tuned: HashMap::new(),
            rng: StdRng::seed_from_u64(seed ^ 0x6770_7432),
        }
    }

    /// Zero-shot GPT-3 Davinci: excellent fluency and semantics but
    /// paraphrases freely — low word overlap with references (low BLEU,
    /// high human score).
    pub fn gpt3_zero(seed: u64) -> Self {
        LlmProfile {
            name: "GPT-3-zero",
            base_error_rate: 0.10,
            style_range: 5,
            robotic_rate: 0.02,
            zero_shot_penalty: 2.2,
            fine_tuned_penalty: 0.6,
            fine_tuned: HashMap::new(),
            rng: StdRng::seed_from_u64(seed ^ 0x6770_7433),
        }
    }

    /// Fine-tuned GPT-3 Davinci: the model the paper selects — highest
    /// BLEU (phrasing matches the training distribution) and near-best
    /// semantics.
    pub fn gpt3_finetuned(seed: u64) -> Self {
        LlmProfile {
            name: "GPT-3",
            base_error_rate: 0.135,
            style_range: 1,
            robotic_rate: 0.02,
            zero_shot_penalty: 2.2,
            fine_tuned_penalty: 0.6,
            fine_tuned: HashMap::new(),
            rng: StdRng::seed_from_u64(seed ^ 0x6770_7434),
        }
    }

    /// Fine-tuned T5-base: decent but below GPT-3 on both axes.
    pub fn t5(seed: u64) -> Self {
        LlmProfile {
            name: "T5",
            base_error_rate: 0.225,
            style_range: 3,
            robotic_rate: 0.18,
            zero_shot_penalty: 2.8,
            fine_tuned_penalty: 0.85,
            fine_tuned: HashMap::new(),
            rng: StdRng::seed_from_u64(seed ^ 0x6770_7435),
        }
    }

    /// All four Table 3 profiles.
    pub fn all(seed: u64) -> Vec<LlmProfile> {
        vec![
            Self::gpt2(seed),
            Self::gpt3_zero(seed),
            Self::gpt3_finetuned(seed),
            Self::t5(seed),
        ]
    }

    /// Fine-tune on `n_pairs` NL/SQL pairs from `schema_name`. Strength
    /// saturates with the pair count (the paper fine-tunes GPT-3 on 468
    /// Spider pairs plus 50–100 domain pairs).
    pub fn fine_tune(&mut self, schema_name: &str, n_pairs: usize) {
        let strength = n_pairs as f64 / (n_pairs as f64 + 50.0);
        let entry = self
            .fine_tuned
            .entry(schema_name.to_ascii_lowercase())
            .or_insert(0.0);
        *entry = entry.max(strength);
    }

    /// Reset the sampling RNG to a fresh stream. The parallel pipeline
    /// derives one seed per SQL query from this, so each query's
    /// candidate set is independent of how queries are scheduled across
    /// threads.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Whether this model has been fine-tuned on a schema.
    pub fn is_fine_tuned(&self, schema_name: &str) -> bool {
        self.fine_tuned
            .contains_key(&schema_name.to_ascii_lowercase())
    }

    /// The effective per-unit error probability for a schema.
    pub fn effective_error_rate(&self, enhanced: &EnhancedSchema) -> f64 {
        let crypt = crypticity(enhanced);
        let name = enhanced.schema.name.to_ascii_lowercase();
        let rate = match self.fine_tuned.get(&name) {
            Some(strength) => {
                // Interpolate between the zero-shot and fully-tuned slopes
                // by tuning strength.
                let slope = self.zero_shot_penalty
                    - (self.zero_shot_penalty - self.fine_tuned_penalty) * strength;
                self.base_error_rate * (1.0 + slope * crypt)
            }
            None => self.base_error_rate * (1.0 + self.zero_shot_penalty * crypt),
        };
        rate.min(0.9)
    }

    /// Translate one SQL query to a natural-language question.
    pub fn translate(&mut self, q: &Query, enhanced: &EnhancedSchema) -> String {
        let p = self.effective_error_rate(enhanced);
        let corrupted = corrupt_query(q, p, &mut self.rng);
        let style = Style::numbered(self.rng.gen_range(0..=self.style_range));
        // Zero-shot models have not seen the domain's alias vocabulary:
        // realize with the raw schema (cryptic column names leak through).
        let stripped;
        let schema_for_realization = if self.is_fine_tuned(&enhanced.schema.name) {
            enhanced
        } else {
            stripped = EnhancedSchema::new(enhanced.schema.clone());
            &stripped
        };
        let realizer = Realizer::new(schema_for_realization);
        let mut text = realizer.realize(&corrupted, style);
        if self.rng.gen_bool(self.robotic_rate) {
            text = roboticize(&text, &mut self.rng);
        }
        text
    }

    /// Generate `n` candidate questions for one SQL query (the paper asks
    /// GPT-3 for 8 candidates per query to increase linguistic diversity).
    ///
    /// Errors split into a *systematic* component — the model misreads the
    /// SQL once and all candidates share the mistake, so downstream
    /// consensus filtering cannot remove it — and a smaller *sampling*
    /// component that varies per candidate (and which Phase 4's
    /// discriminator is good at filtering). The 75/35 split calibrates the
    /// post-discrimination silver-standard quality to Table 4's 75–83%
    /// band.
    pub fn candidates(&mut self, q: &Query, enhanced: &EnhancedSchema, n: usize) -> Vec<String> {
        let p = self.effective_error_rate(enhanced);
        let shared = corrupt_query(q, (p * 0.75).min(0.9), &mut self.rng);
        (0..n)
            .map(|i| {
                // Cycle the full paraphrase space: the whole point of
                // sampling several candidates is linguistic diversity
                // (§3.3.3), beyond the model's default phrasing band.
                let style = Style::numbered(i % 6);
                self.translate_with_rate_styled(&shared, enhanced, (p * 0.35).min(0.9), style)
            })
            .collect()
    }

    /// Realize one candidate with an explicit residual corruption rate
    /// and style.
    fn translate_with_rate_styled(
        &mut self,
        q: &Query,
        enhanced: &EnhancedSchema,
        rate: f64,
        style: Style,
    ) -> String {
        let corrupted = corrupt_query(q, rate, &mut self.rng);
        let stripped;
        let schema_for_realization = if self.is_fine_tuned(&enhanced.schema.name) {
            enhanced
        } else {
            stripped = EnhancedSchema::new(enhanced.schema.clone());
            &stripped
        };
        let realizer = Realizer::new(schema_for_realization);
        let mut text = realizer.realize(&corrupted, style);
        if self.rng.gen_bool(self.robotic_rate) {
            text = roboticize(&text, &mut self.rng);
        }
        text
    }
}

/// How cryptic a schema's vocabulary is: the fraction of columns whose
/// human-readable alias differs from the raw name, blended with the
/// fraction of very short column names. SDSS (`ra`, `z`, `u`, `g`…) scores
/// high; Spider-like schemas with spelled-out names score near zero.
pub fn crypticity(enhanced: &EnhancedSchema) -> f64 {
    let mut total = 0usize;
    let mut cryptic = 0usize;
    for t in &enhanced.schema.tables {
        for c in &t.columns {
            total += 1;
            let readable = enhanced.readable_column(&t.name, &c.name);
            let raw_spaced = c.name.replace('_', " ");
            if !readable.eq_ignore_ascii_case(&raw_spaced) || c.name.len() <= 2 {
                cryptic += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        cryptic as f64 / total as f64
    }
}

/// Count the semantic units of a query (used by tests and calibration):
/// filter conjuncts, aggregates, group keys, having conjuncts, order
/// items.
pub fn semantic_units(q: &Query) -> usize {
    let mut n = 0;
    for s in q.selects() {
        if let Some(sel) = &s.selection {
            n += sel.conjuncts().len();
        }
        n += s.group_by.len();
        if let Some(h) = &s.having {
            n += h.conjuncts().len();
        }
        n += s
            .projections
            .iter()
            .filter(|p| match p {
                sb_sql::SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                _ => false,
            })
            .count();
    }
    n += q.order_by.len();
    n.max(1)
}

/// Apply per-unit corruption to a query: each WHERE conjunct, aggregate,
/// and order item is independently mistranslated with probability `p`.
fn corrupt_query(q: &Query, p: f64, rng: &mut StdRng) -> Query {
    let mut out = q.clone();
    corrupt_set_expr(&mut out.body, p, rng);
    for item in &mut out.order_by {
        if rng.gen_bool(p) {
            // Mistranslate the direction.
            item.desc = !item.desc;
        }
    }
    out
}

fn corrupt_set_expr(body: &mut SetExpr, p: f64, rng: &mut StdRng) {
    match body {
        SetExpr::Select(s) => {
            if let Some(sel) = s.selection.take() {
                s.selection = corrupt_predicate(sel, p, rng);
            }
            if let Some(h) = s.having.take() {
                s.having = corrupt_predicate(h, p, rng);
            }
            for proj in &mut s.projections {
                if let sb_sql::SelectItem::Expr { expr, .. } = proj {
                    if expr.contains_aggregate() && rng.gen_bool(p) {
                        swap_aggregate(expr);
                    }
                }
            }
        }
        SetExpr::SetOp { left, right, .. } => {
            corrupt_set_expr(left, p, rng);
            corrupt_set_expr(right, p, rng);
        }
    }
}

/// Corrupt one conjunct at a time; dropping a conjunct entirely models the
/// most common LLM failure (omitted filter). Only corruption kinds that
/// actually change the conjunct's meaning are eligible per shape (flipping
/// `=` or a `BETWEEN` is not an observable mistranslation, so those
/// shapes get dropped or value-perturbed instead).
fn corrupt_predicate(pred: Expr, p: f64, rng: &mut StdRng) -> Option<Expr> {
    let conjuncts: Vec<Expr> = pred.conjuncts().into_iter().cloned().collect();
    let mut kept: Vec<Expr> = Vec::new();
    for mut c in conjuncts {
        if rng.gen_bool(p) {
            let flippable = matches!(
                &c,
                Expr::Binary {
                    op: BinaryOp::Lt | BinaryOp::Gt | BinaryOp::LtEq | BinaryOp::GtEq,
                    ..
                }
            );
            let has_literal = contains_literal(&c);
            let mut kinds: Vec<u8> = vec![0]; // drop
            if flippable {
                kinds.push(1);
            }
            if has_literal {
                kinds.push(2);
            }
            match kinds[rng.gen_range(0..kinds.len())] {
                0 => continue, // drop the filter
                1 => flip_comparison(&mut c),
                _ => perturb_value(&mut c, rng),
            }
        }
        kept.push(c);
    }
    kept.into_iter()
        .reduce(|a, b| Expr::binary(a, BinaryOp::And, b))
}

fn contains_literal(e: &Expr) -> bool {
    match e {
        Expr::Literal(l) => !matches!(l, Literal::Null | Literal::Bool(_)),
        Expr::Binary { left, right, .. } => contains_literal(left) || contains_literal(right),
        Expr::Between { low, high, .. } => contains_literal(low) || contains_literal(high),
        Expr::InList { list, .. } => list.iter().any(contains_literal),
        Expr::Like { pattern, .. } => contains_literal(pattern),
        Expr::Unary { expr, .. } => contains_literal(expr),
        _ => false,
    }
}

fn flip_comparison(e: &mut Expr) {
    if let Expr::Binary { op, .. } = e {
        *op = match *op {
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::LtEq => BinaryOp::GtEq,
            BinaryOp::GtEq => BinaryOp::LtEq,
            BinaryOp::Eq => BinaryOp::NotEq,
            other => other,
        };
    }
}

fn perturb_value(e: &mut Expr, rng: &mut StdRng) {
    match e {
        Expr::Binary { right, .. } => perturb_value(right, rng),
        Expr::Literal(l) => {
            *l = match &*l {
                Literal::Int(v) => Literal::Int(*v + rng.gen_range(1..=9)),
                Literal::Float(v) => Literal::Float(*v * 1.5 + 0.1),
                Literal::Str(s) => {
                    // Hallucinate a different entity (drop a character and
                    // reverse), so the original value is absent from the NL.
                    let scrambled: String = s.chars().rev().skip(1).collect();
                    Literal::Str(if scrambled.is_empty() {
                        "something else".to_string()
                    } else {
                        scrambled
                    })
                }
                other => (*other).clone(),
            };
        }
        Expr::Between { low, .. } => perturb_value(low, rng),
        Expr::InList { list, .. } => {
            if let Some(first) = list.first_mut() {
                perturb_value(first, rng);
            }
        }
        Expr::Like { pattern, .. } => perturb_value(pattern, rng),
        _ => {}
    }
}

fn swap_aggregate(e: &mut Expr) {
    use sb_sql::AggFunc;
    match e {
        Expr::Agg { func, .. } => {
            *func = match func {
                AggFunc::Avg => AggFunc::Sum,
                AggFunc::Sum => AggFunc::Avg,
                AggFunc::Min => AggFunc::Max,
                AggFunc::Max => AggFunc::Min,
                AggFunc::Count => AggFunc::Count,
            };
        }
        Expr::Binary { left, right, .. } => {
            swap_aggregate(left);
            swap_aggregate(right);
        }
        _ => {}
    }
}

/// Stilted post-processing: the "robotic NLQ" failure DBPal-style template
/// systems exhibit (§6.1) and weaker LLMs approximate.
fn roboticize(text: &str, rng: &mut StdRng) -> String {
    let prefixes = ["Query:", "Please output:", "Database request:"];
    let p = prefixes.choose(rng).expect("non-empty");
    format!("{p} {}", text.to_ascii_lowercase())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_schema::{Column, ColumnType, Schema, TableDef};

    fn cryptic_schema() -> EnhancedSchema {
        let schema = Schema::new("sdss").with_table(TableDef::new(
            "specobj",
            vec![
                Column::pk("specobjid", ColumnType::Int),
                Column::new("z", ColumnType::Float),
                Column::new("ra", ColumnType::Float),
                Column::new("class", ColumnType::Text),
            ],
        ));
        let mut e = EnhancedSchema::new(schema);
        e.set_column_alias("specobj", "z", "redshift");
        e.set_column_alias("specobj", "ra", "right ascension");
        e
    }

    fn plain_schema() -> EnhancedSchema {
        let schema = Schema::new("pets").with_table(TableDef::new(
            "owners",
            vec![
                Column::pk("owner_name", ColumnType::Text),
                Column::new("city", ColumnType::Text),
                Column::new("age", ColumnType::Int),
            ],
        ));
        EnhancedSchema::new(schema)
    }

    #[test]
    fn crypticity_separates_domains() {
        assert!(crypticity(&cryptic_schema()) >= 0.5);
        assert!(crypticity(&plain_schema()) < 0.1);
    }

    #[test]
    fn fine_tuning_lowers_error_rate() {
        let e = cryptic_schema();
        let mut m = LlmProfile::gpt3_finetuned(1);
        let zero_shot = m.effective_error_rate(&e);
        m.fine_tune("sdss", 100);
        let tuned = m.effective_error_rate(&e);
        assert!(tuned < zero_shot, "{tuned} !< {zero_shot}");
    }

    #[test]
    fn profile_ordering_on_plain_schemas() {
        // On Spider-like schemas the per-unit error ordering must be
        // GPT-3-zero ≲ GPT-3 < T5 < GPT-2 (Table 3's human column).
        let e = plain_schema();
        let rates: Vec<f64> = LlmProfile::all(1)
            .iter()
            .map(|m| m.effective_error_rate(&e))
            .collect();
        let (gpt2, gpt3zero, gpt3, t5) = (rates[0], rates[1], rates[2], rates[3]);
        assert!(gpt3zero < gpt3);
        assert!(gpt3 < t5);
        assert!(t5 < gpt2);
    }

    #[test]
    fn translation_is_deterministic_per_seed() {
        let e = cryptic_schema();
        let q = sb_sql::parse("SELECT s.z FROM specobj AS s WHERE s.class = 'GALAXY'").unwrap();
        let mut a = LlmProfile::gpt3_finetuned(7);
        let mut b = LlmProfile::gpt3_finetuned(7);
        assert_eq!(a.translate(&q, &e), b.translate(&q, &e));
    }

    #[test]
    fn candidates_have_diversity() {
        let e = plain_schema();
        let q = sb_sql::parse("SELECT o.city FROM owners AS o WHERE o.age > 30").unwrap();
        let mut m = LlmProfile::gpt3_zero(3);
        let cands = m.candidates(&q, &e, 8);
        assert_eq!(cands.len(), 8);
        let distinct: std::collections::HashSet<&String> = cands.iter().collect();
        assert!(distinct.len() >= 2, "8 candidates should vary: {cands:?}");
    }

    #[test]
    fn fine_tuned_model_uses_aliases_zero_shot_does_not() {
        let e = cryptic_schema();
        let q = sb_sql::parse("SELECT s.specobjid FROM specobj AS s WHERE s.z > 0.5").unwrap();
        let mut tuned = LlmProfile::gpt3_finetuned(5);
        tuned.fine_tune("sdss", 468);
        // Sample several translations; fine-tuned ones should mention the
        // alias at least once, zero-shot ones never (it has never seen the
        // ontology).
        let mut zero = LlmProfile::gpt3_zero(5);
        let tuned_mentions = (0..10).any(|_| tuned.translate(&q, &e).contains("redshift"));
        let zero_mentions = (0..10).any(|_| zero.translate(&q, &e).contains("redshift"));
        assert!(tuned_mentions);
        assert!(!zero_mentions);
    }

    #[test]
    fn semantic_units_counts_clauses() {
        let q = sb_sql::parse(
            "SELECT class, COUNT(*) FROM specobj WHERE z > 1 AND ra < 100 \
             GROUP BY class HAVING COUNT(*) > 5 ORDER BY COUNT(*) DESC LIMIT 3",
        )
        .unwrap();
        // 2 filters + 1 group + 1 having + 1 aggregate projection + 1 order
        assert_eq!(semantic_units(&q), 6);
        let simple = sb_sql::parse("SELECT a FROM t").unwrap();
        assert_eq!(semantic_units(&simple), 1);
    }

    #[test]
    fn corruption_rate_zero_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let q = sb_sql::parse("SELECT a FROM t WHERE b = 1 AND c > 2").unwrap();
        let out = corrupt_query(&q, 0.0, &mut rng);
        assert_eq!(out, q);
    }

    #[test]
    fn corruption_rate_one_always_alters() {
        let mut rng = StdRng::seed_from_u64(0);
        let q = sb_sql::parse("SELECT a FROM t WHERE b = 1").unwrap();
        let mut changed = 0;
        for _ in 0..20 {
            if corrupt_query(&q, 1.0, &mut rng) != q {
                changed += 1;
            }
        }
        assert!(changed >= 19, "p=1 must essentially always corrupt");
    }
}
