//! # sb-nl — SQL-to-NL translation (Phase 3 of the pipeline)
//!
//! The paper back-translates generated SQL queries to natural-language
//! questions with GPT-3, after evaluating GPT-2, zero-shot GPT-3,
//! fine-tuned GPT-3 and T5 (Table 3). GPU language models are not available
//! in this reproduction, so this crate substitutes:
//!
//! - [`Realizer`]: a compositional rule-based SQL→English generator that
//!   verbalizes every clause of the dialect using the enhanced schema's
//!   human-readable aliases, with paraphrase banks for linguistic
//!   diversity. Its *reference style* output serves as the gold question
//!   wherever the paper had human-written questions.
//! - [`LlmProfile`]: a simulated language model wrapping the realizer with
//!   a calibrated error model (clause drops, wrong values, flipped
//!   comparisons, robotic phrasing, hallucinated entities) and a
//!   `fine_tune` operation that absorbs domain vocabulary from NL/SQL
//!   pairs. Four named profiles ([`LlmProfile::gpt2`],
//!   [`LlmProfile::gpt3_zero`], [`LlmProfile::gpt3_finetuned`],
//!   [`LlmProfile::t5`]) are calibrated so the quality *ordering* of the
//!   paper's Table 3 reproduces; per-clause error application makes more
//!   complex queries fail more often, which reproduces the §4.1.2 domain
//!   drop (SDSS ≪ CORDIS).
//!
//! See DESIGN.md §1 for the substitution argument.

pub mod llm;
pub mod realize;

pub use llm::LlmProfile;
pub use realize::{Realizer, Style};
