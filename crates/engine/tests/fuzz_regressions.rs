//! Regression tests for bugs found by the differential fuzzer
//! (`crates/fuzz`): each test is a shrunk reproducer, re-shaped onto a
//! small local fixture with the same column-name structure as the
//! domain schema the fuzzer hit. The original finding is noted on each
//! test; replay with e.g.
//! `cargo run --release -p sb-fuzz --bin fuzz -- --domain sdss --seed 23893`.

use sb_engine::{execute_reference, Database, EngineError, ExecOptions, JoinStrategy, Value};
use sb_schema::{Column, ColumnType, Schema, TableDef};

/// SDSS-shaped fixture: `specobj` and `galspecline` share the column
/// name `specobjid` (the ambiguity surface), `specobj.bestobjid` is
/// NULLable and dangling for one row (the join NULL-semantics surface).
fn db() -> Database {
    let schema = Schema::new("mini_sdss")
        .with_table(TableDef::new(
            "specobj",
            vec![
                Column::pk("specobjid", ColumnType::Int),
                Column::new("bestobjid", ColumnType::Int),
                Column::new("class", ColumnType::Text),
            ],
        ))
        .with_table(TableDef::new(
            "galspecline",
            vec![
                Column::new("specobjid", ColumnType::Int),
                Column::new("flux", ColumnType::Float),
            ],
        ))
        .with_table(TableDef::new(
            "photoobj",
            vec![
                Column::pk("objid", ColumnType::Int),
                Column::new("u", ColumnType::Float),
            ],
        ));
    let mut db = Database::new(schema);
    db.table_mut("specobj").unwrap().push_rows(vec![
        vec![1.into(), 10.into(), "GALAXY".into()],
        vec![2.into(), 20.into(), "GALAXY".into()],
        vec![3.into(), Value::Null, "STAR".into()],
        vec![4.into(), 99.into(), "QSO".into()],
    ]);
    db.table_mut("galspecline").unwrap().push_rows(vec![
        vec![1.into(), 4.5.into()],
        vec![1.into(), 6.25.into()],
        vec![9.into(), 1.0.into()],
    ]);
    db.table_mut("photoobj").unwrap().push_rows(vec![
        vec![10.into(), 18.0.into()],
        vec![40.into(), 21.0.into()],
    ]);
    db
}

/// Every point of the executor's configuration matrix.
fn matrix() -> Vec<ExecOptions> {
    let mut out = Vec::new();
    for join in [
        JoinStrategy::Auto,
        JoinStrategy::BuildRight,
        JoinStrategy::NestedLoop,
    ] {
        for predicate_pushdown in [false, true] {
            for copy_scans in [false, true] {
                for compiled in [false, true] {
                    for optimize in [false, true] {
                        for columnar in [false, true] {
                            out.push(ExecOptions {
                                predicate_pushdown,
                                join,
                                copy_scans,
                                compiled,
                                optimize,
                                columnar,
                                ..ExecOptions::default()
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

/// Found on sdss, seed 23893: `ON specobjid = T2.specobjid` with
/// `specobjid` present on both sides. The hash-join key extractor bound
/// the bare column to the right relation and returned rows, while the
/// nested-loop evaluator (correctly) raised `AmbiguousColumn`.
#[test]
fn bare_on_column_ambiguous_across_sides_errors_under_every_strategy() {
    let db = db();
    let sql = "SELECT T1.flux FROM galspecline AS T1 \
               JOIN specobj AS T2 ON specobjid = T2.specobjid";
    for opts in matrix() {
        assert!(
            matches!(db.run_with(sql, opts), Err(EngineError::AmbiguousColumn(_))),
            "{opts:?} did not report the ambiguity"
        );
    }
    let q = sb_sql::parse(sql).unwrap();
    assert!(matches!(
        execute_reference(&db, &q),
        Err(EngineError::AmbiguousColumn(_))
    ));
}

/// The flip side: a bare ON column whose name exists in exactly one
/// side is legal, and the hash path must still fire rows identical to
/// the nested loop's.
#[test]
fn bare_on_column_unique_to_one_side_joins_identically() {
    let db = db();
    let sql = "SELECT T1.specobjid, T2.u FROM specobj AS T1 \
               JOIN photoobj AS T2 ON bestobjid = T2.objid";
    let baseline = db.run_with(sql, ExecOptions::legacy()).unwrap();
    assert_eq!(baseline.rows.len(), 1); // only bestobjid=10 matches
    for opts in matrix() {
        assert_eq!(db.run_with(sql, opts).unwrap().rows, baseline.rows);
    }
}

/// Found on cordis, seed 789781: `ORDER BY 4` after a set operation
/// with fewer output columns panicked with an index-out-of-bounds in
/// the sort comparator when rows were present, and silently succeeded
/// when the result happened to be empty.
#[test]
fn order_by_ordinal_out_of_range_errors_instead_of_panicking() {
    let db = db();
    let with_rows = "SELECT class AS c1 FROM specobj UNION \
                     SELECT class AS c1 FROM specobj ORDER BY 4";
    let empty = "SELECT class AS c1 FROM specobj WHERE class = 'NONE' UNION \
                 SELECT class AS c1 FROM specobj WHERE class = 'NONE' ORDER BY 4";
    for sql in [with_rows, empty] {
        for opts in matrix() {
            assert!(
                matches!(db.run_with(sql, opts), Err(EngineError::UnknownColumn(_))),
                "{opts:?} did not reject: {sql}"
            );
        }
        let q = sb_sql::parse(sql).unwrap();
        assert!(matches!(
            execute_reference(&db, &q),
            Err(EngineError::UnknownColumn(_))
        ));
    }
    // In-range ordinals still sort.
    let r = db
        .run(
            "SELECT class AS c1 FROM specobj UNION \
              SELECT class AS c1 FROM specobj ORDER BY 1",
        )
        .unwrap();
    let classes: Vec<_> = r.rows.iter().map(|row| row[0].clone()).collect();
    assert_eq!(
        classes,
        vec!["GALAXY".into(), "QSO".into(), "STAR".into()] as Vec<Value>
    );
}

/// Found on cordis, seed 789781: when predicate pushdown emptied one
/// scan, the join loop never evaluated its ON constraint, so the
/// ambiguity error disappeared and the query "succeeded" with 0 rows.
/// Constraint column references are now resolved before any rows flow.
#[test]
fn on_constraint_resolution_does_not_depend_on_row_counts() {
    let db = db();
    // `T1.class = 'NOMATCH'` pushes into the specobj scan and empties it.
    let sql = "SELECT T2.flux FROM specobj AS T1 \
               JOIN galspecline AS T2 ON specobjid = T1.specobjid \
               WHERE T1.class = 'NOMATCH'";
    for opts in matrix() {
        assert!(
            matches!(db.run_with(sql, opts), Err(EngineError::AmbiguousColumn(_))),
            "{opts:?} lost the ambiguity error"
        );
    }
    // Same for a plain unknown column against an empty side.
    let unknown = "SELECT T1.class FROM specobj AS T1 \
                   JOIN galspecline AS T2 ON T1.nope = T2.specobjid \
                   WHERE T1.class = 'NOMATCH'";
    for opts in matrix() {
        assert!(
            matches!(
                db.run_with(unknown, opts),
                Err(EngineError::UnknownColumn(_))
            ),
            "{opts:?} lost the unknown-column error"
        );
    }
}

// ---------------------------------------------------------------------
// Hash-join NULL semantics: NULL keys never match, and LEFT JOIN
// null-extension is identical whichever algorithm runs.
// ---------------------------------------------------------------------

#[test]
fn null_join_keys_never_match_under_any_strategy() {
    let db = db();
    // specobjid=3 has bestobjid NULL; NULL = anything is not TRUE, so it
    // must not pair with any photoobj row — including another NULL key.
    let sql = "SELECT T1.specobjid, T2.objid FROM specobj AS T1 \
               JOIN photoobj AS T2 ON T1.bestobjid = T2.objid";
    let baseline = db.run_with(sql, ExecOptions::legacy()).unwrap();
    let ids: Vec<_> = baseline.rows.iter().map(|r| r[0].clone()).collect();
    assert_eq!(ids, vec![Value::Int(1)]);
    for opts in matrix() {
        assert_eq!(db.run_with(sql, opts).unwrap().rows, baseline.rows);
    }
}

#[test]
fn left_join_null_extension_agrees_between_hash_and_nested_loop() {
    let db = db();
    // Unmatched (2, 4) and NULL-keyed (3) rows are all null-extended.
    let sql = "SELECT T1.specobjid, T2.objid, T2.u FROM specobj AS T1 \
               LEFT JOIN photoobj AS T2 ON T1.bestobjid = T2.objid \
               ORDER BY T1.specobjid";
    let baseline = db.run_with(sql, ExecOptions::legacy()).unwrap();
    assert_eq!(
        baseline.rows,
        vec![
            vec![1.into(), 10.into(), 18.0.into()],
            vec![2.into(), Value::Null, Value::Null],
            vec![3.into(), Value::Null, Value::Null],
            vec![4.into(), Value::Null, Value::Null],
        ]
    );
    for opts in matrix() {
        assert_eq!(db.run_with(sql, opts).unwrap().rows, baseline.rows);
    }
    // And the reference interpreter sees the same table.
    let q = sb_sql::parse(sql).unwrap();
    assert_eq!(execute_reference(&db, &q).unwrap().rows, baseline.rows);
}

// ---------------------------------------------------------------------
// Exact cross-type numeric comparison: i64 values beyond 2^53 must not
// collapse under f64 rounding in filters, ORDER BY, joins or grouping.
// ---------------------------------------------------------------------

/// Fixture around the 2^53 precision cliff: `big.v` holds 2^53 and
/// 2^53 + 1 (indistinguishable once rounded through f64), `keys.f`
/// holds the float 2^53.
fn bigint_db() -> Database {
    const P53: i64 = 1 << 53;
    let schema = Schema::new("bigint")
        .with_table(TableDef::new(
            "big",
            vec![
                Column::pk("id", ColumnType::Int),
                Column::new("v", ColumnType::Int),
            ],
        ))
        .with_table(TableDef::new(
            "keys",
            vec![Column::new("f", ColumnType::Float)],
        ));
    let mut db = Database::new(schema);
    db.table_mut("big").unwrap().push_rows(vec![
        vec![1.into(), Value::Int(P53 + 1)],
        vec![2.into(), Value::Int(P53)],
        vec![3.into(), Value::Int(-5)],
    ]);
    db.table_mut("keys")
        .unwrap()
        .push_rows(vec![vec![Value::Float(P53 as f64)]]);
    db
}

/// Found while auditing `Value::compare`: `2^53 + 1 > 2^53` compared as
/// equal after both sides rounded to the same f64. The comparison is
/// exact now, under every configuration and the reference.
#[test]
fn int_comparisons_beyond_2_pow_53_stay_exact() {
    let db = bigint_db();
    let sql = "SELECT id FROM big WHERE v > 9007199254740992 ORDER BY id";
    let baseline = db.run_with(sql, ExecOptions::legacy()).unwrap();
    assert_eq!(baseline.rows, vec![vec![Value::Int(1)]]);
    for opts in matrix() {
        assert_eq!(
            db.run_with(sql, opts).unwrap().rows,
            baseline.rows,
            "{opts:?}"
        );
    }
    let q = sb_sql::parse(sql).unwrap();
    assert_eq!(execute_reference(&db, &q).unwrap().rows, baseline.rows);

    // ORDER BY must rank 2^53 + 1 strictly above 2^53.
    let sql = "SELECT v FROM big ORDER BY v DESC";
    for opts in matrix() {
        let r = db.run_with(sql, opts).unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int((1 << 53) + 1)],
                vec![Value::Int(1 << 53)],
                vec![Value::Int(-5)],
            ],
            "{opts:?}"
        );
    }
}

/// GROUP BY on huge ints must keep 2^53 and 2^53 + 1 in separate
/// groups, and a float 2^53 join key must match the int 2^53 row only.
#[test]
fn grouping_and_joins_distinguish_adjacent_huge_ints() {
    let db = bigint_db();
    let sql = "SELECT v, COUNT(*) FROM big GROUP BY v";
    for opts in matrix() {
        assert_eq!(db.run_with(sql, opts).unwrap().rows.len(), 3, "{opts:?}");
    }
    let q = sb_sql::parse(sql).unwrap();
    assert_eq!(execute_reference(&db, &q).unwrap().rows.len(), 3);

    let sql = "SELECT T1.id FROM big AS T1 JOIN keys AS T2 ON T1.v = T2.f";
    let baseline = db.run_with(sql, ExecOptions::legacy()).unwrap();
    assert_eq!(
        baseline.rows,
        vec![vec![Value::Int(2)]],
        "float 2^53 = int 2^53 only"
    );
    for opts in matrix() {
        assert_eq!(
            db.run_with(sql, opts).unwrap().rows,
            baseline.rows,
            "{opts:?}"
        );
    }
    let q = sb_sql::parse(sql).unwrap();
    assert_eq!(execute_reference(&db, &q).unwrap().rows, baseline.rows);
}

// ---------------------------------------------------------------------
// Checked i64 arithmetic: overflow is a defined `Overflow` error in
// every configuration and the reference — never a silent wrap or panic.
// ---------------------------------------------------------------------

#[test]
fn integer_overflow_is_a_defined_error_everywhere() {
    let db = bigint_db();
    for sql in [
        // v = 2^53 + 1; multiplying by itself overflows i64.
        "SELECT v * v FROM big",
        "SELECT v + 9223372036854775807 FROM big WHERE id = 1",
        "SELECT -(-9223372036854775807 - 1) FROM big WHERE id = 1",
        // SUM of 2^53 and 2^53+1 fits; force overflow via repeated MAX.
        "SELECT SUM(v * 1024 * 1024) FROM big WHERE v > 0",
    ] {
        for opts in matrix() {
            assert!(
                matches!(db.run_with(sql, opts), Err(EngineError::Overflow(_))),
                "{opts:?} did not overflow: {sql}"
            );
        }
        let q = sb_sql::parse(sql).unwrap();
        assert!(
            matches!(execute_reference(&db, &q), Err(EngineError::Overflow(_))),
            "reference did not overflow: {sql}"
        );
    }
    // Non-overflowing neighbours still succeed exactly.
    let r = db.run("SELECT v + 1 FROM big WHERE id = 2").unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int((1 << 53) + 1)]]);
}
