//! Scalar expression evaluation with SQL NULL semantics.

use crate::database::Database;
use crate::error::{EngineError, Result};
use crate::result::ResultSet;
use crate::value::Value;
use sb_sql::{BinaryOp, ColumnRef, Expr, Literal, Query, UnaryOp};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// One named relation visible in a `SELECT` scope.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Binding name (alias or table name), lower-cased.
    pub name: String,
    /// Column names of the relation, in order.
    pub columns: Vec<String>,
    /// Offset of this relation's first column in the concatenated row.
    pub offset: usize,
}

/// The set of relations visible to expressions of one `SELECT`.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    /// Visible bindings in `FROM`/`JOIN` order.
    pub bindings: Vec<Binding>,
    /// Total width of the concatenated row.
    pub width: usize,
}

impl Scope {
    /// Append a relation to the scope; returns its offset.
    pub fn push(&mut self, name: &str, columns: Vec<String>) -> usize {
        let offset = self.width;
        self.width += columns.len();
        self.bindings.push(Binding {
            name: name.to_ascii_lowercase(),
            columns,
            offset,
        });
        offset
    }

    /// Resolve a column reference to an index into the concatenated row.
    pub fn resolve(&self, col: &ColumnRef) -> Result<usize> {
        match &col.table {
            Some(qualifier) => {
                let q = qualifier.to_ascii_lowercase();
                let binding = self
                    .bindings
                    .iter()
                    .find(|b| b.name == q)
                    .ok_or_else(|| EngineError::UnknownTable(qualifier.clone()))?;
                let idx = binding
                    .columns
                    .iter()
                    .position(|c| c.eq_ignore_ascii_case(&col.column))
                    .ok_or_else(|| EngineError::UnknownColumn(col.to_string()))?;
                Ok(binding.offset + idx)
            }
            None => {
                let mut found = None;
                for b in &self.bindings {
                    if let Some(idx) = b
                        .columns
                        .iter()
                        .position(|c| c.eq_ignore_ascii_case(&col.column))
                    {
                        if found.is_some() {
                            return Err(EngineError::AmbiguousColumn(col.column.clone()));
                        }
                        found = Some(b.offset + idx);
                    }
                }
                found.ok_or_else(|| EngineError::UnknownColumn(col.column.clone()))
            }
        }
    }

    /// All visible column names, in row order (used to expand `*`).
    pub fn all_columns(&self) -> Vec<String> {
        self.bindings
            .iter()
            .flat_map(|b| b.columns.iter().cloned())
            .collect()
    }
}

/// Evaluation context: the database for subqueries plus a memo so a
/// non-correlated subquery is executed once per statement, not once per
/// candidate row.
pub struct EvalContext<'a> {
    /// The database subqueries run against.
    pub db: &'a Database,
    memo: RefCell<HashMap<String, Rc<ResultSet>>>,
}

impl<'a> EvalContext<'a> {
    /// Create a context over a database.
    pub fn new(db: &'a Database) -> Self {
        EvalContext {
            db,
            memo: RefCell::new(HashMap::new()),
        }
    }

    /// Execute a subquery, memoized on its canonical SQL text.
    pub fn subquery(&self, q: &Query) -> Result<Rc<ResultSet>> {
        let key = q.to_string();
        if let Some(hit) = self.memo.borrow().get(&key) {
            return Ok(Rc::clone(hit));
        }
        let rs = Rc::new(crate::exec::execute(self.db, q)?);
        self.memo.borrow_mut().insert(key, Rc::clone(&rs));
        Ok(rs)
    }
}

/// Evaluate `expr` against one row. Aggregates are rejected here; grouped
/// evaluation lives in the executor.
pub fn eval(expr: &Expr, row: &[Value], scope: &Scope, ctx: &EvalContext) -> Result<Value> {
    match expr {
        Expr::Column(c) => Ok(row[scope.resolve(c)?].clone()),
        Expr::Literal(l) => Ok(literal_value(l)),
        Expr::Unary { op, expr } => apply_unary(*op, eval(expr, row, scope, ctx)?),
        Expr::Binary { left, op, right } => {
            if matches!(op, BinaryOp::And | BinaryOp::Or) {
                return eval_logical(*op, left, right, row, scope, ctx);
            }
            let l = eval(left, row, scope, ctx)?;
            let r = eval(right, row, scope, ctx)?;
            if op.is_arithmetic() {
                arith(*op, &l, &r)
            } else {
                apply_cmp(*op, &l, &r)
            }
        }
        Expr::Agg { .. } => Err(EngineError::Unsupported(
            "aggregate function outside GROUP BY context".into(),
        )),
        Expr::Between {
            expr,
            negated,
            low,
            high,
        } => {
            let v = eval(expr, row, scope, ctx)?;
            let lo = eval(low, row, scope, ctx)?;
            let hi = eval(high, row, scope, ctx)?;
            let ge = v.compare(&lo).map(|o| o.is_ge());
            let le = v.compare(&hi).map(|o| o.is_le());
            let within = match (ge, le) {
                (Some(a), Some(b)) => Some(a && b),
                (Some(false), _) | (_, Some(false)) => Some(false),
                _ => None,
            };
            Ok(match within {
                Some(b) => Value::Bool(b != *negated),
                None => Value::Null,
            })
        }
        Expr::InList {
            expr,
            negated,
            list,
        } => {
            let v = eval(expr, row, scope, ctx)?;
            let mut saw_null = v.is_null();
            let mut found = false;
            for item in list {
                let iv = eval(item, row, scope, ctx)?;
                match v.sql_eq(&iv) {
                    Some(true) => {
                        found = true;
                        break;
                    }
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            Ok(if found {
                Value::Bool(!*negated)
            } else if saw_null {
                Value::Null
            } else {
                Value::Bool(*negated)
            })
        }
        Expr::InSubquery {
            expr,
            negated,
            subquery,
        } => {
            let v = eval(expr, row, scope, ctx)?;
            let rs = ctx.subquery(subquery)?;
            if rs.columns.len() != 1 {
                return Err(EngineError::CardinalityViolation(format!(
                    "IN subquery returns {} columns",
                    rs.columns.len()
                )));
            }
            let mut saw_null = v.is_null();
            let mut found = false;
            for r in &rs.rows {
                match v.sql_eq(&r[0]) {
                    Some(true) => {
                        found = true;
                        break;
                    }
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            Ok(if found {
                Value::Bool(!*negated)
            } else if saw_null {
                Value::Null
            } else {
                Value::Bool(*negated)
            })
        }
        Expr::Like {
            expr,
            negated,
            pattern,
        } => {
            let v = eval(expr, row, scope, ctx)?;
            let p = eval(pattern, row, scope, ctx)?;
            match (v, p) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Text(s), Value::Text(pat)) => {
                    Ok(Value::Bool(like_match(&s, &pat) != *negated))
                }
                (a, b) => Err(EngineError::TypeMismatch(format!(
                    "LIKE requires text operands, got {a} and {b}"
                ))),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, row, scope, ctx)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Subquery(q) => {
            let rs = ctx.subquery(q)?;
            if rs.columns.len() != 1 {
                return Err(EngineError::CardinalityViolation(format!(
                    "scalar subquery returns {} columns",
                    rs.columns.len()
                )));
            }
            match rs.rows.len() {
                0 => Ok(Value::Null),
                1 => Ok(rs.rows[0][0].clone()),
                n => Err(EngineError::CardinalityViolation(format!(
                    "scalar subquery returns {n} rows"
                ))),
            }
        }
        Expr::Exists { negated, subquery } => {
            let rs = ctx.subquery(subquery)?;
            Ok(Value::Bool(rs.rows.is_empty() == *negated))
        }
    }
}

fn eval_logical(
    op: BinaryOp,
    left: &Expr,
    right: &Expr,
    row: &[Value],
    scope: &Scope,
    ctx: &EvalContext,
) -> Result<Value> {
    let l = truth(eval(left, row, scope, ctx)?)?;
    // Short-circuit where three-valued logic allows it.
    match (op, l) {
        (BinaryOp::And, Some(false)) => return Ok(Value::Bool(false)),
        (BinaryOp::Or, Some(true)) => return Ok(Value::Bool(true)),
        _ => {}
    }
    let r = truth(eval(right, row, scope, ctx)?)?;
    Ok(match combine_logical(op, l, r) {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    })
}

/// Three-valued AND/OR over already-truth-converted operands.
pub(crate) fn combine_logical(op: BinaryOp, l: Option<bool>, r: Option<bool>) -> Option<bool> {
    match op {
        BinaryOp::And => match (l, r) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        BinaryOp::Or => match (l, r) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        _ => unreachable!("only AND/OR are logical"),
    }
}

/// Convert a value to a three-valued truth: `Some(bool)` or `None` for
/// NULL. Non-boolean values are a type error.
pub fn truth(v: Value) -> Result<Option<bool>> {
    truth_ref(&v)
}

/// [`truth`] without consuming the value.
#[inline]
pub(crate) fn truth_ref(v: &Value) -> Result<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(*b)),
        other => Err(EngineError::TypeMismatch(format!(
            "expected boolean predicate, got {other}"
        ))),
    }
}

/// Evaluate a predicate for filtering: NULL counts as not-true.
pub fn eval_filter(expr: &Expr, row: &[Value], scope: &Scope, ctx: &EvalContext) -> Result<bool> {
    Ok(truth(eval(expr, row, scope, ctx)?)?.unwrap_or(false))
}

/// Apply a comparison operator to two already-evaluated values with SQL
/// NULL semantics. Shared by the tree-walking interpreter and the
/// compiled evaluator.
#[inline]
pub(crate) fn apply_cmp(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    match l.compare(r) {
        None if l.is_null() || r.is_null() => Ok(Value::Null),
        None => Err(EngineError::TypeMismatch(format!(
            "cannot compare {l} with {r}"
        ))),
        Some(ord) => {
            let b = match op {
                BinaryOp::Eq => ord.is_eq(),
                BinaryOp::NotEq => !ord.is_eq(),
                BinaryOp::Lt => ord.is_lt(),
                BinaryOp::LtEq => ord.is_le(),
                BinaryOp::Gt => ord.is_gt(),
                BinaryOp::GtEq => ord.is_ge(),
                _ => unreachable!("arithmetic operators use arith()"),
            };
            Ok(Value::Bool(b))
        }
    }
}

/// Apply a unary operator to an already-evaluated value.
pub(crate) fn apply_unary(op: UnaryOp, v: Value) -> Result<Value> {
    match op {
        UnaryOp::Neg => match v {
            Value::Null => Ok(Value::Null),
            // `-i64::MIN` has no i64 representation: defined error.
            Value::Int(i) => i
                .checked_neg()
                .map(Value::Int)
                .ok_or_else(|| EngineError::Overflow(format!("negating {i} exceeds i64"))),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(EngineError::TypeMismatch(format!("cannot negate {other}"))),
        },
        UnaryOp::Not => match v {
            Value::Null => Ok(Value::Null),
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => Err(EngineError::TypeMismatch(format!("NOT applied to {other}"))),
        },
    }
}

pub(crate) fn literal_value(l: &Literal) -> Value {
    match l {
        Literal::Null => Value::Null,
        Literal::Int(v) => Value::Int(*v),
        Literal::Float(v) => Value::Float(*v),
        Literal::Str(s) => Value::Text(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
    }
}

/// Wrap a checked i64 operation's result, turning `None` into the
/// defined [`EngineError::Overflow`] outcome.
#[inline]
pub(crate) fn int_arith(v: Option<i64>, a: &i64, b: &i64) -> Result<Value> {
    v.map(Value::Int).ok_or_else(|| {
        EngineError::Overflow(format!("integer arithmetic on {a} and {b} exceeds i64"))
    })
}

#[inline]
pub(crate) fn arith(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(match op {
            // Checked arithmetic: `i64::MAX + 1` is a defined `Overflow`
            // error, never a silent wrap (release) or panic (debug). The
            // reference interpreter's `arith` must error identically.
            BinaryOp::Add => int_arith(a.checked_add(*b), a, b)?,
            BinaryOp::Sub => int_arith(a.checked_sub(*b), a, b)?,
            BinaryOp::Mul => int_arith(a.checked_mul(*b), a, b)?,
            BinaryOp::Div => {
                // Integer division truncates; division by zero yields NULL
                // (Postgres errors here, but NULL keeps generated query
                // filtering total — documented divergence). `i64::MIN / -1`
                // is the one overflowing division.
                if *b == 0 {
                    Value::Null
                } else {
                    int_arith(a.checked_div(*b), a, b)?
                }
            }
            _ => unreachable!(),
        }),
        _ => {
            let a = l
                .as_f64()
                .ok_or_else(|| EngineError::TypeMismatch(format!("non-numeric operand {l}")))?;
            let b = r
                .as_f64()
                .ok_or_else(|| EngineError::TypeMismatch(format!("non-numeric operand {r}")))?;
            Ok(match op {
                BinaryOp::Add => Value::Float(a + b),
                BinaryOp::Sub => Value::Float(a - b),
                BinaryOp::Mul => Value::Float(a * b),
                BinaryOp::Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a / b)
                    }
                }
                _ => unreachable!(),
            })
        }
    }
}

/// SQL `LIKE` matching: `%` matches any run (including empty), `_` matches
/// exactly one character. Case-sensitive, like Postgres.
///
/// Iterative two-pointer wildcard matching with single-level `%`
/// backtracking: on a mismatch, resume one byte past the last `%`'s
/// anchor instead of recursing per `%`. Worst case O(|s| · |pattern|) —
/// the recursive matcher this replaces was exponential on multi-`%`
/// patterns like `%a%a%a%…b`.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s = s.as_bytes();
    let p = pattern.as_bytes();
    let (mut si, mut pi) = (0usize, 0usize);
    // Position of the most recent `%` and the input offset its run
    // currently spans to; extending the run by one byte is the only
    // backtrack ever needed.
    let mut star: Option<usize> = None;
    let mut anchor = 0usize;
    while si < s.len() {
        if pi < p.len() && (p[pi] == b'_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == b'%' {
            star = Some(pi);
            anchor = si;
            pi += 1;
        } else if let Some(sp) = star {
            pi = sp + 1;
            anchor += 1;
            si = anchor;
        } else {
            return false;
        }
    }
    // Trailing `%`s match the empty run.
    while pi < p.len() && p[pi] == b'%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_semantics() {
        assert!(like_match("starburst", "star%"));
        assert!(like_match("starburst", "%burst"));
        assert!(like_match("starburst", "%arb%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "%%c"));
        assert!(!like_match("ABC", "abc"), "case-sensitive");
    }

    /// Pathological multi-`%` patterns: the recursive matcher this
    /// replaced was exponential here, so these inputs hung the engine
    /// (while the reference's iterative matcher returned instantly).
    /// With the two-pointer matcher they complete in microseconds.
    #[test]
    fn like_pathological_backtracking_terminates() {
        let s = "a".repeat(64);
        let almost = format!("{}b", "a".repeat(63));
        let killer = format!("{}b", "%a".repeat(20)); // %a%a%…a b
        assert!(!like_match(&s, &killer));
        assert!(like_match(&almost, &killer));
        let stars = "%".repeat(100);
        assert!(like_match(&s, &stars));
        assert!(like_match(&s, &format!("{stars}a")));
        assert!(!like_match(&s, &format!("{stars}b")));
        // `_` interleaved with `%` still backtracks correctly.
        assert!(like_match("abcabc", "%_bc"));
        assert!(like_match("abcabc", "a%_c"));
        assert!(!like_match("abcabc", "%_d%"));
    }

    #[test]
    fn scope_resolution() {
        let mut scope = Scope::default();
        scope.push("s", vec!["id".into(), "z".into()]);
        scope.push("p", vec!["id".into(), "u".into()]);
        assert_eq!(scope.resolve(&ColumnRef::qualified("p", "u")).unwrap(), 3);
        assert_eq!(scope.resolve(&ColumnRef::bare("z")).unwrap(), 1);
        assert!(matches!(
            scope.resolve(&ColumnRef::bare("id")),
            Err(EngineError::AmbiguousColumn(_))
        ));
        assert!(matches!(
            scope.resolve(&ColumnRef::bare("nope")),
            Err(EngineError::UnknownColumn(_))
        ));
        assert!(matches!(
            scope.resolve(&ColumnRef::qualified("x", "id")),
            Err(EngineError::UnknownTable(_))
        ));
    }

    #[test]
    fn arithmetic_type_rules() {
        assert_eq!(
            arith(BinaryOp::Div, &Value::Int(7), &Value::Int(2)).unwrap(),
            Value::Int(3),
            "integer division truncates"
        );
        assert_eq!(
            arith(BinaryOp::Div, &Value::Int(7), &Value::Int(0)).unwrap(),
            Value::Null
        );
        assert_eq!(
            arith(BinaryOp::Sub, &Value::Float(18.0), &Value::Float(16.5)).unwrap(),
            Value::Float(1.5)
        );
        assert_eq!(
            arith(BinaryOp::Add, &Value::Null, &Value::Int(1)).unwrap(),
            Value::Null
        );
        assert!(arith(BinaryOp::Add, &Value::Text("a".into()), &Value::Int(1)).is_err());
    }

    #[test]
    fn truth_conversion() {
        assert_eq!(truth(Value::Bool(true)).unwrap(), Some(true));
        assert_eq!(truth(Value::Null).unwrap(), None);
        assert!(truth(Value::Int(1)).is_err());
    }
}
