//! Query results and the result-set comparison behind execution accuracy.

use crate::value::Value;
use std::fmt;

/// The materialized result of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names (aliases when given, otherwise rendered
    /// expressions).
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
    /// Whether the query specified `ORDER BY`, i.e. row order is
    /// semantically meaningful.
    pub ordered: bool,
}

impl ResultSet {
    /// An empty, unordered result with the given columns.
    pub fn empty(columns: Vec<String>) -> Self {
        ResultSet {
            columns,
            rows: Vec::new(),
            ordered: false,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Canonical per-row keys (float-tolerant, see
    /// [`Value::canonical_key`]).
    fn row_keys(&self) -> Vec<String> {
        self.rows
            .iter()
            .map(|row| {
                row.iter()
                    .map(Value::canonical_key)
                    .collect::<Vec<_>>()
                    .join("\u{1}")
            })
            .collect()
    }

    /// Execution-accuracy equivalence: same rows as a multiset, or as an
    /// ordered list when **both** sides are ordered. Column *names* are
    /// ignored (systems alias differently); column count must match.
    ///
    /// This mirrors the Spider benchmark's execution-match definition that
    /// the paper adopts for Table 5.
    pub fn same_result(&self, other: &ResultSet) -> bool {
        if self.columns.len() != other.columns.len() || self.rows.len() != other.rows.len() {
            return false;
        }
        let mut a = self.row_keys();
        let mut b = other.row_keys();
        if self.ordered && other.ordered {
            a == b
        } else {
            a.sort_unstable();
            b.sort_unstable();
            a == b
        }
    }
}

impl fmt::Display for ResultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.columns.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(rows: Vec<Vec<Value>>, ordered: bool) -> ResultSet {
        let cols = (0..rows.first().map(|r| r.len()).unwrap_or(1))
            .map(|i| format!("c{i}"))
            .collect();
        ResultSet {
            columns: cols,
            rows,
            ordered,
        }
    }

    #[test]
    fn multiset_comparison_ignores_order_when_unordered() {
        let a = rs(vec![vec![Value::Int(1)], vec![Value::Int(2)]], false);
        let b = rs(vec![vec![Value::Int(2)], vec![Value::Int(1)]], false);
        assert!(a.same_result(&b));
    }

    #[test]
    fn ordered_comparison_respects_order() {
        let a = rs(vec![vec![Value::Int(1)], vec![Value::Int(2)]], true);
        let b = rs(vec![vec![Value::Int(2)], vec![Value::Int(1)]], true);
        assert!(!a.same_result(&b));
    }

    #[test]
    fn multiset_counts_duplicates() {
        let a = rs(vec![vec![Value::Int(1)], vec![Value::Int(1)]], false);
        let b = rs(vec![vec![Value::Int(1)]], false);
        assert!(!a.same_result(&b));
    }

    #[test]
    fn int_float_equivalence() {
        let a = rs(vec![vec![Value::Int(3)]], false);
        let b = rs(vec![vec![Value::Float(3.0)]], false);
        assert!(a.same_result(&b));
    }

    #[test]
    fn column_names_ignored_but_count_matters() {
        let a = ResultSet {
            columns: vec!["x".into()],
            rows: vec![vec![Value::Int(1)]],
            ordered: false,
        };
        let b = ResultSet {
            columns: vec!["y".into()],
            rows: vec![vec![Value::Int(1)]],
            ordered: false,
        };
        assert!(a.same_result(&b));
        let c = ResultSet {
            columns: vec!["y".into(), "z".into()],
            rows: vec![vec![Value::Int(1), Value::Int(2)]],
            ordered: false,
        };
        assert!(!a.same_result(&c));
    }
}
