//! Columnar table layout: per-column typed vectors with null bitmaps.
//!
//! [`ColumnarTable`] is a read-only, lazily built companion to the
//! row-major [`crate::database::Table`]: one typed vector per column
//! (`i64` / `f64` / `bool` arrays, dictionary-encoded strings) plus a
//! null bitmap. The batch executor ([`crate::batch`]) runs its
//! vectorized kernels over these vectors and materializes `Value`s only
//! at result boundaries; the row storage remains the source of truth
//! and the fallback path.
//!
//! Layout conventions (documented in DESIGN.md §12):
//!
//! - **Null bitmap**: bit `i` set ⇔ row `i` is NULL. Data slots under
//!   null bits hold an arbitrary placeholder (`0` / `0.0` / `false` /
//!   dict code `0`) that kernels must never interpret.
//! - **Dictionary encoding**: text columns store a `u32` code per row
//!   into a value table ordered by first occurrence. Codes are
//!   bijective with distinct strings, so equality on codes is equality
//!   on strings (ordering is *not* preserved — ordered kernels compare
//!   the looked-up strings or precompute per-code lookup tables).
//! - **Typed vectors are exact**: a column is `Int` only if every
//!   non-NULL stored value is `Value::Int` — no silent widening, since
//!   the row engine distinguishes `Int(2)` from `Float(2.0)` in
//!   results. A column mixing the two (legal: `push_row` admits ints
//!   into float columns) is [`ColumnData::Mixed`] and the batch
//!   executor falls back to the row path for queries touching it.
use crate::database::Table;
use crate::key::FxBuild;
use crate::value::Value;
use std::collections::HashMap;

/// Validity bitmap: bit set ⇔ NULL.
#[derive(Debug, Clone, Default)]
pub struct NullMask {
    words: Vec<u64>,
    any: bool,
}

impl NullMask {
    fn new(len: usize) -> Self {
        NullMask {
            words: vec![0; len.div_ceil(64)],
            any: false,
        }
    }

    fn set(&mut self, i: usize) {
        self.words[i >> 6] |= 1u64 << (i & 63);
        self.any = true;
    }

    /// Whether row `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        (self.words[i >> 6] >> (i & 63)) & 1 == 1
    }

    /// Whether any row is NULL (lets kernels skip per-row checks).
    #[inline]
    pub fn any(&self) -> bool {
        self.any
    }

    /// OR the mask into per-row flags, word at a time: an all-valid
    /// word (the common case for sparse nulls) costs one compare per
    /// 64 rows instead of 64 bit probes.
    pub fn or_into(&self, out: &mut [bool]) {
        for (wi, &w) in self.words.iter().enumerate() {
            if w == 0 {
                continue;
            }
            let base = wi << 6;
            let end = out.len().min(base + 64);
            for (b, slot) in out[base..end].iter_mut().enumerate() {
                *slot |= (w >> b) & 1 == 1;
            }
        }
    }
}

/// Dictionary-encoded text column: `codes[i]` indexes `values`, which is
/// ordered by first occurrence. Codes are bijective with the distinct
/// strings of the column.
#[derive(Debug, Clone)]
pub struct DictColumn {
    /// Per-row code (placeholder `0` under null bits).
    pub codes: Vec<u32>,
    /// Distinct values, first-occurrence order.
    pub values: Vec<String>,
}

/// Typed backing storage of one column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Every non-NULL value is `Value::Int`.
    Int(Vec<i64>),
    /// Every non-NULL value is `Value::Float`.
    Float(Vec<f64>),
    /// Every non-NULL value is `Value::Bool`.
    Bool(Vec<bool>),
    /// Every non-NULL value is `Value::Text`, dictionary-encoded.
    Text(DictColumn),
    /// Every value is NULL.
    AllNull,
    /// Heterogeneous value types (e.g. ints stored in a float column):
    /// not vectorizable, queries touching it take the row path.
    Mixed,
}

/// One column: typed data plus its null bitmap.
#[derive(Debug, Clone)]
pub struct Column {
    /// Typed vector.
    pub data: ColumnData,
    /// Null bitmap (bit set ⇔ NULL).
    pub nulls: NullMask,
}

impl Column {
    /// Materialize row `i` back into a [`Value`] (result boundaries
    /// only — kernels stay on the typed vectors).
    #[inline]
    pub fn value_at(&self, i: usize) -> Value {
        if self.nulls.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Text(d) => Value::Text(d.values[d.codes[i] as usize].clone()),
            ColumnData::AllNull => Value::Null,
            ColumnData::Mixed => unreachable!("Mixed columns never reach kernels"),
        }
    }
}

/// Columnar image of one table: one [`Column`] per schema column.
#[derive(Debug, Clone)]
pub struct ColumnarTable {
    /// Columns in schema order.
    pub columns: Vec<Column>,
    /// Row count at build time (must match the row storage to be used).
    pub len: usize,
}

impl ColumnarTable {
    /// Build the columnar image of a table by scanning its row storage
    /// once per column. The first non-NULL value fixes the expected
    /// variant; any later disagreement demotes the column to
    /// [`ColumnData::Mixed`].
    pub fn build(table: &Table) -> Self {
        let len = table.rows.len();
        let width = table.def.columns.len();
        let columns = (0..width).map(|j| build_column(table, j, len)).collect();
        ColumnarTable { columns, len }
    }
}

fn build_column(table: &Table, j: usize, len: usize) -> Column {
    // Pass 1: classify. `tag` is the variant of the first non-NULL value.
    #[derive(PartialEq, Clone, Copy)]
    enum Tag {
        Int,
        Float,
        Bool,
        Text,
    }
    let mut tag: Option<Tag> = None;
    let mut mixed = false;
    for row in &table.rows {
        let t = match &row[j] {
            Value::Null => continue,
            Value::Int(_) => Tag::Int,
            Value::Float(_) => Tag::Float,
            Value::Bool(_) => Tag::Bool,
            Value::Text(_) => Tag::Text,
        };
        match tag {
            None => tag = Some(t),
            Some(seen) if seen == t => {}
            Some(_) => {
                mixed = true;
                break;
            }
        }
    }
    if mixed {
        return Column {
            data: ColumnData::Mixed,
            nulls: NullMask::new(len),
        };
    }
    let mut nulls = NullMask::new(len);
    let data = match tag {
        None => {
            for i in 0..len {
                nulls.set(i);
            }
            ColumnData::AllNull
        }
        Some(Tag::Int) => {
            let mut out = Vec::with_capacity(len);
            for (i, row) in table.rows.iter().enumerate() {
                match &row[j] {
                    Value::Int(v) => out.push(*v),
                    _ => {
                        nulls.set(i);
                        out.push(0);
                    }
                }
            }
            ColumnData::Int(out)
        }
        Some(Tag::Float) => {
            let mut out = Vec::with_capacity(len);
            for (i, row) in table.rows.iter().enumerate() {
                match &row[j] {
                    Value::Float(v) => out.push(*v),
                    _ => {
                        nulls.set(i);
                        out.push(0.0);
                    }
                }
            }
            ColumnData::Float(out)
        }
        Some(Tag::Bool) => {
            let mut out = Vec::with_capacity(len);
            for (i, row) in table.rows.iter().enumerate() {
                match &row[j] {
                    Value::Bool(v) => out.push(*v),
                    _ => {
                        nulls.set(i);
                        out.push(false);
                    }
                }
            }
            ColumnData::Bool(out)
        }
        Some(Tag::Text) => {
            let mut codes = Vec::with_capacity(len);
            let mut values: Vec<String> = Vec::new();
            let mut dict: HashMap<&str, u32, FxBuild> = HashMap::default();
            for (i, row) in table.rows.iter().enumerate() {
                match &row[j] {
                    Value::Text(s) => {
                        let code = *dict.entry(s.as_str()).or_insert_with(|| {
                            values.push(s.clone());
                            (values.len() - 1) as u32
                        });
                        codes.push(code);
                    }
                    _ => {
                        nulls.set(i);
                        codes.push(0);
                    }
                }
            }
            ColumnData::Text(DictColumn { codes, values })
        }
    };
    Column { data, nulls }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use sb_schema::{Column as SColumn, ColumnType, Schema, TableDef};

    fn table() -> Database {
        let schema = Schema::new("t").with_table(TableDef::new(
            "x",
            vec![
                SColumn::pk("id", ColumnType::Int),
                SColumn::new("f", ColumnType::Float),
                SColumn::new("s", ColumnType::Text),
                SColumn::new("b", ColumnType::Bool),
            ],
        ));
        Database::new(schema)
    }

    #[test]
    fn builds_typed_vectors_with_nulls() {
        let mut db = table();
        db.table_mut("x").unwrap().push_rows(vec![
            vec![1.into(), 0.5.into(), "a".into(), true.into()],
            vec![2.into(), Value::Null, "b".into(), Value::Null],
            vec![3.into(), 1.5.into(), "a".into(), false.into()],
        ]);
        let t = db.table("x").unwrap();
        let ct = ColumnarTable::build(t);
        assert_eq!(ct.len, 3);
        assert!(matches!(&ct.columns[0].data, ColumnData::Int(v) if v == &[1, 2, 3]));
        assert!(!ct.columns[0].nulls.any());
        assert!(ct.columns[1].nulls.is_null(1));
        let ColumnData::Text(d) = &ct.columns[2].data else {
            panic!("text column expected");
        };
        assert_eq!(d.values, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(d.codes, vec![0, 1, 0]);
        // Round trip.
        for (i, row) in t.rows.iter().enumerate() {
            for (j, col) in ct.columns.iter().enumerate() {
                assert_eq!(&col.value_at(i), &row[j], "cell ({i},{j})");
            }
        }
    }

    #[test]
    fn int_in_float_column_is_mixed() {
        let mut db = table();
        db.table_mut("x").unwrap().push_rows(vec![
            vec![1.into(), 0.5.into(), "a".into(), true.into()],
            vec![2.into(), Value::Int(2), "b".into(), true.into()],
        ]);
        let ct = ColumnarTable::build(db.table("x").unwrap());
        assert!(matches!(ct.columns[1].data, ColumnData::Mixed));
    }

    #[test]
    fn all_null_and_empty_columns() {
        let mut db = table();
        {
            let t = db.table_mut("x").unwrap();
            t.push_rows(vec![vec![1.into(), Value::Null, Value::Null, Value::Null]]);
        }
        let ct = ColumnarTable::build(db.table("x").unwrap());
        assert!(matches!(ct.columns[1].data, ColumnData::AllNull));
        assert!(ct.columns[1].nulls.is_null(0));
        assert_eq!(ct.columns[1].value_at(0), Value::Null);
    }
}
