//! A deliberately naive tuple-at-a-time reference interpreter.
//!
//! This is the oracle for differential fuzzing (`sb-fuzz`): it implements
//! the same dialect and the same documented semantics as the optimized
//! executor in [`crate::exec`], but shares none of its machinery beyond
//! [`Value`], [`ResultSet`] and the error type. Everything here is the
//! simplest possible implementation:
//!
//! - every scan deep-copies rows, every join is a nested loop,
//! - grouping and `DISTINCT` use linear scans instead of hash maps,
//! - subqueries re-execute on every use (no memoization),
//! - `LIKE` uses an iterative two-pointer matcher instead of recursion.
//!
//! The executor and this module must agree on results (as multisets, or
//! ordered lists under `ORDER BY`) and on whether a query errors. Where
//! the engine documents a divergence from Postgres (division by zero
//! yields NULL, `NULL` is not `TRUE` in filters, floats compare through
//! their 6-decimal canonical form in grouping/dedup), this module mirrors
//! the engine, not Postgres — it is an oracle for the implementation
//! contract, not a second dialect.

use crate::database::Database;
use crate::error::{EngineError, Result};
use crate::result::ResultSet;
use crate::value::Value;
use sb_sql::{
    AggArg, AggFunc, BinaryOp, ColumnRef, Expr, Literal, OrderItem, Query, Select, SelectItem,
    SetExpr, SetOp, TableFactor, TableRef, UnaryOp,
};

/// Execute a query with the reference interpreter.
pub fn execute_reference(db: &Database, query: &Query) -> Result<ResultSet> {
    match &query.body {
        SetExpr::Select(s) => select_query(db, s, &query.order_by, query.limit),
        SetExpr::SetOp { .. } => {
            let mut rs = set_expr(db, &query.body)?;
            order_output(&mut rs, &query.order_by)?;
            if let Some(n) = query.limit {
                rs.rows.truncate(n as usize);
            }
            rs.ordered = !query.order_by.is_empty();
            Ok(rs)
        }
    }
}

// ---------------------------------------------------------------------
// Name resolution.
// ---------------------------------------------------------------------

/// The relations visible to one `SELECT`, with rows concatenated in
/// `FROM`/`JOIN` order. Unlike the executor's `Scope` this stores plain
/// tuples and resolves by linear search.
#[derive(Default)]
struct Frame {
    /// `(binding name lower-cased, column names, offset)` per relation.
    rels: Vec<(String, Vec<String>, usize)>,
    width: usize,
}

impl Frame {
    fn push(&mut self, name: &str, columns: Vec<String>) {
        let offset = self.width;
        self.width += columns.len();
        self.rels.push((name.to_ascii_lowercase(), columns, offset));
    }

    fn lookup(&self, col: &ColumnRef) -> Result<usize> {
        match &col.table {
            Some(qualifier) => {
                let q = qualifier.to_ascii_lowercase();
                let (_, columns, offset) = self
                    .rels
                    .iter()
                    .find(|(name, _, _)| *name == q)
                    .ok_or_else(|| EngineError::UnknownTable(qualifier.clone()))?;
                let idx = columns
                    .iter()
                    .position(|c| c.eq_ignore_ascii_case(&col.column))
                    .ok_or_else(|| EngineError::UnknownColumn(col.to_string()))?;
                Ok(offset + idx)
            }
            None => {
                let mut found = None;
                for (_, columns, offset) in &self.rels {
                    if let Some(idx) = columns
                        .iter()
                        .position(|c| c.eq_ignore_ascii_case(&col.column))
                    {
                        if found.is_some() {
                            return Err(EngineError::AmbiguousColumn(col.column.clone()));
                        }
                        found = Some(offset + idx);
                    }
                }
                found.ok_or_else(|| EngineError::UnknownColumn(col.column.clone()))
            }
        }
    }

    fn all_columns(&self) -> Vec<String> {
        self.rels
            .iter()
            .flat_map(|(_, cols, _)| cols.iter().cloned())
            .collect()
    }
}

// ---------------------------------------------------------------------
// FROM / JOIN / WHERE: nested loops over owned rows.
// ---------------------------------------------------------------------

fn base_relation(db: &Database, tr: &TableRef) -> Result<(String, Vec<String>, Vec<Vec<Value>>)> {
    match &tr.factor {
        TableFactor::Table(name) => {
            let table = db
                .table(name)
                .ok_or_else(|| EngineError::UnknownTable(name.clone()))?;
            let binding = tr.binding().expect("named table always binds").to_string();
            let columns = table.def.columns.iter().map(|c| c.name.clone()).collect();
            let rows = table.rows.iter().map(|r| r.to_vec()).collect();
            Ok((binding, columns, rows))
        }
        TableFactor::Derived(q) => {
            let alias = tr.alias.clone().ok_or_else(|| {
                EngineError::Unsupported("derived table requires an alias".into())
            })?;
            let rs = execute_reference(db, q)?;
            Ok((alias, rs.columns, rs.rows))
        }
    }
}

/// Resolve every column reference in `e` against `frame` without
/// evaluating anything; subquery bodies have their own scopes and are
/// skipped.
fn resolve_columns(e: &Expr, frame: &Frame) -> Result<()> {
    match e {
        Expr::Column(c) => frame.lookup(c).map(|_| ()),
        Expr::Literal(_) | Expr::Subquery(_) | Expr::Exists { .. } => Ok(()),
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => resolve_columns(expr, frame),
        Expr::Binary { left, right, .. } => {
            resolve_columns(left, frame)?;
            resolve_columns(right, frame)
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            resolve_columns(expr, frame)?;
            resolve_columns(low, frame)?;
            resolve_columns(high, frame)
        }
        Expr::InList { expr, list, .. } => {
            resolve_columns(expr, frame)?;
            list.iter().try_for_each(|e| resolve_columns(e, frame))
        }
        Expr::InSubquery { expr, .. } => resolve_columns(expr, frame),
        Expr::Like { expr, pattern, .. } => {
            resolve_columns(expr, frame)?;
            resolve_columns(pattern, frame)
        }
        Expr::Agg { arg, .. } => match arg {
            AggArg::Star => Ok(()),
            AggArg::Expr(e) => resolve_columns(e, frame),
        },
    }
}

fn from_rows(db: &Database, select: &Select) -> Result<(Frame, Vec<Vec<Value>>)> {
    let (binding, columns, mut rows) = base_relation(db, &select.from)?;
    let mut frame = Frame::default();
    frame.push(&binding, columns);
    for join in &select.joins {
        let (rb, rcols, rrows) = base_relation(db, &join.table)?;
        let right_width = rcols.len();
        frame.push(&rb, rcols);
        // Like the executor, resolve the constraint's column references
        // before touching rows: an unknown-column or ambiguity error
        // must surface even when either side of the join is empty.
        if let Some(c) = &join.constraint {
            resolve_columns(c, &frame)?;
        }
        let mut out = Vec::new();
        for l in &rows {
            let mut matched = false;
            for r in &rrows {
                let mut combined = l.clone();
                combined.extend(r.iter().cloned());
                let keep = match &join.constraint {
                    Some(c) => is_true(db, c, &combined, &frame)?,
                    None => true,
                };
                if keep {
                    out.push(combined);
                    matched = true;
                }
            }
            if join.left && !matched {
                let mut row = l.clone();
                row.extend(std::iter::repeat_n(Value::Null, right_width));
                out.push(row);
            }
        }
        rows = out;
    }
    if let Some(pred) = &select.selection {
        let mut kept = Vec::new();
        for row in rows {
            if is_true(db, pred, &row, &frame)? {
                kept.push(row);
            }
        }
        rows = kept;
    }
    Ok((frame, rows))
}

// ---------------------------------------------------------------------
// SELECT core.
// ---------------------------------------------------------------------

fn is_aggregate(select: &Select, order_by: &[OrderItem]) -> bool {
    if !select.group_by.is_empty() || select.having.is_some() {
        return true;
    }
    select.projections.iter().any(|p| match p {
        SelectItem::Wildcard => false,
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
    }) || order_by.iter().any(|o| o.expr.contains_aggregate())
}

fn projection_name(item: &SelectItem) -> String {
    match item {
        SelectItem::Wildcard => "*".to_string(),
        SelectItem::Expr { expr, alias } => match alias {
            Some(a) => a.clone(),
            None => expr.to_string(),
        },
    }
}

fn row_key(row: &[Value]) -> String {
    row.iter()
        .map(Value::canonical_key)
        .collect::<Vec<_>>()
        .join("\u{1}")
}

fn select_query(
    db: &Database,
    select: &Select,
    order_by: &[OrderItem],
    limit: Option<u64>,
) -> Result<ResultSet> {
    let (frame, rows) = from_rows(db, select)?;
    let (columns, mut out_rows, mut keys) = if is_aggregate(select, order_by) {
        grouped_projection(db, select, order_by, &frame, rows)?
    } else {
        plain_projection(db, select, order_by, &frame, rows)?
    };

    if select.distinct {
        // Keep-first dedup with sort keys kept aligned; linear scan on
        // purpose (the executor hashes).
        let mut seen: Vec<String> = Vec::new();
        let mut rows2 = Vec::new();
        let mut keys2 = Vec::new();
        for (row, key) in out_rows.into_iter().zip(keys) {
            let k = row_key(&row);
            if !seen.contains(&k) {
                seen.push(k);
                rows2.push(row);
                keys2.push(key);
            }
        }
        out_rows = rows2;
        keys = keys2;
    }

    if !order_by.is_empty() {
        let mut idx: Vec<usize> = (0..out_rows.len()).collect();
        idx.sort_by(|&a, &b| {
            for (item, (ka, kb)) in order_by.iter().zip(keys[a].iter().zip(keys[b].iter())) {
                let ord = ka.total_cmp(kb);
                let ord = if item.desc { ord.reverse() } else { ord };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        out_rows = idx.into_iter().map(|i| out_rows[i].clone()).collect();
    }

    if let Some(n) = limit {
        out_rows.truncate(n as usize);
    }

    Ok(ResultSet {
        columns,
        rows: out_rows,
        ordered: !order_by.is_empty(),
    })
}

type Projected = (Vec<String>, Vec<Vec<Value>>, Vec<Vec<Value>>);

fn plain_projection(
    db: &Database,
    select: &Select,
    order_by: &[OrderItem],
    frame: &Frame,
    rows: Vec<Vec<Value>>,
) -> Result<Projected> {
    let mut columns = Vec::new();
    for item in &select.projections {
        match item {
            SelectItem::Wildcard => columns.extend(frame.all_columns()),
            other => columns.push(projection_name(other)),
        }
    }
    let mut out_rows = Vec::with_capacity(rows.len());
    let mut keys = Vec::with_capacity(rows.len());
    for row in &rows {
        let mut out = Vec::with_capacity(columns.len());
        for item in &select.projections {
            match item {
                SelectItem::Wildcard => out.extend(row.iter().cloned()),
                SelectItem::Expr { expr, .. } => out.push(eval_scalar(db, expr, row, frame)?),
            }
        }
        let mut key = Vec::with_capacity(order_by.len());
        for item in order_by {
            key.push(order_key(db, &item.expr, row, frame, select, &out)?);
        }
        out_rows.push(out);
        keys.push(key);
    }
    Ok((columns, out_rows, keys))
}

/// ORDER BY key: in-scope evaluation first, then the projection-alias
/// fallback for bare columns (same rule as the executor).
fn order_key(
    db: &Database,
    expr: &Expr,
    row: &[Value],
    frame: &Frame,
    select: &Select,
    projected: &[Value],
) -> Result<Value> {
    match eval_scalar(db, expr, row, frame) {
        Ok(v) => Ok(v),
        Err(EngineError::UnknownColumn(_)) => {
            if let Expr::Column(c) = expr {
                if c.table.is_none() {
                    for (i, item) in select.projections.iter().enumerate() {
                        if let SelectItem::Expr { alias: Some(a), .. } = item {
                            if a.eq_ignore_ascii_case(&c.column) {
                                return Ok(projected[i].clone());
                            }
                        }
                    }
                }
            }
            Err(EngineError::UnknownColumn(expr.to_string()))
        }
        Err(e) => Err(e),
    }
}

fn grouped_projection(
    db: &Database,
    select: &Select,
    order_by: &[OrderItem],
    frame: &Frame,
    rows: Vec<Vec<Value>>,
) -> Result<Projected> {
    // Groups in first-occurrence order, found by linear key scan.
    let mut group_keys: Vec<String> = Vec::new();
    let mut groups: Vec<Vec<Vec<Value>>> = Vec::new();
    if select.group_by.is_empty() {
        // One implicit group, even over zero rows.
        groups.push(rows);
    } else {
        for row in rows {
            let mut key = String::new();
            for ge in &select.group_by {
                key.push_str(&eval_scalar(db, ge, &row, frame)?.canonical_key());
                key.push('\u{1}');
            }
            match group_keys.iter().position(|k| *k == key) {
                Some(i) => groups[i].push(row),
                None => {
                    group_keys.push(key);
                    groups.push(vec![row]);
                }
            }
        }
    }

    let mut columns = Vec::new();
    for item in &select.projections {
        match item {
            SelectItem::Wildcard => {
                return Err(EngineError::Unsupported(
                    "SELECT * with GROUP BY / aggregates".into(),
                ))
            }
            other => columns.push(projection_name(other)),
        }
    }

    let mut out_rows = Vec::new();
    let mut keys = Vec::new();
    for group in &groups {
        if let Some(h) = &select.having {
            let v = eval_grouped(db, h, group, frame)?;
            if !truth(v)?.unwrap_or(false) {
                continue;
            }
        }
        let mut out = Vec::with_capacity(columns.len());
        for item in &select.projections {
            if let SelectItem::Expr { expr, .. } = item {
                out.push(eval_grouped(db, expr, group, frame)?);
            }
        }
        let mut key = Vec::with_capacity(order_by.len());
        for item in order_by {
            key.push(eval_grouped(db, &item.expr, group, frame)?);
        }
        out_rows.push(out);
        keys.push(key);
    }
    Ok((columns, out_rows, keys))
}

/// Group-context evaluation: aggregates consume the group, binary/unary
/// nodes combine grouped operands, everything else reads the first row
/// (GROUP BY keys are constant within a group).
fn eval_grouped(db: &Database, expr: &Expr, group: &[Vec<Value>], frame: &Frame) -> Result<Value> {
    match expr {
        Expr::Agg {
            func,
            distinct,
            arg,
        } => eval_aggregate(db, *func, *distinct, arg, group, frame),
        Expr::Binary { left, op, right } => {
            let l = eval_grouped(db, left, group, frame)?;
            let r = eval_grouped(db, right, group, frame)?;
            apply_binary(*op, l, r)
        }
        Expr::Unary { op, expr } => {
            let v = eval_grouped(db, expr, group, frame)?;
            apply_unary(*op, v)
        }
        other => match group.first() {
            Some(row) => eval_scalar(db, other, row, frame),
            None => Ok(Value::Null),
        },
    }
}

fn eval_aggregate(
    db: &Database,
    func: AggFunc,
    distinct: bool,
    arg: &AggArg,
    group: &[Vec<Value>],
    frame: &Frame,
) -> Result<Value> {
    if matches!((func, arg), (AggFunc::Count, AggArg::Star)) {
        return Ok(Value::Int(group.len() as i64));
    }
    let AggArg::Expr(e) = arg else {
        return Err(EngineError::Unsupported(format!(
            "{}(*) is only valid for COUNT",
            func.as_str()
        )));
    };
    let mut values = Vec::new();
    for row in group {
        let v = eval_scalar(db, e, row, frame)?;
        if !v.is_null() {
            values.push(v);
        }
    }
    if distinct {
        let mut seen: Vec<String> = Vec::new();
        values.retain(|v| {
            let k = v.canonical_key();
            if seen.contains(&k) {
                false
            } else {
                seen.push(k);
                true
            }
        });
    }
    match func {
        AggFunc::Count => Ok(Value::Int(values.len() as i64)),
        AggFunc::Sum => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            if values.iter().all(|v| matches!(v, Value::Int(_))) {
                let mut sum = 0i64;
                for v in &values {
                    if let Value::Int(i) = v {
                        sum = sum
                            .checked_add(*i)
                            .ok_or_else(|| EngineError::Overflow("SUM exceeds i64".to_string()))?;
                    }
                }
                Ok(Value::Int(sum))
            } else {
                let mut sum = 0.0;
                for v in &values {
                    sum += v.as_f64().ok_or_else(|| {
                        EngineError::TypeMismatch(format!("SUM over non-numeric value {v}"))
                    })?;
                }
                Ok(Value::Float(sum))
            }
        }
        AggFunc::Avg => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let mut sum = 0.0;
            for v in &values {
                sum += v.as_f64().ok_or_else(|| {
                    EngineError::TypeMismatch(format!("AVG over non-numeric value {v}"))
                })?;
            }
            Ok(Value::Float(sum / values.len() as f64))
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<Value> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => match v.compare(&b) {
                        Some(ord) => {
                            let take_new = (func == AggFunc::Min && ord.is_lt())
                                || (func == AggFunc::Max && ord.is_gt());
                            if take_new {
                                v
                            } else {
                                b
                            }
                        }
                        None => {
                            return Err(EngineError::TypeMismatch(
                                "MIN/MAX over mixed types".into(),
                            ))
                        }
                    },
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
    }
}

// ---------------------------------------------------------------------
// Set operations: linear-scan dedup and membership.
// ---------------------------------------------------------------------

fn set_expr(db: &Database, body: &SetExpr) -> Result<ResultSet> {
    match body {
        SetExpr::Select(s) => select_query(db, s, &[], None),
        SetExpr::SetOp {
            op,
            all,
            left,
            right,
        } => {
            let l = set_expr(db, left)?;
            let r = set_expr(db, right)?;
            if l.columns.len() != r.columns.len() {
                return Err(EngineError::TypeMismatch(format!(
                    "set operands have {} vs {} columns",
                    l.columns.len(),
                    r.columns.len()
                )));
            }
            let rows = match op {
                SetOp::Union => {
                    let mut rows = l.rows;
                    rows.extend(r.rows);
                    if !*all {
                        rows = dedup(rows);
                    }
                    rows
                }
                SetOp::Intersect => {
                    let right_keys: Vec<String> = r.rows.iter().map(|row| row_key(row)).collect();
                    dedup(
                        l.rows
                            .into_iter()
                            .filter(|row| right_keys.contains(&row_key(row)))
                            .collect(),
                    )
                }
                SetOp::Except => {
                    let right_keys: Vec<String> = r.rows.iter().map(|row| row_key(row)).collect();
                    dedup(
                        l.rows
                            .into_iter()
                            .filter(|row| !right_keys.contains(&row_key(row)))
                            .collect(),
                    )
                }
            };
            Ok(ResultSet {
                columns: l.columns,
                rows,
                ordered: false,
            })
        }
    }
}

fn dedup(rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    let mut seen: Vec<String> = Vec::new();
    let mut out = Vec::new();
    for row in rows {
        let k = row_key(&row);
        if !seen.contains(&k) {
            seen.push(k);
            out.push(row);
        }
    }
    out
}

/// Order a set-operation result by output column name or 1-based ordinal.
/// Out-of-range ordinals are an error, not a panic.
fn order_output(rs: &mut ResultSet, order_by: &[OrderItem]) -> Result<()> {
    if order_by.is_empty() {
        return Ok(());
    }
    let mut key_idx = Vec::with_capacity(order_by.len());
    for item in order_by {
        let idx = match &item.expr {
            Expr::Column(c) if c.table.is_none() => rs
                .columns
                .iter()
                .position(|name| name.eq_ignore_ascii_case(&c.column))
                .ok_or_else(|| EngineError::UnknownColumn(c.column.clone()))?,
            Expr::Literal(Literal::Int(n)) if *n >= 1 && (*n as usize) <= rs.columns.len() => {
                (*n as usize) - 1
            }
            Expr::Literal(Literal::Int(n)) => {
                return Err(EngineError::UnknownColumn(format!(
                    "ORDER BY position {n} of {} columns",
                    rs.columns.len()
                )))
            }
            other => {
                return Err(EngineError::Unsupported(format!(
                    "ORDER BY `{other}` after a set operation (use an output column)"
                )))
            }
        };
        key_idx.push((idx, item.desc));
    }
    rs.rows.sort_by(|a, b| {
        for (idx, desc) in &key_idx {
            let ord = a[*idx].total_cmp(&b[*idx]);
            let ord = if *desc { ord.reverse() } else { ord };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(())
}

// ---------------------------------------------------------------------
// Scalar evaluation.
// ---------------------------------------------------------------------

fn truth(v: Value) -> Result<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(b)),
        other => Err(EngineError::TypeMismatch(format!(
            "expected boolean predicate, got {other}"
        ))),
    }
}

fn is_true(db: &Database, expr: &Expr, row: &[Value], frame: &Frame) -> Result<bool> {
    Ok(truth(eval_scalar(db, expr, row, frame)?)?.unwrap_or(false))
}

fn literal_value(l: &Literal) -> Value {
    match l {
        Literal::Null => Value::Null,
        Literal::Int(v) => Value::Int(*v),
        Literal::Float(v) => Value::Float(*v),
        Literal::Str(s) => Value::Text(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
    }
}

fn eval_scalar(db: &Database, expr: &Expr, row: &[Value], frame: &Frame) -> Result<Value> {
    match expr {
        Expr::Column(c) => Ok(row[frame.lookup(c)?].clone()),
        Expr::Literal(l) => Ok(literal_value(l)),
        Expr::Unary { op, expr } => {
            let v = eval_scalar(db, expr, row, frame)?;
            apply_unary(*op, v)
        }
        Expr::Binary { left, op, right } => {
            if matches!(op, BinaryOp::And | BinaryOp::Or) {
                // Three-valued logic with the same short-circuiting as the
                // executor (so errors in the pruned operand stay invisible).
                let l = truth(eval_scalar(db, left, row, frame)?)?;
                match (op, l) {
                    (BinaryOp::And, Some(false)) => return Ok(Value::Bool(false)),
                    (BinaryOp::Or, Some(true)) => return Ok(Value::Bool(true)),
                    _ => {}
                }
                let r = truth(eval_scalar(db, right, row, frame)?)?;
                let out = match op {
                    BinaryOp::And => match (l, r) {
                        (Some(false), _) | (_, Some(false)) => Some(false),
                        (Some(true), Some(true)) => Some(true),
                        _ => None,
                    },
                    _ => match (l, r) {
                        (Some(true), _) | (_, Some(true)) => Some(true),
                        (Some(false), Some(false)) => Some(false),
                        _ => None,
                    },
                };
                return Ok(match out {
                    Some(b) => Value::Bool(b),
                    None => Value::Null,
                });
            }
            let l = eval_scalar(db, left, row, frame)?;
            let r = eval_scalar(db, right, row, frame)?;
            apply_binary(*op, l, r)
        }
        Expr::Agg { .. } => Err(EngineError::Unsupported(
            "aggregate function outside GROUP BY context".into(),
        )),
        Expr::Between {
            expr,
            negated,
            low,
            high,
        } => {
            let v = eval_scalar(db, expr, row, frame)?;
            let lo = eval_scalar(db, low, row, frame)?;
            let hi = eval_scalar(db, high, row, frame)?;
            let ge = v.compare(&lo).map(|o| o.is_ge());
            let le = v.compare(&hi).map(|o| o.is_le());
            let within = match (ge, le) {
                (Some(a), Some(b)) => Some(a && b),
                (Some(false), _) | (_, Some(false)) => Some(false),
                _ => None,
            };
            Ok(match within {
                Some(b) => Value::Bool(b != *negated),
                None => Value::Null,
            })
        }
        Expr::InList {
            expr,
            negated,
            list,
        } => {
            let v = eval_scalar(db, expr, row, frame)?;
            let mut saw_null = v.is_null();
            let mut found = false;
            for item in list {
                let iv = eval_scalar(db, item, row, frame)?;
                match v.sql_eq(&iv) {
                    Some(true) => {
                        found = true;
                        break;
                    }
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            Ok(in_result(found, saw_null, *negated))
        }
        Expr::InSubquery {
            expr,
            negated,
            subquery,
        } => {
            let v = eval_scalar(db, expr, row, frame)?;
            let rs = execute_reference(db, subquery)?;
            if rs.columns.len() != 1 {
                return Err(EngineError::CardinalityViolation(format!(
                    "IN subquery returns {} columns",
                    rs.columns.len()
                )));
            }
            let mut saw_null = v.is_null();
            let mut found = false;
            for r in &rs.rows {
                match v.sql_eq(&r[0]) {
                    Some(true) => {
                        found = true;
                        break;
                    }
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            Ok(in_result(found, saw_null, *negated))
        }
        Expr::Like {
            expr,
            negated,
            pattern,
        } => {
            let v = eval_scalar(db, expr, row, frame)?;
            let p = eval_scalar(db, pattern, row, frame)?;
            match (v, p) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Text(s), Value::Text(pat)) => {
                    Ok(Value::Bool(like_iterative(&s, &pat) != *negated))
                }
                (a, b) => Err(EngineError::TypeMismatch(format!(
                    "LIKE requires text operands, got {a} and {b}"
                ))),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_scalar(db, expr, row, frame)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Subquery(q) => {
            let rs = execute_reference(db, q)?;
            if rs.columns.len() != 1 {
                return Err(EngineError::CardinalityViolation(format!(
                    "scalar subquery returns {} columns",
                    rs.columns.len()
                )));
            }
            match rs.rows.len() {
                0 => Ok(Value::Null),
                1 => Ok(rs.rows[0][0].clone()),
                n => Err(EngineError::CardinalityViolation(format!(
                    "scalar subquery returns {n} rows"
                ))),
            }
        }
        Expr::Exists { negated, subquery } => {
            let rs = execute_reference(db, subquery)?;
            Ok(Value::Bool(rs.rows.is_empty() == *negated))
        }
    }
}

fn in_result(found: bool, saw_null: bool, negated: bool) -> Value {
    if found {
        Value::Bool(!negated)
    } else if saw_null {
        Value::Null
    } else {
        Value::Bool(negated)
    }
}

fn apply_unary(op: UnaryOp, v: Value) -> Result<Value> {
    match op {
        UnaryOp::Neg => match v {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => i
                .checked_neg()
                .map(Value::Int)
                .ok_or_else(|| EngineError::Overflow(format!("negating {i} exceeds i64"))),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(EngineError::TypeMismatch(format!("cannot negate {other}"))),
        },
        UnaryOp::Not => match v {
            Value::Null => Ok(Value::Null),
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => Err(EngineError::TypeMismatch(format!("NOT applied to {other}"))),
        },
    }
}

/// Apply a non-short-circuit binary operator to two computed values. Also
/// covers AND/OR over already-computed operands (the grouped path), where
/// the executor's literal re-wrapping keeps its short-circuit on the left
/// truth value.
fn apply_binary(op: BinaryOp, l: Value, r: Value) -> Result<Value> {
    if matches!(op, BinaryOp::And | BinaryOp::Or) {
        let lt = truth(l)?;
        match (op, lt) {
            (BinaryOp::And, Some(false)) => return Ok(Value::Bool(false)),
            (BinaryOp::Or, Some(true)) => return Ok(Value::Bool(true)),
            _ => {}
        }
        let rt = truth(r)?;
        let out = match op {
            BinaryOp::And => match (lt, rt) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            _ => match (lt, rt) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
        };
        return Ok(match out {
            Some(b) => Value::Bool(b),
            None => Value::Null,
        });
    }
    if op.is_arithmetic() {
        return arith(op, &l, &r);
    }
    match l.compare(&r) {
        None if l.is_null() || r.is_null() => Ok(Value::Null),
        None => Err(EngineError::TypeMismatch(format!(
            "cannot compare {l} with {r}"
        ))),
        Some(ord) => {
            let b = match op {
                BinaryOp::Eq => ord.is_eq(),
                BinaryOp::NotEq => !ord.is_eq(),
                BinaryOp::Lt => ord.is_lt(),
                BinaryOp::LtEq => ord.is_le(),
                BinaryOp::Gt => ord.is_gt(),
                BinaryOp::GtEq => ord.is_ge(),
                _ => unreachable!("logical and arithmetic handled above"),
            };
            Ok(Value::Bool(b))
        }
    }
}

fn arith(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            // Checked arithmetic with the exact error the executor's
            // `eval::arith` raises: overflow is a defined outcome the two
            // implementations must agree on, not a wrap or a panic.
            let overflow =
                || EngineError::Overflow(format!("integer arithmetic on {a} and {b} exceeds i64"));
            Ok(match op {
                BinaryOp::Add => Value::Int(a.checked_add(*b).ok_or_else(overflow)?),
                BinaryOp::Sub => Value::Int(a.checked_sub(*b).ok_or_else(overflow)?),
                BinaryOp::Mul => Value::Int(a.checked_mul(*b).ok_or_else(overflow)?),
                BinaryOp::Div => {
                    if *b == 0 {
                        Value::Null
                    } else {
                        Value::Int(a.checked_div(*b).ok_or_else(overflow)?)
                    }
                }
                _ => unreachable!(),
            })
        }
        _ => {
            let a = l
                .as_f64()
                .ok_or_else(|| EngineError::TypeMismatch(format!("non-numeric operand {l}")))?;
            let b = r
                .as_f64()
                .ok_or_else(|| EngineError::TypeMismatch(format!("non-numeric operand {r}")))?;
            Ok(match op {
                BinaryOp::Add => Value::Float(a + b),
                BinaryOp::Sub => Value::Float(a - b),
                BinaryOp::Mul => Value::Float(a * b),
                BinaryOp::Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a / b)
                    }
                }
                _ => unreachable!(),
            })
        }
    }
}

/// `LIKE` via the classic iterative two-pointer wildcard matcher: `%`
/// matches any byte run, `_` exactly one byte. The executor's
/// `eval::like_match` now uses the same algorithm (its old recursive
/// matcher was exponential on multi-`%` patterns) but the copies stay
/// independent — the reference shares no evaluation machinery.
fn like_iterative(s: &str, pattern: &str) -> bool {
    let s = s.as_bytes();
    let p = pattern.as_bytes();
    let (mut si, mut pi) = (0usize, 0usize);
    let mut star: Option<usize> = None;
    let mut mark = 0usize;
    while si < s.len() {
        if pi < p.len() && (p[pi] == b'_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == b'%' {
            star = Some(pi);
            mark = si;
            pi += 1;
        } else if let Some(sp) = star {
            pi = sp + 1;
            mark += 1;
            si = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec;
    use sb_schema::{Column, ColumnType, Schema, TableDef};

    fn db() -> Database {
        let schema = Schema::new("t")
            .with_table(TableDef::new(
                "specobj",
                vec![
                    Column::pk("specobjid", ColumnType::Int),
                    Column::new("class", ColumnType::Text),
                    Column::new("z", ColumnType::Float),
                    Column::new("bestobjid", ColumnType::Int),
                ],
            ))
            .with_table(TableDef::new(
                "photoobj",
                vec![
                    Column::pk("objid", ColumnType::Int),
                    Column::new("u", ColumnType::Float),
                ],
            ));
        let mut db = Database::new(schema);
        db.table_mut("specobj").unwrap().push_rows(vec![
            vec![1.into(), "GALAXY".into(), 0.7.into(), 10.into()],
            vec![2.into(), "GALAXY".into(), 1.5.into(), 20.into()],
            vec![3.into(), "STAR".into(), 0.0.into(), 30.into()],
            vec![4.into(), "QSO".into(), 2.5.into(), Value::Null],
        ]);
        db.table_mut("photoobj").unwrap().push_rows(vec![
            vec![10.into(), 18.0.into()],
            vec![20.into(), 19.0.into()],
        ]);
        db
    }

    fn agree(sql: &str) {
        let db = db();
        let q = sb_sql::parse(sql).unwrap();
        let reference = execute_reference(&db, &q);
        let engine = exec::execute(&db, &q);
        match (reference, engine) {
            (Ok(a), Ok(b)) => assert!(a.same_result(&b), "diverged on {sql}: {a:?} vs {b:?}"),
            (Err(_), Err(_)) => {}
            (a, b) => panic!("error mismatch on {sql}: ref {a:?} vs engine {b:?}"),
        }
    }

    #[test]
    fn agrees_with_executor_on_dialect_samples() {
        for sql in [
            "SELECT specobjid FROM specobj WHERE class = 'GALAXY' AND z > 0.5",
            "SELECT s.specobjid, p.objid FROM specobj AS s \
             JOIN photoobj AS p ON s.bestobjid = p.objid",
            "SELECT s.specobjid, p.objid FROM specobj AS s \
             LEFT JOIN photoobj AS p ON s.bestobjid = p.objid WHERE p.objid IS NULL",
            "SELECT class, COUNT(*) FROM specobj GROUP BY class HAVING COUNT(*) >= 2",
            "SELECT class, MAX(z) - MIN(z) FROM specobj GROUP BY class ORDER BY class",
            "SELECT DISTINCT class FROM specobj ORDER BY class DESC LIMIT 2",
            "SELECT specobjid FROM specobj WHERE z BETWEEN 0.5 AND 2 \
             AND class IN ('GALAXY', 'QSO')",
            "SELECT specobjid FROM specobj WHERE bestobjid IN (SELECT objid FROM photoobj)",
            "SELECT specobjid FROM specobj WHERE bestobjid NOT IN (SELECT objid FROM photoobj)",
            "SELECT specobjid FROM specobj WHERE z > (SELECT AVG(z) FROM specobj)",
            "SELECT class FROM specobj WHERE class LIKE '%AL%'",
            "SELECT class FROM specobj UNION SELECT class FROM specobj ORDER BY class",
            "SELECT class FROM specobj WHERE z > 1 INTERSECT \
             SELECT class FROM specobj WHERE z < 1",
            "SELECT class FROM specobj EXCEPT SELECT class FROM specobj WHERE class = 'STAR'",
            "SELECT g.class, g.n FROM (SELECT class, COUNT(*) AS n FROM specobj \
             GROUP BY class) AS g WHERE g.n >= 2",
            "SELECT COUNT(*), SUM(z) FROM specobj WHERE class = 'NOPE'",
            "SELECT nope FROM specobj",
            "SELECT * FROM nope",
        ] {
            agree(sql);
        }
    }

    #[test]
    fn like_matcher_agrees_with_engine_matcher() {
        let cases = [
            ("starburst", "star%"),
            ("starburst", "%burst"),
            ("starburst", "%arb%"),
            ("abc", "a_c"),
            ("abc", "a_d"),
            ("", "%"),
            ("", "_"),
            ("abc", "%%c"),
            ("ABC", "abc"),
            ("aaab", "%a_b"),
            ("mississippi", "m%iss%pi"),
            ("mississippi", "m%iss%x"),
        ];
        for (s, p) in cases {
            assert_eq!(
                like_iterative(s, p),
                crate::eval::like_match(s, p),
                "LIKE mismatch on ({s}, {p})"
            );
        }
    }
}
