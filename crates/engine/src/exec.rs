//! The query executor.
//!
//! A straightforward pull-everything-into-vectors executor: build the
//! joined row stream, filter, optionally group, project, sort, limit. Joins
//! use a hash join when the `ON` constraint is a simple column equality and
//! fall back to a nested loop otherwise.

use crate::database::Database;
use crate::error::{EngineError, Result};
use crate::eval::{eval, eval_filter, truth, EvalContext, Scope};
use crate::result::ResultSet;
use crate::value::Value;
use sb_sql::{
    AggArg, AggFunc, BinaryOp, Expr, Join, OrderItem, Query, Select, SelectItem, SetExpr, SetOp,
    TableFactor, TableRef,
};
use std::collections::{HashMap, HashSet};

/// Execute a parsed query against a database.
pub fn execute(db: &Database, query: &Query) -> Result<ResultSet> {
    match &query.body {
        SetExpr::Select(select) => {
            execute_select(db, select, &query.order_by, query.limit)
        }
        SetExpr::SetOp { .. } => {
            let mut rs = execute_set_expr(db, &query.body)?;
            apply_output_order(&mut rs, &query.order_by)?;
            if let Some(n) = query.limit {
                rs.rows.truncate(n as usize);
            }
            rs.ordered = !query.order_by.is_empty();
            Ok(rs)
        }
    }
}

fn execute_set_expr(db: &Database, body: &SetExpr) -> Result<ResultSet> {
    match body {
        SetExpr::Select(s) => execute_select(db, s, &[], None),
        SetExpr::SetOp {
            op,
            all,
            left,
            right,
        } => {
            let l = execute_set_expr(db, left)?;
            let r = execute_set_expr(db, right)?;
            if l.columns.len() != r.columns.len() {
                return Err(EngineError::TypeMismatch(format!(
                    "set operands have {} vs {} columns",
                    l.columns.len(),
                    r.columns.len()
                )));
            }
            let key = |row: &Vec<Value>| {
                row.iter()
                    .map(Value::canonical_key)
                    .collect::<Vec<_>>()
                    .join("\u{1}")
            };
            let rows = match op {
                SetOp::Union => {
                    let mut rows = l.rows;
                    rows.extend(r.rows);
                    if !*all {
                        dedup_rows(&mut rows);
                    }
                    rows
                }
                SetOp::Intersect => {
                    let right_keys: HashSet<String> = r.rows.iter().map(key).collect();
                    let mut rows: Vec<Vec<Value>> = l
                        .rows
                        .into_iter()
                        .filter(|row| right_keys.contains(&key(row)))
                        .collect();
                    // INTERSECT / EXCEPT have set semantics in SQL.
                    dedup_rows(&mut rows);
                    rows
                }
                SetOp::Except => {
                    let right_keys: HashSet<String> = r.rows.iter().map(key).collect();
                    let mut rows: Vec<Vec<Value>> = l
                        .rows
                        .into_iter()
                        .filter(|row| !right_keys.contains(&key(row)))
                        .collect();
                    dedup_rows(&mut rows);
                    rows
                }
            };
            Ok(ResultSet {
                columns: l.columns,
                rows,
                ordered: false,
            })
        }
    }
}

fn dedup_rows(rows: &mut Vec<Vec<Value>>) {
    let mut seen = HashSet::new();
    rows.retain(|row| {
        let k = row
            .iter()
            .map(Value::canonical_key)
            .collect::<Vec<_>>()
            .join("\u{1}");
        seen.insert(k)
    });
}

/// Resolve a table reference to `(binding name, column names, rows)`.
fn resolve_table_ref(
    db: &Database,
    tr: &TableRef,
) -> Result<(String, Vec<String>, Vec<Vec<Value>>)> {
    match &tr.factor {
        TableFactor::Table(name) => {
            let table = db
                .table(name)
                .ok_or_else(|| EngineError::UnknownTable(name.clone()))?;
            let binding = tr.binding().expect("named table always binds").to_string();
            let columns = table.def.columns.iter().map(|c| c.name.clone()).collect();
            Ok((binding, columns, table.rows.clone()))
        }
        TableFactor::Derived(q) => {
            let alias = tr.alias.clone().ok_or_else(|| {
                EngineError::Unsupported("derived table requires an alias".into())
            })?;
            let rs = execute(db, q)?;
            Ok((alias, rs.columns, rs.rows))
        }
    }
}

/// Try to use a hash join: the constraint must be `left_col = right_col`
/// with one side resolving in the already-built scope and the other in the
/// newly joined relation.
fn equi_join_keys(
    constraint: &Expr,
    left_scope: &Scope,
    right_cols: &[String],
    right_binding: &str,
) -> Option<(usize, usize)> {
    let Expr::Binary {
        left,
        op: BinaryOp::Eq,
        right,
    } = constraint
    else {
        return None;
    };
    let (Expr::Column(a), Expr::Column(b)) = (left.as_ref(), right.as_ref()) else {
        return None;
    };
    let resolve_right = |c: &sb_sql::ColumnRef| -> Option<usize> {
        match &c.table {
            Some(t) if t.eq_ignore_ascii_case(right_binding) => right_cols
                .iter()
                .position(|col| col.eq_ignore_ascii_case(&c.column)),
            Some(_) => None,
            None => right_cols
                .iter()
                .position(|col| col.eq_ignore_ascii_case(&c.column)),
        }
    };
    // Either (a in left, b in right) or (b in left, a in right).
    if let (Ok(li), Some(ri)) = (left_scope.resolve(a), resolve_right(b)) {
        return Some((li, ri));
    }
    if let (Ok(li), Some(ri)) = (left_scope.resolve(b), resolve_right(a)) {
        return Some((li, ri));
    }
    None
}

/// Build the joined rows for `FROM ... JOIN ...`.
fn build_from(
    db: &Database,
    from: &TableRef,
    joins: &[Join],
    ctx: &EvalContext,
) -> Result<(Scope, Vec<Vec<Value>>)> {
    let mut scope = Scope::default();
    let (binding, columns, mut rows) = resolve_table_ref(db, from)?;
    scope.push(&binding, columns);

    for join in joins {
        let (jbinding, jcolumns, jrows) = resolve_table_ref(db, &join.table)?;
        let right_width = jcolumns.len();

        // Attempt hash join on a column equality before extending the
        // scope (so "left side" means the scope built so far).
        let hash_keys = join
            .constraint
            .as_ref()
            .and_then(|c| equi_join_keys(c, &scope, &jcolumns, &jbinding));

        scope.push(&jbinding, jcolumns);

        let mut out = Vec::new();
        match hash_keys {
            Some((li, ri)) => {
                let mut index: HashMap<String, Vec<&Vec<Value>>> = HashMap::new();
                for r in &jrows {
                    if !r[ri].is_null() {
                        index.entry(r[ri].canonical_key()).or_default().push(r);
                    }
                }
                for l in &rows {
                    let mut matched = false;
                    if !l[li].is_null() {
                        if let Some(bucket) = index.get(&l[li].canonical_key()) {
                            for r in bucket {
                                let mut row = l.clone();
                                row.extend((*r).iter().cloned());
                                out.push(row);
                                matched = true;
                            }
                        }
                    }
                    if join.left && !matched {
                        let mut row = l.clone();
                        row.extend(std::iter::repeat_n(Value::Null, right_width));
                        out.push(row);
                    }
                }
            }
            None => {
                // Nested loop with the full predicate (or cross join).
                for l in &rows {
                    let mut matched = false;
                    for r in &jrows {
                        let mut row = l.clone();
                        row.extend(r.iter().cloned());
                        let keep = match &join.constraint {
                            Some(c) => eval_filter(c, &row, &scope, ctx)?,
                            None => true,
                        };
                        if keep {
                            out.push(row);
                            matched = true;
                        }
                    }
                    if join.left && !matched {
                        let mut row = l.clone();
                        row.extend(std::iter::repeat_n(Value::Null, right_width));
                        out.push(row);
                    }
                }
            }
        }
        rows = out;
    }
    Ok((scope, rows))
}

/// Whether the select needs grouped (aggregate) evaluation.
fn is_aggregate_query(select: &Select, order_by: &[OrderItem]) -> bool {
    if !select.group_by.is_empty() || select.having.is_some() {
        return true;
    }
    let proj_agg = select.projections.iter().any(|p| match p {
        SelectItem::Wildcard => false,
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
    });
    proj_agg || order_by.iter().any(|o| o.expr.contains_aggregate())
}

/// Output column name for a projection item.
fn projection_name(item: &SelectItem) -> String {
    match item {
        SelectItem::Wildcard => "*".to_string(),
        SelectItem::Expr { expr, alias } => match alias {
            Some(a) => a.clone(),
            None => expr.to_string(),
        },
    }
}

fn execute_select(
    db: &Database,
    select: &Select,
    order_by: &[OrderItem],
    limit: Option<u64>,
) -> Result<ResultSet> {
    let ctx = EvalContext::new(db);
    let (scope, mut rows) = build_from(db, &select.from, &select.joins, &ctx)?;

    if let Some(pred) = &select.selection {
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            if eval_filter(pred, &row, &scope, &ctx)? {
                kept.push(row);
            }
        }
        rows = kept;
    }

    let (columns, mut out_rows, mut keys) = if is_aggregate_query(select, order_by) {
        execute_grouped(select, order_by, &scope, rows, &ctx)?
    } else {
        execute_plain(select, order_by, &scope, rows, &ctx)?
    };

    if select.distinct {
        // Dedup rows, keeping sort keys aligned.
        let mut seen = HashSet::new();
        let mut rows2 = Vec::new();
        let mut keys2 = Vec::new();
        for (row, key) in out_rows.into_iter().zip(keys) {
            let k = row
                .iter()
                .map(Value::canonical_key)
                .collect::<Vec<_>>()
                .join("\u{1}");
            if seen.insert(k) {
                rows2.push(row);
                keys2.push(key);
            }
        }
        out_rows = rows2;
        keys = keys2;
    }

    if !order_by.is_empty() {
        let mut idx: Vec<usize> = (0..out_rows.len()).collect();
        idx.sort_by(|&a, &b| {
            for (item, (ka, kb)) in order_by.iter().zip(keys[a].iter().zip(keys[b].iter())) {
                let ord = ka.total_cmp(kb);
                let ord = if item.desc { ord.reverse() } else { ord };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        out_rows = idx.into_iter().map(|i| out_rows[i].clone()).collect();
    }

    if let Some(n) = limit {
        out_rows.truncate(n as usize);
    }

    Ok(ResultSet {
        columns,
        rows: out_rows,
        ordered: !order_by.is_empty(),
    })
}

type Projected = (Vec<String>, Vec<Vec<Value>>, Vec<Vec<Value>>);

/// Non-aggregate path: project each row, computing sort keys in-scope.
fn execute_plain(
    select: &Select,
    order_by: &[OrderItem],
    scope: &Scope,
    rows: Vec<Vec<Value>>,
    ctx: &EvalContext,
) -> Result<Projected> {
    let mut columns = Vec::new();
    for item in &select.projections {
        match item {
            SelectItem::Wildcard => columns.extend(scope.all_columns()),
            other => columns.push(projection_name(other)),
        }
    }
    let mut out_rows = Vec::with_capacity(rows.len());
    let mut keys = Vec::with_capacity(rows.len());
    for row in &rows {
        let mut out = Vec::with_capacity(columns.len());
        for item in &select.projections {
            match item {
                SelectItem::Wildcard => out.extend(row.iter().cloned()),
                SelectItem::Expr { expr, .. } => out.push(eval(expr, row, scope, ctx)?),
            }
        }
        let mut key = Vec::with_capacity(order_by.len());
        for item in order_by {
            key.push(eval_order_key(&item.expr, row, scope, ctx, select, &out)?);
        }
        out_rows.push(out);
        keys.push(key);
    }
    Ok((columns, out_rows, keys))
}

/// Evaluate an ORDER BY key: prefer in-scope evaluation; fall back to a
/// projection alias or output-column name.
fn eval_order_key(
    expr: &Expr,
    row: &[Value],
    scope: &Scope,
    ctx: &EvalContext,
    select: &Select,
    projected: &[Value],
) -> Result<Value> {
    match eval(expr, row, scope, ctx) {
        Ok(v) => Ok(v),
        Err(EngineError::UnknownColumn(_)) => {
            // Maybe it names a projection alias.
            if let Expr::Column(c) = expr {
                if c.table.is_none() {
                    for (i, item) in select.projections.iter().enumerate() {
                        if let SelectItem::Expr { alias: Some(a), .. } = item {
                            if a.eq_ignore_ascii_case(&c.column) {
                                return Ok(projected[i].clone());
                            }
                        }
                    }
                }
            }
            Err(EngineError::UnknownColumn(expr.to_string()))
        }
        Err(e) => Err(e),
    }
}

/// Aggregate path: group, filter with HAVING, project per group.
fn execute_grouped(
    select: &Select,
    order_by: &[OrderItem],
    scope: &Scope,
    rows: Vec<Vec<Value>>,
    ctx: &EvalContext,
) -> Result<Projected> {
    // Group rows by evaluated GROUP BY key.
    let mut groups: Vec<Vec<Vec<Value>>> = Vec::new();
    if select.group_by.is_empty() {
        // Single implicit group — even over zero rows (COUNT(*) = 0).
        groups.push(rows);
    } else {
        let mut index: HashMap<String, usize> = HashMap::new();
        for row in rows {
            let mut key = String::new();
            for ge in &select.group_by {
                key.push_str(&eval(ge, &row, scope, ctx)?.canonical_key());
                key.push('\u{1}');
            }
            let slot = *index.entry(key).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[slot].push(row);
        }
    }

    let mut columns = Vec::new();
    for item in &select.projections {
        match item {
            SelectItem::Wildcard => {
                return Err(EngineError::Unsupported(
                    "SELECT * with GROUP BY / aggregates".into(),
                ))
            }
            other => columns.push(projection_name(other)),
        }
    }

    let mut out_rows = Vec::new();
    let mut keys = Vec::new();
    for group in &groups {
        if let Some(h) = &select.having {
            let v = eval_grouped(h, group, scope, ctx)?;
            if !truth(v)?.unwrap_or(false) {
                continue;
            }
        }
        let mut out = Vec::with_capacity(columns.len());
        for item in &select.projections {
            if let SelectItem::Expr { expr, .. } = item {
                out.push(eval_grouped(expr, group, scope, ctx)?);
            }
        }
        let mut key = Vec::with_capacity(order_by.len());
        for item in order_by {
            key.push(eval_grouped(&item.expr, group, scope, ctx)?);
        }
        out_rows.push(out);
        keys.push(key);
    }
    Ok((columns, out_rows, keys))
}

/// Evaluate an expression in group context: aggregate nodes consume the
/// whole group; everything else is evaluated on the group's first row
/// (valid for GROUP BY keys, which are constant within a group).
fn eval_grouped(
    expr: &Expr,
    group: &[Vec<Value>],
    scope: &Scope,
    ctx: &EvalContext,
) -> Result<Value> {
    match expr {
        Expr::Agg {
            func,
            distinct,
            arg,
        } => eval_aggregate(*func, *distinct, arg, group, scope, ctx),
        Expr::Binary { left, op, right } => {
            let l = eval_grouped(left, group, scope, ctx)?;
            let r = eval_grouped(right, group, scope, ctx)?;
            // Reuse scalar machinery by treating computed values as
            // literals.
            let le = value_to_literal_expr(l);
            let re = value_to_literal_expr(r);
            let combined = Expr::Binary {
                left: Box::new(le),
                op: *op,
                right: Box::new(re),
            };
            eval(&combined, &[], &Scope::default(), ctx)
        }
        Expr::Unary { op, expr } => {
            let v = eval_grouped(expr, group, scope, ctx)?;
            let inner = value_to_literal_expr(v);
            eval(
                &Expr::Unary {
                    op: *op,
                    expr: Box::new(inner),
                },
                &[],
                &Scope::default(),
                ctx,
            )
        }
        other => match group.first() {
            Some(row) => eval(other, row, scope, ctx),
            // Empty implicit group: non-aggregate expressions are NULL.
            None => Ok(Value::Null),
        },
    }
}

fn value_to_literal_expr(v: Value) -> Expr {
    use sb_sql::Literal;
    Expr::Literal(match v {
        Value::Null => Literal::Null,
        Value::Int(i) => Literal::Int(i),
        Value::Float(f) => Literal::Float(f),
        Value::Text(s) => Literal::Str(s),
        Value::Bool(b) => Literal::Bool(b),
    })
}

fn eval_aggregate(
    func: AggFunc,
    distinct: bool,
    arg: &AggArg,
    group: &[Vec<Value>],
    scope: &Scope,
    ctx: &EvalContext,
) -> Result<Value> {
    // COUNT(*) counts rows including NULLs.
    if matches!((func, arg), (AggFunc::Count, AggArg::Star)) {
        return Ok(Value::Int(group.len() as i64));
    }
    let AggArg::Expr(e) = arg else {
        return Err(EngineError::Unsupported(format!(
            "{}(*) is only valid for COUNT",
            func.as_str()
        )));
    };
    let mut values = Vec::with_capacity(group.len());
    for row in group {
        let v = eval(e, row, scope, ctx)?;
        if !v.is_null() {
            values.push(v);
        }
    }
    if distinct {
        let mut seen = HashSet::new();
        values.retain(|v| seen.insert(v.canonical_key()));
    }
    match func {
        AggFunc::Count => Ok(Value::Int(values.len() as i64)),
        AggFunc::Sum => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let all_int = values.iter().all(|v| matches!(v, Value::Int(_)));
            if all_int {
                let mut sum = 0i64;
                for v in &values {
                    if let Value::Int(i) = v {
                        sum = sum.wrapping_add(*i);
                    }
                }
                Ok(Value::Int(sum))
            } else {
                let mut sum = 0.0;
                for v in &values {
                    sum += v.as_f64().ok_or_else(|| {
                        EngineError::TypeMismatch(format!("SUM over non-numeric value {v}"))
                    })?;
                }
                Ok(Value::Float(sum))
            }
        }
        AggFunc::Avg => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let mut sum = 0.0;
            for v in &values {
                sum += v.as_f64().ok_or_else(|| {
                    EngineError::TypeMismatch(format!("AVG over non-numeric value {v}"))
                })?;
            }
            Ok(Value::Float(sum / values.len() as f64))
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<Value> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let take_new = match v.compare(&b) {
                            Some(ord) => {
                                (func == AggFunc::Min && ord.is_lt())
                                    || (func == AggFunc::Max && ord.is_gt())
                            }
                            None => {
                                return Err(EngineError::TypeMismatch(
                                    "MIN/MAX over mixed types".into(),
                                ))
                            }
                        };
                        if take_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
    }
}

/// Order a set-operation result by output column names or 1-based
/// ordinals.
fn apply_output_order(rs: &mut ResultSet, order_by: &[OrderItem]) -> Result<()> {
    if order_by.is_empty() {
        return Ok(());
    }
    let mut key_idx = Vec::with_capacity(order_by.len());
    for item in order_by {
        let idx = match &item.expr {
            Expr::Column(c) if c.table.is_none() => rs
                .columns
                .iter()
                .position(|name| name.eq_ignore_ascii_case(&c.column))
                .ok_or_else(|| EngineError::UnknownColumn(c.column.clone()))?,
            Expr::Literal(sb_sql::Literal::Int(n)) if *n >= 1 => (*n as usize) - 1,
            other => {
                return Err(EngineError::Unsupported(format!(
                    "ORDER BY `{other}` after a set operation (use an output column)"
                )))
            }
        };
        key_idx.push((idx, item.desc));
    }
    rs.rows.sort_by(|a, b| {
        for (idx, desc) in &key_idx {
            let ord = a[*idx].total_cmp(&b[*idx]);
            let ord = if *desc { ord.reverse() } else { ord };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_schema::{Column, ColumnType, Schema, TableDef};

    fn galaxy_db() -> Database {
        let schema = Schema::new("t")
            .with_table(TableDef::new(
                "specobj",
                vec![
                    Column::pk("specobjid", ColumnType::Int),
                    Column::new("class", ColumnType::Text),
                    Column::new("z", ColumnType::Float),
                    Column::new("bestobjid", ColumnType::Int),
                ],
            ))
            .with_table(TableDef::new(
                "photoobj",
                vec![
                    Column::pk("objid", ColumnType::Int),
                    Column::new("u", ColumnType::Float),
                    Column::new("r", ColumnType::Float),
                ],
            ));
        let mut db = Database::new(schema);
        db.table_mut("specobj").unwrap().push_rows(vec![
            vec![1.into(), "GALAXY".into(), 0.7.into(), 10.into()],
            vec![2.into(), "GALAXY".into(), 1.5.into(), 20.into()],
            vec![3.into(), "STAR".into(), 0.0.into(), 30.into()],
            vec![4.into(), "QSO".into(), 2.5.into(), Value::Null],
            vec![5.into(), "GALAXY".into(), Value::Null, 10.into()],
        ]);
        db.table_mut("photoobj").unwrap().push_rows(vec![
            vec![10.into(), 18.0.into(), 16.5.into()],
            vec![20.into(), 19.0.into(), 15.0.into()],
            vec![40.into(), 21.0.into(), 20.5.into()],
        ]);
        db
    }

    #[test]
    fn filter_and_project() {
        let db = galaxy_db();
        let r = db
            .run("SELECT specobjid FROM specobj WHERE class = 'GALAXY' AND z > 0.5")
            .unwrap();
        let ids: Vec<_> = r.rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(ids, vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn wildcard_expansion() {
        let db = galaxy_db();
        let r = db.run("SELECT * FROM photoobj").unwrap();
        assert_eq!(r.columns, vec!["objid", "u", "r"]);
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn distinct_dedupes() {
        let db = galaxy_db();
        let r = db.run("SELECT DISTINCT class FROM specobj").unwrap();
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn group_by_count_and_having() {
        let db = galaxy_db();
        let r = db
            .run("SELECT class, COUNT(*) FROM specobj GROUP BY class HAVING COUNT(*) >= 2")
            .unwrap();
        assert_eq!(r.rows, vec![vec!["GALAXY".into(), Value::Int(3)]]);
    }

    #[test]
    fn aggregates_skip_nulls() {
        let db = galaxy_db();
        let r = db.run("SELECT COUNT(z), COUNT(*), AVG(z) FROM specobj").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(4));
        assert_eq!(r.rows[0][1], Value::Int(5));
        let avg = r.rows[0][2].as_f64().unwrap();
        assert!((avg - (0.7 + 1.5 + 0.0 + 2.5) / 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_group_count_is_zero_sum_is_null() {
        let db = galaxy_db();
        let r = db
            .run("SELECT COUNT(*), SUM(z) FROM specobj WHERE class = 'NOPE'")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn inner_join_hash_path() {
        let db = galaxy_db();
        let r = db
            .run(
                "SELECT s.specobjid, p.objid FROM specobj AS s \
                 JOIN photoobj AS p ON s.bestobjid = p.objid",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 3); // ids 1,2,5 match; 3 has no photo 30; 4 is NULL
    }

    #[test]
    fn left_join_pads_nulls() {
        let db = galaxy_db();
        let r = db
            .run(
                "SELECT s.specobjid, p.objid FROM specobj AS s \
                 LEFT JOIN photoobj AS p ON s.bestobjid = p.objid",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 5);
        let unmatched: Vec<_> = r.rows.iter().filter(|r| r[1].is_null()).collect();
        assert_eq!(unmatched.len(), 2);
    }

    #[test]
    fn join_nested_loop_with_inequality() {
        let db = galaxy_db();
        let r = db
            .run(
                "SELECT s.specobjid FROM specobj AS s \
                 JOIN photoobj AS p ON s.bestobjid < p.objid WHERE s.specobjid = 3",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 1); // 30 < 40 only
    }

    #[test]
    fn order_by_and_limit() {
        let db = galaxy_db();
        let r = db
            .run("SELECT specobjid, z FROM specobj WHERE z IS NOT NULL ORDER BY z DESC LIMIT 2")
            .unwrap();
        assert!(r.ordered);
        assert_eq!(r.rows[0][0], Value::Int(4));
        assert_eq!(r.rows[1][0], Value::Int(2));
    }

    #[test]
    fn order_by_aggregate() {
        let db = galaxy_db();
        let r = db
            .run("SELECT class FROM specobj GROUP BY class ORDER BY COUNT(*) DESC LIMIT 1")
            .unwrap();
        assert_eq!(r.rows, vec![vec!["GALAXY".into()]]);
    }

    #[test]
    fn order_by_alias() {
        let db = galaxy_db();
        let r = db
            .run("SELECT z AS redshift FROM specobj WHERE z IS NOT NULL ORDER BY redshift")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Float(0.0));
    }

    #[test]
    fn scalar_subquery_average() {
        let db = galaxy_db();
        let r = db
            .run("SELECT specobjid FROM specobj WHERE z > (SELECT AVG(z) FROM specobj)")
            .unwrap();
        // avg = 1.175; z>avg: 1.5 (id 2), 2.5 (id 4)
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn in_subquery() {
        let db = galaxy_db();
        let r = db
            .run(
                "SELECT specobjid FROM specobj WHERE bestobjid IN \
                 (SELECT objid FROM photoobj WHERE u - r > 3)",
            )
            .unwrap();
        // u-r: 1.5, 4.0, 0.5 → objid 20; specobj with bestobjid 20 = id 2
        assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn not_in_subquery_with_null_probe() {
        let db = galaxy_db();
        // Row 4 has NULL bestobjid: NULL NOT IN (...) is NULL → filtered.
        let r = db
            .run(
                "SELECT specobjid FROM specobj WHERE bestobjid NOT IN \
                 (SELECT objid FROM photoobj)",
            )
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn exists_subquery() {
        let db = galaxy_db();
        let r = db
            .run("SELECT COUNT(*) FROM specobj WHERE EXISTS (SELECT * FROM photoobj)")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(5));
    }

    #[test]
    fn union_and_intersect() {
        let db = galaxy_db();
        let r = db
            .run("SELECT class FROM specobj UNION SELECT class FROM specobj")
            .unwrap();
        assert_eq!(r.rows.len(), 3, "UNION dedupes");
        let r = db
            .run("SELECT class FROM specobj UNION ALL SELECT class FROM specobj")
            .unwrap();
        assert_eq!(r.rows.len(), 10, "UNION ALL keeps duplicates");
        let r = db
            .run(
                "SELECT class FROM specobj WHERE z > 1 \
                 INTERSECT SELECT class FROM specobj WHERE z < 1",
            )
            .unwrap();
        // GALAXY occurs on both sides (z=1.5 and z=0.7); QSO and STAR only
        // on one side each.
        assert_eq!(r.rows, vec![vec![Value::Text("GALAXY".into())]]);
        let r = db
            .run("SELECT class FROM specobj EXCEPT SELECT class FROM specobj WHERE class = 'STAR'")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn set_op_order_by_column_name() {
        let db = galaxy_db();
        let r = db
            .run(
                "SELECT class FROM specobj UNION SELECT class FROM specobj \
                 ORDER BY class DESC LIMIT 1",
            )
            .unwrap();
        assert_eq!(r.rows, vec![vec!["STAR".into()]]);
    }

    #[test]
    fn derived_table() {
        let db = galaxy_db();
        let r = db
            .run(
                "SELECT g.class, g.n FROM \
                 (SELECT class, COUNT(*) AS n FROM specobj GROUP BY class) AS g \
                 WHERE g.n >= 2",
            )
            .unwrap();
        assert_eq!(r.rows, vec![vec!["GALAXY".into(), Value::Int(3)]]);
    }

    #[test]
    fn between_and_in_list() {
        let db = galaxy_db();
        let r = db
            .run("SELECT specobjid FROM specobj WHERE z BETWEEN 0.5 AND 2 AND class IN ('GALAXY', 'QSO')")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let db = galaxy_db();
        assert!(matches!(
            db.run("SELECT * FROM nope"),
            Err(EngineError::UnknownTable(_))
        ));
        assert!(matches!(
            db.run("SELECT nope FROM specobj"),
            Err(EngineError::UnknownColumn(_))
        ));
        assert!(db.run("SELECT objid FROM specobj AS a JOIN photoobj AS b ON a.bestobjid = b.objid JOIN photoobj AS c ON a.bestobjid = c.objid").is_err());
    }

    #[test]
    fn aggregate_with_math_argument() {
        let db = galaxy_db();
        let r = db.run("SELECT AVG(u - r) FROM photoobj").unwrap();
        let avg = r.rows[0][0].as_f64().unwrap();
        assert!((avg - (1.5 + 4.0 + 0.5) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn count_distinct() {
        let db = galaxy_db();
        let r = db.run("SELECT COUNT(DISTINCT class) FROM specobj").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(3));
    }

    #[test]
    fn group_expression_in_projection() {
        let db = galaxy_db();
        let r = db
            .run("SELECT class, MAX(z) - MIN(z) FROM specobj GROUP BY class ORDER BY class")
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        let galaxy = &r.rows[0];
        assert_eq!(galaxy[0], Value::Text("GALAXY".into()));
        assert!((galaxy[1].as_f64().unwrap() - 0.8).abs() < 1e-9);
    }
}
