//! The query executor.
//!
//! Scans are **zero-copy**: base tables store reference-counted rows
//! ([`crate::database::Row`]) and a scan collects `Arc` handles, never
//! cell data. On single-relation predicates the executor pushes WHERE
//! conjuncts down into the scan, so non-qualifying rows are dropped
//! before any join or materialization. Equi-joins (`ON a = b`) run as a
//! hash join that builds on the smaller input and probes the larger;
//! anything else falls back to a nested loop. Output row order is
//! identical across all join strategies and build sides (left-major,
//! probe order within a match set), which the equivalence tests rely on.
//!
//! Expressions run through the compile-once layer
//! ([`crate::compile`]): each `SELECT`'s expressions are lowered against
//! their scope exactly once — column references become positional slots,
//! constant subtrees fold — and the resulting programs evaluate with no
//! name lookups. Grouping, DISTINCT and set operations key rows through
//! the allocation-free hashes of [`crate::key`] instead of joined key
//! strings, and ORDER BY + LIMIT keeps only the top K rows in a bounded
//! heap instead of sorting everything.
//!
//! [`ExecOptions`] can disable the compiled evaluator (falling back to
//! the tree-walking interpreter) and force the legacy behavior
//! (deep-copy scans, no pushdown, build-on-right hash joins) or a pure
//! nested-loop plan; the benchmarks use those to measure before/after,
//! the differential tests to check strategy equivalence.
//!
//! Operators report `sb-obs` counters (`engine.scan.rows`,
//! `engine.scan.rows_pruned_pushdown`, `engine.join.hash.*`,
//! `engine.group.groups_created`, `engine.order.topk_pushes`,
//! `engine.dispatch.*`) in batches — one add per operator invocation,
//! derived from lengths the code already computes, never per row — and
//! every report site is gated on `sb_obs::enabled()`, so with `SB_OBS`
//! off the entire layer costs one relaxed atomic load per operator.

use crate::compile::{compile, compile_grouped, compile_order_key, CExpr, GExpr, OrderProg};
use crate::database::{Database, Row};
use crate::error::{EngineError, Result};
use crate::eval::{eval, eval_filter, truth, EvalContext, Scope};
use crate::key::{self, FxBuild, KeyIndex, RowSet};
use crate::result::ResultSet;
use crate::value::Value;
use sb_obs::{FixedOp, OpStats, QueryProfile};
use sb_sql::{
    AggArg, AggFunc, BinaryOp, ColumnRef, Expr, Join, OrderItem, Query, Select, SelectItem,
    SetExpr, SetOp, TableFactor, TableRef,
};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::hash::Hasher;
use std::ops::Deref;
use std::sync::Arc;
use std::time::Instant;

/// Optional per-statement profile, threaded through execution by
/// reference (see `sb_obs::profile`). `None` — the overwhelmingly
/// common case — keeps every write site behind one `is_some` check, so
/// profiling off is zero behavior change and near-zero cost.
pub(crate) type Prof<'p> = Option<&'p QueryProfile>;

/// One SELECT block's profile handle: the arena plus this block's
/// reserved slot range. `Copy` so operator helpers can take it by value.
#[derive(Clone, Copy)]
pub(crate) struct BlockProf<'p> {
    pub(crate) prof: &'p QueryProfile,
    pub(crate) block: sb_obs::BlockId,
}

impl<'p> BlockProf<'p> {
    pub(crate) fn scan(&self, rel: usize) -> Option<&'p OpStats> {
        self.prof.scan(self.block, rel)
    }

    pub(crate) fn join(&self, step: usize) -> Option<&'p OpStats> {
        self.prof.join(self.block, step)
    }

    pub(crate) fn fixed(&self, op: FixedOp) -> Option<&'p OpStats> {
        self.prof.fixed(self.block, op)
    }
}

/// Start a wall-clock measurement only when a profile is attached.
#[inline]
pub(crate) fn prof_clock(bp: &Option<BlockProf<'_>>) -> Option<Instant> {
    bp.as_ref().map(|_| Instant::now())
}

/// Attribute elapsed time since `t0` to `op`.
#[inline]
pub(crate) fn prof_elapsed(t0: Option<Instant>, op: Option<&OpStats>) {
    if let (Some(t0), Some(op)) = (t0, op) {
        op.elapsed(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }
}

/// Join algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinStrategy {
    /// Hash join on equi-constraints, building on the smaller input;
    /// nested loop otherwise.
    #[default]
    Auto,
    /// Hash join on equi-constraints, always building on the right input
    /// (no build-side selection); nested loop otherwise.
    BuildRight,
    /// Nested loop for every join, even equi-joins.
    NestedLoop,
}

/// Executor tuning knobs. [`Default`] is the optimized configuration;
/// [`ExecOptions::legacy`] reproduces the pre-optimization executor for
/// before/after benchmarking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Push single-relation WHERE conjuncts down into scans.
    pub predicate_pushdown: bool,
    /// Join algorithm selection.
    pub join: JoinStrategy,
    /// Deep-copy row data on scan instead of sharing `Arc` handles.
    pub copy_scans: bool,
    /// Lower expressions to compiled programs once per statement instead
    /// of interpreting the AST per row.
    pub compiled: bool,
    /// Plan each `SELECT` through `sb-opt` — cost-based join reordering
    /// (under [`JoinStrategy::Auto`]), estimate-driven build sides, and
    /// projection pushdown. Off, the executor runs joins in source
    /// order with its runtime build-side heuristic, as before the
    /// optimizer existed.
    pub optimize: bool,
    /// Attempt vectorized batch execution over columnar storage for
    /// structurally eligible statements (see
    /// [`sb_opt::columnar_eligible`]). The batch path falls back to the
    /// row executor — silently, and byte-identically — whenever a shape
    /// or data condition is outside its kernel set; errors always come
    /// from the row path.
    pub columnar: bool,
    /// Morsel-driven intra-query parallelism inside the columnar batch
    /// engine: filter kernels, the hash-join build and probe, and
    /// grouped aggregation run over fixed-size row morsels on the rayon
    /// scoped-thread pool, with per-morsel results merged in morsel
    /// order so output is byte-identical at any thread count.
    /// `RAYON_NUM_THREADS=1` (or one core) degenerates to the serial
    /// columnar code path exactly.
    pub parallel: bool,
    /// Worker-thread override for parallel batch execution. `0` asks
    /// the rayon shim (`RAYON_NUM_THREADS` or available parallelism);
    /// any other value forces exactly that fan-out — sb-serve uses this
    /// to cap intra-query workers by in-flight admission permits, and
    /// the equivalence tests use it to force multi-worker execution on
    /// single-core machines.
    pub workers: usize,
    /// Rows per morsel for parallel batch execution. `0` means the
    /// default (`SB_MORSEL_ROWS` env override, else 65536); tests
    /// shrink it so tiny tables still split into multiple morsels.
    pub morsel_rows: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            predicate_pushdown: true,
            join: JoinStrategy::Auto,
            copy_scans: false,
            compiled: true,
            optimize: true,
            columnar: true,
            parallel: true,
            workers: 0,
            morsel_rows: 0,
        }
    }
}

impl ExecOptions {
    /// The pre-optimization executor: materializing scans, no pushdown,
    /// per-row AST interpretation, and the cloning O(n·m) nested-loop
    /// join.
    pub fn legacy() -> Self {
        ExecOptions {
            predicate_pushdown: false,
            join: JoinStrategy::NestedLoop,
            copy_scans: true,
            compiled: false,
            optimize: false,
            columnar: false,
            parallel: false,
            workers: 0,
            morsel_rows: 0,
        }
    }

    /// The effective parallel configuration for one batch execution:
    /// `(workers, morsel_rows)`. Workers come from the explicit
    /// override, else the rayon shim (`RAYON_NUM_THREADS` / cores);
    /// morsel size from the explicit override, else `SB_MORSEL_ROWS`,
    /// else 64K rows. `parallel: false` pins one worker.
    pub(crate) fn par_config(&self) -> (usize, usize) {
        let workers = if !self.parallel {
            1
        } else if self.workers > 0 {
            self.workers
        } else {
            rayon::current_num_threads()
        };
        let morsel_rows = if self.morsel_rows > 0 {
            self.morsel_rows
        } else {
            default_morsel_rows()
        };
        (workers.max(1), morsel_rows.max(1))
    }

    /// Divide this session's worker budget across `in_flight`
    /// concurrent requests: each query gets about `budget / in_flight`
    /// workers (at least one), so intra-query fan-out times inter-query
    /// concurrency never oversubscribes the machine. sb-serve calls
    /// this with its admission gate's live permit count. Identity when
    /// parallelism is off — and always result-identical either way,
    /// since worker count never affects engine output.
    pub fn capped_workers(mut self, in_flight: usize) -> ExecOptions {
        if !self.parallel {
            return self;
        }
        let budget = if self.workers > 0 {
            self.workers
        } else {
            rayon::current_num_threads()
        };
        self.workers = (budget / in_flight.max(1)).max(1);
        self
    }

    /// The `sb-opt` rule switches implied by these options.
    pub(crate) fn opt_options(&self) -> sb_opt::OptOptions {
        sb_opt::OptOptions {
            pushdown: self.predicate_pushdown,
            reorder: matches!(self.join, JoinStrategy::Auto),
            choose_build: matches!(self.join, JoinStrategy::Auto),
            hash_joins: !matches!(self.join, JoinStrategy::NestedLoop),
            prune: true,
            columnar: self.columnar,
            parallel: self.parallel,
        }
    }
}

/// The default morsel size: `SB_MORSEL_ROWS` when set and positive,
/// else 64K rows. Read once per process — the env override exists so
/// smoke runs over small tables (check.sh, profile_run --quick) can
/// force real multi-morsel dispatch without touching every call site.
fn default_morsel_rows() -> usize {
    use std::sync::OnceLock;
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("SB_MORSEL_ROWS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(65_536)
    })
}

/// A row flowing through the executor: either a shared handle into base
/// table storage (scans) or an owned buffer (join outputs, derived
/// tables). Derefs to `[Value]` so expression evaluation is agnostic.
pub(crate) enum ExecRow {
    Shared(Row),
    Owned(Vec<Value>),
}

impl Deref for ExecRow {
    type Target = [Value];

    fn deref(&self) -> &[Value] {
        match self {
            ExecRow::Shared(r) => r,
            ExecRow::Owned(v) => v,
        }
    }
}

impl ExecRow {
    fn into_vec(self) -> Vec<Value> {
        match self {
            ExecRow::Shared(r) => r.to_vec(),
            ExecRow::Owned(v) => v,
        }
    }
}

/// Execute a parsed query against a database with default options.
pub fn execute(db: &Database, query: &Query) -> Result<ResultSet> {
    execute_with(db, query, ExecOptions::default())
}

/// Execute a parsed query, reusing a previously captured top-level plan
/// (see [`plan_top_select`]) instead of re-planning. The cached plan
/// must have been captured from the *same* statement text against the
/// *same* database snapshot; a structurally mismatched plan is detected
/// and falls back to fresh planning, so the result is always identical
/// to [`execute_with`] — errors included. Set operations and statements
/// planned with `optimize` off ignore the plan entirely.
pub fn execute_with_plan(
    db: &Database,
    query: &Query,
    opts: ExecOptions,
    plan: Option<&sb_opt::OwnedPlan>,
) -> Result<ResultSet> {
    execute_query(db, query, opts, plan, None)
}

/// [`execute_with`] plus a per-statement [`QueryProfile`] the engine's
/// operators write runtime statistics into — the substrate of
/// `EXPLAIN ANALYZE` and the serve layer's slow-query log. Results are
/// byte-identical with and without a profile attached.
pub fn execute_with_profile(
    db: &Database,
    query: &Query,
    opts: ExecOptions,
    prof: Option<&QueryProfile>,
) -> Result<ResultSet> {
    execute_query(db, query, opts, None, prof)
}

/// [`execute_with_plan`] plus an optional [`QueryProfile`] (see
/// [`execute_with_profile`]). The serve layer's profiled requests run
/// through here so the plan cache and profiling compose.
pub fn execute_with_plan_profile(
    db: &Database,
    query: &Query,
    opts: ExecOptions,
    plan: Option<&sb_opt::OwnedPlan>,
    prof: Option<&QueryProfile>,
) -> Result<ResultSet> {
    execute_query(db, query, opts, plan, prof)
}

fn execute_query(
    db: &Database,
    query: &Query,
    opts: ExecOptions,
    plan: Option<&sb_opt::OwnedPlan>,
    prof: Prof<'_>,
) -> Result<ResultSet> {
    match &query.body {
        SetExpr::Select(select) => {
            execute_select_impl(db, select, &query.order_by, query.limit, opts, plan, prof)
        }
        SetExpr::SetOp { .. } => {
            let mut rs = execute_set_expr(db, &query.body, opts, prof)?;
            apply_output_order(&mut rs, &query.order_by, query.limit)?;
            if let Some(n) = query.limit {
                rs.rows.truncate(n as usize);
            }
            rs.ordered = !query.order_by.is_empty();
            Ok(rs)
        }
    }
}

/// Plan the top-level `SELECT` of a query in cacheable (owned) form:
/// the prepared-statement path of `sb-serve` calls this once per
/// normalized statement and hands the result back to
/// [`execute_with_plan`] on every subsequent request.
///
/// Returns `None` whenever caching would not be sound or useful: the
/// planner is disabled (`opts.optimize` off), the query is a set
/// operation, a FROM factor is a derived table (planning one means
/// executing its subquery — that work belongs to the request, not the
/// prepare step), or a table doesn't resolve (execution will surface
/// the binding error itself). The plan derives only from the immutable
/// snapshot's schema and row counts, so it reproduces exactly what
/// fresh planning inside [`execute_with`] would decide.
pub fn plan_top_select(
    db: &Database,
    query: &Query,
    opts: ExecOptions,
) -> Option<sb_opt::OwnedPlan> {
    if !opts.optimize {
        return None;
    }
    let SetExpr::Select(select) = &query.body else {
        return None;
    };
    let mut metas = Vec::new();
    let mut scope = Scope::default();
    let factors = std::iter::once(&select.from).chain(select.joins.iter().map(|j| &j.table));
    for tr in factors {
        let TableFactor::Table(name) = &tr.factor else {
            return None;
        };
        let table = db.table(name)?;
        let binding = tr.binding().expect("named table always binds").to_string();
        let columns: Vec<String> = table.def.columns.iter().map(|c| c.name.clone()).collect();
        metas.push(sb_opt::RelMeta {
            binding: binding.clone(),
            table: Some(table.def.name.clone()),
            columns: table
                .def
                .columns
                .iter()
                .map(|c| sb_opt::ColMeta {
                    name: c.name.clone(),
                    unique: c.primary_key,
                })
                .collect(),
            rows: table.rows.len(),
        });
        scope.push(&binding, columns);
    }
    let resolver = ScopeResolver(&scope);
    let input = sb_opt::PlanInput {
        select,
        order_by: &query.order_by,
        limit: query.limit,
        rels: &metas,
        opts: opts.opt_options(),
    };
    let planned = sb_opt::plan_select(&input, &resolver);
    sb_opt::OwnedPlan::capture(&planned, select)
}

/// Execute a parsed query with explicit executor options.
pub fn execute_with(db: &Database, query: &Query, opts: ExecOptions) -> Result<ResultSet> {
    execute_query(db, query, opts, None, None)
}

/// Set-operation leaves execute left to right, which is also the block
/// order a profile records them in (see `sb_obs::profile`).
fn execute_set_expr(
    db: &Database,
    body: &SetExpr,
    opts: ExecOptions,
    prof: Prof<'_>,
) -> Result<ResultSet> {
    match body {
        SetExpr::Select(s) => execute_select_impl(db, s, &[], None, opts, None, prof),
        SetExpr::SetOp {
            op,
            all,
            left,
            right,
        } => {
            let l = execute_set_expr(db, left, opts, prof)?;
            let r = execute_set_expr(db, right, opts, prof)?;
            if l.columns.len() != r.columns.len() {
                return Err(EngineError::TypeMismatch(format!(
                    "set operands have {} vs {} columns",
                    l.columns.len(),
                    r.columns.len()
                )));
            }
            let rows = match op {
                SetOp::Union => {
                    let mut rows = l.rows;
                    rows.extend(r.rows);
                    if !*all {
                        key::dedup_values_rows(&mut rows);
                    }
                    rows
                }
                SetOp::Intersect => {
                    let right = RowSet::build(&r.rows);
                    let mut rows: Vec<Vec<Value>> = l
                        .rows
                        .into_iter()
                        .filter(|row| right.contains(row))
                        .collect();
                    // INTERSECT / EXCEPT have set semantics in SQL.
                    key::dedup_values_rows(&mut rows);
                    rows
                }
                SetOp::Except => {
                    let right = RowSet::build(&r.rows);
                    let mut rows: Vec<Vec<Value>> = l
                        .rows
                        .into_iter()
                        .filter(|row| !right.contains(row))
                        .collect();
                    key::dedup_values_rows(&mut rows);
                    rows
                }
            };
            Ok(ResultSet {
                columns: l.columns,
                rows,
                ordered: false,
            })
        }
    }
}

/// One relation of the FROM clause, resolved but not yet scanned.
pub(crate) enum RelSource<'a> {
    Base(&'a crate::database::Table),
    Derived(ResultSet),
}

pub(crate) struct Relation<'a> {
    pub(crate) binding: String,
    pub(crate) columns: Vec<String>,
    pub(crate) source: RelSource<'a>,
}

pub(crate) fn resolve_relation<'a>(
    db: &'a Database,
    tr: &TableRef,
    opts: ExecOptions,
    prof: Prof<'_>,
) -> Result<Relation<'a>> {
    match &tr.factor {
        TableFactor::Table(name) => {
            let table = db
                .table(name)
                .ok_or_else(|| EngineError::UnknownTable(name.clone()))?;
            let binding = tr.binding().expect("named table always binds").to_string();
            let columns = table.def.columns.iter().map(|c| c.name.clone()).collect();
            Ok(Relation {
                binding,
                columns,
                source: RelSource::Base(table),
            })
        }
        TableFactor::Derived(q) => {
            let alias = tr.alias.clone().ok_or_else(|| {
                EngineError::Unsupported("derived table requires an alias".into())
            })?;
            // The derived query's SELECT blocks register in the profile
            // here, i.e. after the enclosing block and in FROM/JOIN
            // order — exactly the walk `explain_with_profile` replays.
            let rs = execute_query(db, q, opts, None, prof)?;
            Ok(Relation {
                binding: alias,
                columns: rs.columns.clone(),
                source: RelSource::Derived(rs),
            })
        }
    }
}

/// Which relation (index into `scope.bindings`) a concatenated-row column
/// index belongs to.
fn relation_of(scope: &Scope, col_idx: usize) -> usize {
    scope
        .bindings
        .iter()
        .rposition(|b| b.offset <= col_idx)
        .expect("column index within scope width")
}

/// The planner's name-resolution callback, backed by the executor's
/// [`Scope`] so `sb-opt` inherits resolution semantics (case folding,
/// ambiguity, unknown-name errors) from exactly the code that will
/// evaluate the expressions later.
pub(crate) struct ScopeResolver<'a>(pub(crate) &'a Scope);

impl sb_opt::Resolver for ScopeResolver<'_> {
    fn resolve(&self, c: &ColumnRef) -> sb_opt::Resolution {
        match self.0.resolve(c) {
            Ok(idx) => {
                let rel = relation_of(self.0, idx);
                sb_opt::Resolution::Col {
                    rel,
                    col: idx - self.0.bindings[rel].offset,
                }
            }
            Err(EngineError::AmbiguousColumn(_)) => sb_opt::Resolution::Ambiguous,
            Err(_) => sb_opt::Resolution::Unknown,
        }
    }
}

/// Planner-visible metadata for the resolved FROM relations: live row
/// counts (derived tables are already materialized) and base-table
/// primary-key uniqueness for the cost model's distinct estimates.
pub(crate) fn rel_metas(relations: &[Relation<'_>]) -> Vec<sb_opt::RelMeta> {
    relations
        .iter()
        .map(|r| {
            let (table, rows, unique_of): (Option<String>, usize, Option<&crate::database::Table>) =
                match &r.source {
                    RelSource::Base(t) => (Some(t.def.name.clone()), t.rows.len(), Some(t)),
                    RelSource::Derived(rs) => (None, rs.rows.len(), None),
                };
            sb_opt::RelMeta {
                binding: r.binding.clone(),
                table,
                columns: r
                    .columns
                    .iter()
                    .enumerate()
                    .map(|(i, name)| sb_opt::ColMeta {
                        name: name.clone(),
                        unique: unique_of
                            .map(|t| t.def.columns[i].primary_key)
                            .unwrap_or(false),
                    })
                    .collect(),
                rows,
            }
        })
        .collect()
}

// Out-of-line counter sinks for the hot operators. Keeping the
// `sb_obs::count` calls behind `#[cold] #[inline(never)]` functions
// leaves only a relaxed load and a never-taken branch in the operator
// bodies themselves, so instrumentation does not perturb their code
// size or layout when `SB_OBS` is off.
#[cold]
#[inline(never)]
fn note_scan(scanned: usize, kept: usize) {
    sb_obs::count("engine.scan.rows", scanned as u64);
    sb_obs::count("engine.scan.rows_pruned_pushdown", (scanned - kept) as u64);
}

#[cold]
#[inline(never)]
fn note_hash_join(build: usize, probe: usize) {
    sb_obs::count("engine.join.hash", 1);
    sb_obs::count("engine.join.hash.build_rows", build as u64);
    sb_obs::count("engine.join.hash.probe_rows", probe as u64);
}

#[cold]
#[inline(never)]
fn note_nested_loop_join() {
    sb_obs::count("engine.join.nested_loop", 1);
}

#[cold]
#[inline(never)]
fn note_dispatch(compiled: bool) {
    sb_obs::count(
        if compiled {
            "engine.dispatch.compiled"
        } else {
            "engine.dispatch.interpreted"
        },
        1,
    );
}

#[cold]
#[inline(never)]
fn note_topk(pushes: u64) {
    sb_obs::count("engine.order.topk", 1);
    sb_obs::count("engine.order.topk_pushes", pushes);
}

#[cold]
#[inline(never)]
fn note_groups(created: usize) {
    sb_obs::count("engine.group.groups_created", created as u64);
}

/// Scan one relation, applying its pushed-down conjuncts. Base-table
/// scans share `Arc` row handles (or deep-copy under
/// `ExecOptions::copy_scans`); derived tables own their rows already.
fn scan_relation(
    rel: Relation<'_>,
    pushed: &[&Expr],
    ctx: &EvalContext,
    opts: ExecOptions,
    prof_op: Option<&OpStats>,
) -> Result<Vec<ExecRow>> {
    let mut local = Scope::default();
    local.push(&rel.binding, rel.columns.clone());
    // Compile pushed conjuncts once against the single-relation scope;
    // the interpreter path re-resolves them per row.
    let progs: Option<Vec<CExpr>> = opts
        .compiled
        .then(|| pushed.iter().map(|c| compile(c, &local, ctx)).collect());
    let keep = |row: &[Value]| -> Result<bool> {
        match &progs {
            Some(progs) => {
                for prog in progs {
                    if !prog.eval_filter(row, ctx)? {
                        return Ok(false);
                    }
                }
            }
            None => {
                for conj in pushed {
                    if !eval_filter(conj, row, &local, ctx)? {
                        return Ok(false);
                    }
                }
            }
        }
        Ok(true)
    };
    let out = match rel.source {
        RelSource::Base(table) => {
            let mut out = Vec::with_capacity(if pushed.is_empty() {
                table.rows.len()
            } else {
                0
            });
            for row in &table.rows {
                if keep(row)? {
                    out.push(if opts.copy_scans {
                        ExecRow::Owned(row.to_vec())
                    } else {
                        ExecRow::Shared(Arc::clone(row))
                    });
                }
            }
            if sb_obs::enabled() {
                note_scan(table.rows.len(), out.len());
            }
            if let Some(op) = prof_op {
                op.rows(table.rows.len() as u64, out.len() as u64);
            }
            out
        }
        RelSource::Derived(rs) => {
            let scanned = rs.rows.len();
            let mut out = Vec::with_capacity(scanned);
            for row in rs.rows {
                if keep(&row)? {
                    out.push(ExecRow::Owned(row));
                }
            }
            if sb_obs::enabled() {
                note_scan(scanned, out.len());
            }
            if let Some(op) = prof_op {
                op.rows(scanned as u64, out.len() as u64);
            }
            out
        }
    };
    Ok(out)
}

/// Try to use a hash join: the constraint must be `left_col = right_col`
/// with one side resolving in the already-built scope and the other in the
/// newly joined relation.
fn equi_join_keys(
    constraint: &Expr,
    left_scope: &Scope,
    right_cols: &[String],
    right_binding: &str,
) -> Option<(usize, usize)> {
    let Expr::Binary {
        left,
        op: BinaryOp::Eq,
        right,
    } = constraint
    else {
        return None;
    };
    let (Expr::Column(a), Expr::Column(b)) = (left.as_ref(), right.as_ref()) else {
        return None;
    };
    // A bare column belongs to one side only when the name is absent
    // from the other side entirely; otherwise the joined scope sees it
    // as ambiguous (or bound differently), and only the general
    // nested-loop evaluator reports that correctly. Claiming such a
    // column here would let the hash path return rows where the general
    // path raises `AmbiguousColumn`.
    let in_right = |c: &sb_sql::ColumnRef| -> Option<usize> {
        right_cols
            .iter()
            .position(|col| col.eq_ignore_ascii_case(&c.column))
    };
    let resolve_left = |c: &sb_sql::ColumnRef| -> Option<usize> {
        let li = left_scope.resolve(c).ok()?;
        if c.table.is_none() && in_right(c).is_some() {
            return None;
        }
        Some(li)
    };
    let resolve_right = |c: &sb_sql::ColumnRef| -> Option<usize> {
        match &c.table {
            Some(t) if t.eq_ignore_ascii_case(right_binding) => in_right(c),
            Some(_) => None,
            None => match left_scope.resolve(c) {
                Err(EngineError::UnknownColumn(_)) => in_right(c),
                _ => None,
            },
        }
    };
    // Either (a in left, b in right) or (b in left, a in right).
    if let (Some(li), Some(ri)) = (resolve_left(a), resolve_right(b)) {
        return Some((li, ri));
    }
    if let (Some(li), Some(ri)) = (resolve_left(b), resolve_right(a)) {
        return Some((li, ri));
    }
    None
}

/// Join key under *SQL equality* (`sql_eq`), not canonical-key rounding:
/// the hash path must match exactly the row pairs the nested-loop
/// predicate `a = b` accepts. `sql_eq` compares int/float exactly, so a
/// float equal to some i64 normalizes to that integer (`-0.0` lands on
/// `Int(0)`, so `-0.0 = 0.0` matches); any other float can equal no int
/// and keys by its own bits. `None` means the value can never satisfy an
/// equality (NULL, or NaN which is not `sql_eq`-equal even to itself).
#[derive(PartialEq, Eq, Hash)]
enum JoinKey<'a> {
    Int(i64),
    Float(u64),
    Text(&'a str),
    Bool(bool),
}

fn join_key(v: &Value) -> Option<JoinKey<'_>> {
    const TWO_63: f64 = 9_223_372_036_854_775_808.0; // 2^63, exact as f64
    match v {
        Value::Null => None,
        Value::Int(i) => Some(JoinKey::Int(*i)),
        Value::Float(f) if f.is_nan() => None,
        Value::Float(f) if f.fract() == 0.0 && (-TWO_63..TWO_63).contains(f) => {
            Some(JoinKey::Int(*f as i64))
        }
        Value::Float(f) => Some(JoinKey::Float(f.to_bits())),
        Value::Text(s) => Some(JoinKey::Text(s)),
        Value::Bool(b) => Some(JoinKey::Bool(*b)),
    }
}

/// Hash-join match lists: `matches[i]` holds the indices of right rows
/// joining left row `i`, in right-scan order. Building the map on either
/// side yields the same lists, so build-side selection never changes
/// output order — only speed.
fn hash_join_matches(
    left: &[ExecRow],
    right: &[ExecRow],
    li: usize,
    ri: usize,
    build_left: bool,
) -> Vec<Vec<u32>> {
    let mut matches: Vec<Vec<u32>> = vec![Vec::new(); left.len()];
    if build_left {
        let mut index: HashMap<JoinKey, Vec<u32>, FxBuild> =
            HashMap::with_capacity_and_hasher(left.len(), FxBuild::default());
        for (i, l) in left.iter().enumerate() {
            if let Some(k) = join_key(&l[li]) {
                index.entry(k).or_default().push(i as u32);
            }
        }
        for (j, r) in right.iter().enumerate() {
            if let Some(k) = join_key(&r[ri]) {
                if let Some(bucket) = index.get(&k) {
                    for &i in bucket {
                        matches[i as usize].push(j as u32);
                    }
                }
            }
        }
    } else {
        let mut index: HashMap<JoinKey, Vec<u32>, FxBuild> =
            HashMap::with_capacity_and_hasher(right.len(), FxBuild::default());
        for (j, r) in right.iter().enumerate() {
            if let Some(k) = join_key(&r[ri]) {
                index.entry(k).or_default().push(j as u32);
            }
        }
        for (i, l) in left.iter().enumerate() {
            if let Some(k) = join_key(&l[li]) {
                if let Some(bucket) = index.get(&k) {
                    matches[i].extend_from_slice(bucket);
                }
            }
        }
    }
    matches
}

/// Resolve every column reference in a join constraint against the
/// joined scope, without evaluating anything. Subquery bodies resolve
/// against their own scopes at execution time and are skipped.
fn validate_constraint_columns(e: &Expr, scope: &Scope) -> Result<()> {
    match e {
        Expr::Column(c) => scope.resolve(c).map(|_| ()),
        Expr::Literal(_) | Expr::Subquery(_) | Expr::Exists { .. } => Ok(()),
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => {
            validate_constraint_columns(expr, scope)
        }
        Expr::Binary { left, right, .. } => {
            validate_constraint_columns(left, scope)?;
            validate_constraint_columns(right, scope)
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            validate_constraint_columns(expr, scope)?;
            validate_constraint_columns(low, scope)?;
            validate_constraint_columns(high, scope)
        }
        Expr::InList { expr, list, .. } => {
            validate_constraint_columns(expr, scope)?;
            list.iter()
                .try_for_each(|e| validate_constraint_columns(e, scope))
        }
        Expr::InSubquery { expr, .. } => validate_constraint_columns(expr, scope),
        Expr::Like { expr, pattern, .. } => {
            validate_constraint_columns(expr, scope)?;
            validate_constraint_columns(pattern, scope)
        }
        Expr::Agg { arg, .. } => match arg {
            sb_sql::AggArg::Star => Ok(()),
            sb_sql::AggArg::Expr(e) => validate_constraint_columns(e, scope),
        },
    }
}

fn concat_row(left: &[Value], right: &[Value]) -> Vec<Value> {
    let mut row = Vec::with_capacity(left.len() + right.len());
    row.extend_from_slice(left);
    row.extend_from_slice(right);
    row
}

/// Build the joined rows for `FROM ... JOIN ...` from pre-scanned
/// relations, in source order. `build_sides` carries the planner's
/// estimate-chosen hash build side per join; `None` (planning disabled)
/// falls back to the runtime row-count heuristic.
fn join_relations(
    mut scanned: Vec<Vec<ExecRow>>,
    relations: &[(String, Vec<String>)],
    joins: &[Join],
    ctx: &EvalContext,
    opts: ExecOptions,
    build_sides: Option<&[bool]>,
    bp: Option<BlockProf<'_>>,
) -> Result<(Scope, Vec<ExecRow>)> {
    let mut scanned = scanned.drain(..);
    let mut rows = scanned.next().expect("at least the FROM relation");
    let mut scope = Scope::default();
    scope.push(&relations[0].0, relations[0].1.clone());

    for (ji, (join, rel)) in joins.iter().zip(&relations[1..]).enumerate() {
        let jrows = scanned.next().expect("one scan per relation");
        let right_width = rel.1.len();
        let t0 = prof_clock(&bp);
        let rows_in = rows.len() + jrows.len();

        // Attempt hash join on a column equality before extending the
        // scope (so "left side" means the scope built so far).
        let hash_keys = if matches!(opts.join, JoinStrategy::NestedLoop) {
            None
        } else {
            join.constraint
                .as_ref()
                .and_then(|c| equi_join_keys(c, &scope, &rel.1, &rel.0))
        };

        scope.push(&rel.0, rel.1.clone());

        // Resolve the constraint's column references before touching any
        // rows: hash joins and pushdown-emptied scans can leave the
        // constraint unevaluated for some (or all) row pairs, and whether
        // an unknown-column or ambiguity error surfaces must not depend
        // on row counts or on the chosen plan.
        if let Some(c) = &join.constraint {
            validate_constraint_columns(c, &scope)?;
        }

        let mut out = Vec::new();
        match hash_keys {
            Some((li, ri)) => {
                let build_left = match opts.join {
                    JoinStrategy::Auto => match build_sides {
                        Some(sides) => sides[ji],
                        None => rows.len() < jrows.len(),
                    },
                    _ => false,
                };
                let (build, probe) = if build_left {
                    (rows.len(), jrows.len())
                } else {
                    (jrows.len(), rows.len())
                };
                if sb_obs::enabled() {
                    note_hash_join(build, probe);
                }
                if let Some(op) = bp.as_ref().and_then(|b| b.join(ji)) {
                    op.build_probe(build as u64, probe as u64);
                }
                let matches = hash_join_matches(&rows, &jrows, li, ri, build_left);
                for (l, js) in rows.iter().zip(&matches) {
                    for &j in js {
                        out.push(ExecRow::Owned(concat_row(l, &jrows[j as usize])));
                    }
                    if join.left && js.is_empty() {
                        let mut row = l.to_vec();
                        row.extend(std::iter::repeat_n(Value::Null, right_width));
                        out.push(ExecRow::Owned(row));
                    }
                }
            }
            None => {
                // Nested loop with the full predicate (or cross join).
                if sb_obs::enabled() {
                    note_nested_loop_join();
                }
                let prog = match &join.constraint {
                    Some(c) if opts.compiled => Some(compile(c, &scope, ctx)),
                    _ => None,
                };
                for l in &rows {
                    let mut matched = false;
                    for r in &jrows {
                        let row = concat_row(l, r);
                        let keep = match (&prog, &join.constraint) {
                            (Some(p), _) => p.eval_filter(&row, ctx)?,
                            (None, Some(c)) => eval_filter(c, &row, &scope, ctx)?,
                            (None, None) => true,
                        };
                        if keep {
                            out.push(ExecRow::Owned(row));
                            matched = true;
                        }
                    }
                    if join.left && !matched {
                        let mut row = l.to_vec();
                        row.extend(std::iter::repeat_n(Value::Null, right_width));
                        out.push(ExecRow::Owned(row));
                    }
                }
            }
        }
        if let Some(op) = bp.as_ref().and_then(|b| b.join(ji)) {
            // Source-order execution: step `ji` introduces relation
            // `ji + 1`; step 0's left input is the FROM relation.
            op.rows(rows_in as u64, out.len() as u64);
            op.link((ji == 0).then_some(0), ji + 1);
            prof_elapsed(t0, Some(op));
        }
        rows = out;
    }
    Ok((scope, rows))
}

/// Execute a planner-reordered all-inner equi-join chain, then restore
/// the exact output the source-order pipeline would have produced.
///
/// Every intermediate row carries a tag: the scan position of each
/// participating relation's row, in execution order. The source-order
/// nested-loop (and hash-join) pipeline emits rows in lexicographic
/// order of scan positions taken in *source* order, so sorting the
/// reordered output by its tags — permuted back to source order — and
/// permuting each row's columns back to the source layout reproduces
/// that output byte for byte. Reordering is therefore invisible to
/// ORDER BY tie-breaking, strict row-order tests and goldens; only the
/// sizes of the intermediate results change.
///
/// Preconditions (checked by the planner, see `sb_opt::plan_select`):
/// all joins inner with qualified two-column equi-constraints forming a
/// spanning tree over distinct bindings — which also guarantees no
/// resolution error can surface mid-join.
fn join_relations_reordered(
    scanned: Vec<Vec<ExecRow>>,
    relations: &[(String, Vec<String>)],
    planned: &sb_opt::PlannedSelect<'_>,
    bp: Option<BlockProf<'_>>,
) -> (Scope, Vec<ExecRow>) {
    let n = relations.len();
    let widths: Vec<usize> = relations.iter().map(|r| r.1.len()).collect();
    // Offsets of each relation's columns in execution layout...
    let mut exec_off = vec![0usize; n];
    let mut off = 0;
    for &r in &planned.order {
        exec_off[r] = off;
        off += widths[r];
    }
    // ...and in the source layout the caller expects back.
    let mut src_off = vec![0usize; n];
    let mut off = 0;
    for (r, w) in widths.iter().enumerate() {
        src_off[r] = off;
        off += w;
    }
    let total_width = off;

    let mut scanned: Vec<Option<Vec<ExecRow>>> = scanned.into_iter().map(Some).collect();
    let first = planned.order[0];
    let mut rows: Vec<ExecRow> = scanned[first].take().expect("scan per relation");
    // tags[i][k] = scan position of relation `order[k]`'s row in joined
    // row i.
    let mut tags: Vec<Vec<u32>> = (0..rows.len() as u32).map(|i| vec![i]).collect();

    for (si, step) in planned.steps.iter().enumerate() {
        let jrows = scanned[step.rel].take().expect("each relation joins once");
        let key = step.key.expect("reordered steps always carry a key");
        let li = exec_off[key.left_rel]
            + sb_opt::plan::pruned_index(&planned.keep[key.left_rel], key.left_col);
        let ri = sb_opt::plan::pruned_index(&planned.keep[step.rel], key.right_col);
        let t0 = prof_clock(&bp);
        let (build, probe) = if step.build_left {
            (rows.len(), jrows.len())
        } else {
            (jrows.len(), rows.len())
        };
        if sb_obs::enabled() {
            note_hash_join(build, probe);
        }
        let matches = hash_join_matches(&rows, &jrows, li, ri, step.build_left);
        let mut out = Vec::new();
        let mut out_tags = Vec::new();
        for ((l, ltag), js) in rows.iter().zip(&tags).zip(&matches) {
            for &j in js {
                out.push(ExecRow::Owned(concat_row(l, &jrows[j as usize])));
                let mut t = Vec::with_capacity(ltag.len() + 1);
                t.extend_from_slice(ltag);
                t.push(j);
                out_tags.push(t);
            }
        }
        if let Some(op) = bp.as_ref().and_then(|b| b.join(si)) {
            // Reordered execution: record which source relation this
            // step introduced so renderers and the conservation checker
            // can re-associate steps without re-deriving the plan.
            op.rows((rows.len() + jrows.len()) as u64, out.len() as u64);
            op.build_probe(build as u64, probe as u64);
            op.link((si == 0).then_some(planned.order[0]), step.rel);
            prof_elapsed(t0, Some(op));
        }
        rows = out;
        tags = out_tags;
    }

    // Sort by scan positions in source-relation order. Each surviving
    // combination of input rows is unique, so the keys are distinct and
    // an unstable sort is exact.
    let mut order_pos = vec![0usize; n];
    for (k, &r) in planned.order.iter().enumerate() {
        order_pos[r] = k;
    }
    let sort_keys: Vec<Vec<u32>> = tags
        .iter()
        .map(|t| (0..n).map(|r| t[order_pos[r]]).collect())
        .collect();
    let mut idx: Vec<usize> = (0..rows.len()).collect();
    idx.sort_unstable_by(|&a, &b| sort_keys[a].cmp(&sort_keys[b]));

    // Permute columns from execution layout back to source layout.
    let mut col_perm = Vec::with_capacity(total_width);
    for (r, w) in widths.iter().enumerate() {
        for c in 0..*w {
            col_perm.push(exec_off[r] + c);
        }
    }
    let mut slots: Vec<Option<ExecRow>> = rows.into_iter().map(Some).collect();
    let rows: Vec<ExecRow> = idx
        .into_iter()
        .map(|i| {
            let mut v = slots[i].take().expect("indices are distinct").into_vec();
            let mut out = Vec::with_capacity(total_width);
            for &s in &col_perm {
                out.push(std::mem::replace(&mut v[s], Value::Null));
            }
            ExecRow::Owned(out)
        })
        .collect();

    let mut scope = Scope::default();
    for rel in relations {
        scope.push(&rel.0, rel.1.clone());
    }
    (scope, rows)
}

/// Whether the select needs grouped (aggregate) evaluation.
pub(crate) fn is_aggregate_query(select: &Select, order_by: &[OrderItem]) -> bool {
    if !select.group_by.is_empty() || select.having.is_some() {
        return true;
    }
    let proj_agg = select.projections.iter().any(|p| match p {
        SelectItem::Wildcard => false,
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
    });
    proj_agg || order_by.iter().any(|o| o.expr.contains_aggregate())
}

/// Output column name for a projection item.
pub(crate) fn projection_name(item: &SelectItem) -> String {
    match item {
        SelectItem::Wildcard => "*".to_string(),
        SelectItem::Expr { expr, alias } => match alias {
            Some(a) => a.clone(),
            None => expr.to_string(),
        },
    }
}

fn execute_select_impl(
    db: &Database,
    select: &Select,
    order_by: &[OrderItem],
    limit: Option<u64>,
    opts: ExecOptions,
    cached: Option<&sb_opt::OwnedPlan>,
    prof: Prof<'_>,
) -> Result<ResultSet> {
    if sb_obs::enabled() {
        note_dispatch(opts.compiled);
    }
    let ctx = EvalContext::new(db);

    // Reserve this SELECT's profile block before resolving relations:
    // derived tables execute during resolution and must register their
    // blocks *after* the enclosing one (the order renderers replay).
    let bp: Option<BlockProf<'_>> = prof.map(|p| BlockProf {
        prof: p,
        block: p.begin_block(1 + select.joins.len()),
    });

    // Resolve every relation and build the full scope up front, so
    // pushdown decisions see exactly what the residual filter would.
    let mut relations = vec![resolve_relation(db, &select.from, opts, prof)?];
    for join in &select.joins {
        relations.push(resolve_relation(db, &join.table, opts, prof)?);
    }
    let mut full_scope = Scope::default();
    for rel in &relations {
        full_scope.push(&rel.binding, rel.columns.clone());
    }

    // Plan the statement (or, with optimization off, just split the
    // WHERE clause the way the legacy path always has). Name resolution
    // inside the planner delegates back to this scope, so pushdown and
    // reorder decisions see exactly what the residual filter would.
    let resolver = ScopeResolver(&full_scope);
    let rels_meta;
    let planned = if opts.optimize {
        // A cached plan (the serve-layer prepared path) skips the whole
        // rewrite pipeline; `reify` rebuilds the exact borrowing plan the
        // planner produced at prepare time. A mismatch — possible only if
        // a caller pairs a plan with the wrong statement — re-plans.
        Some(match cached.and_then(|c| c.reify(select)) {
            Some(p) => p,
            None => {
                rels_meta = rel_metas(&relations);
                let input = sb_opt::PlanInput {
                    select,
                    order_by,
                    limit,
                    rels: &rels_meta,
                    opts: opts.opt_options(),
                };
                sb_opt::plan_select(&input, &resolver)
            }
        })
    } else {
        None
    };
    let (pushed, residual) = match &planned {
        Some(p) => (p.pushed.clone(), p.residual.clone()),
        None => {
            let nullable: Vec<bool> = std::iter::once(false)
                .chain(select.joins.iter().map(|j| j.left))
                .collect();
            sb_opt::assign_pushdown(
                select.selection.as_ref(),
                &resolver,
                relations.len(),
                &nullable,
                opts.predicate_pushdown,
            )
        }
    };

    // Attempt vectorized batch execution before any rows are scanned:
    // the batch path works directly on the tables' columnar images. A
    // `None` from `try_select` means some shape or data condition fell
    // outside the kernel set — fall through to the row pipeline, which
    // is also the only place errors are raised.
    if opts.columnar && sb_opt::columnar_eligible(select, order_by) {
        let input = crate::batch::BatchInput {
            select,
            order_by,
            scope: &full_scope,
            relations: &relations,
            pushed: &pushed,
            residual: &residual,
            planned: planned.as_ref(),
            nested_loop: matches!(opts.join, JoinStrategy::NestedLoop),
            par: crate::batch::ParConfig::from_options(&opts),
            bp,
        };
        if let Some(projected) = crate::batch::try_select(&input) {
            if let Some(bp) = &bp {
                bp.prof.set_columnar(bp.block, true);
            }
            let r = Ok(finish_select(select, order_by, limit, projected, bp));
            return r;
        }
        if let Some(bp) = &bp {
            // The batch path may have recorded operators before bailing;
            // zero them so the row-engine retry doesn't double-count.
            bp.prof.reset_block(bp.block);
            if !bp.prof.has_fallback(bp.block) {
                bp.prof.set_fallback(bp.block, "kernel");
            }
        }
    }

    let mut rel_names: Vec<(String, Vec<String>)> = relations
        .iter()
        .map(|r| (r.binding.clone(), r.columns.clone()))
        .collect();
    let mut scanned = Vec::with_capacity(rel_names.len());
    for (i, (rel, pushed)) in relations.into_iter().zip(&pushed).enumerate() {
        let prof_op = bp.as_ref().and_then(|b| b.scan(i));
        let t0 = prof_clock(&bp);
        scanned.push(scan_relation(rel, pushed, &ctx, opts, prof_op)?);
        prof_elapsed(t0, prof_op);
    }

    // Projection pushdown: narrow each scan to the columns the planner
    // proved are referenced (by name, so ambiguity errors and ORDER BY
    // alias resolution behave identically on the narrowed scope).
    if let Some(p) = &planned {
        for (i, keep) in p.keep.iter().enumerate() {
            let Some(kept) = keep else { continue };
            let names: Vec<String> = kept.iter().map(|&c| rel_names[i].1[c].clone()).collect();
            rel_names[i].1 = names;
            for row in &mut scanned[i] {
                let narrowed: Vec<Value> = kept.iter().map(|&c| row[c].clone()).collect();
                *row = ExecRow::Owned(narrowed);
            }
        }
    }

    let (scope, mut rows) = match &planned {
        Some(p) if p.reordered => join_relations_reordered(scanned, &rel_names, p, bp),
        Some(p) => join_relations(
            scanned,
            &rel_names,
            &select.joins,
            &ctx,
            opts,
            Some(&p.build_sides),
            bp,
        )?,
        None => join_relations(scanned, &rel_names, &select.joins, &ctx, opts, None, bp)?,
    };

    if !residual.is_empty() {
        let filter_op = bp.as_ref().and_then(|b| b.fixed(FixedOp::Filter));
        let filter_in = rows.len();
        let t0 = prof_clock(&bp);
        let progs: Option<Vec<CExpr>> = opts
            .compiled
            .then(|| residual.iter().map(|c| compile(c, &scope, &ctx)).collect());
        let mut kept = Vec::with_capacity(rows.len());
        'row: for row in rows {
            match &progs {
                Some(progs) => {
                    for prog in progs {
                        if !prog.eval_filter(&row, &ctx)? {
                            continue 'row;
                        }
                    }
                }
                None => {
                    for conj in &residual {
                        if !eval_filter(conj, &row, &scope, &ctx)? {
                            continue 'row;
                        }
                    }
                }
            }
            kept.push(row);
        }
        rows = kept;
        if let Some(op) = filter_op {
            op.rows(filter_in as u64, rows.len() as u64);
            op.add_batches(residual.len() as u64);
            prof_elapsed(t0, Some(op));
        }
    }

    let agg = is_aggregate_query(select, order_by);
    let agg_op = (agg && bp.is_some())
        .then(|| bp.as_ref().and_then(|b| b.fixed(FixedOp::Aggregate)))
        .flatten();
    let agg_in = rows.len();
    let t0 = prof_clock(&bp);
    let projected = if agg {
        execute_grouped(select, order_by, &scope, rows, &ctx, opts, agg_op)?
    } else {
        execute_plain(select, order_by, &scope, rows, &ctx, opts)?
    };
    if let Some(op) = agg_op {
        op.rows(agg_in as u64, projected.1.len() as u64);
        prof_elapsed(t0, Some(op));
    }
    Ok(finish_select(select, order_by, limit, projected, bp))
}

/// The shared result tail of the row and batch pipelines: DISTINCT
/// dedup (keeping sort keys aligned), ORDER BY (bounded top-K under
/// LIMIT), LIMIT truncation.
pub(crate) fn finish_select(
    select: &Select,
    order_by: &[OrderItem],
    limit: Option<u64>,
    projected: Projected,
    bp: Option<BlockProf<'_>>,
) -> ResultSet {
    let (columns, mut out_rows, mut keys) = projected;

    if select.distinct {
        let op = bp.as_ref().and_then(|b| b.fixed(FixedOp::Distinct));
        let t0 = prof_clock(&bp);
        let rows_in = out_rows.len();
        // Dedup rows, keeping sort keys aligned.
        let mut index = KeyIndex::with_capacity(out_rows.len());
        let mut rows2: Vec<Vec<Value>> = Vec::with_capacity(out_rows.len());
        let mut keys2 = Vec::with_capacity(keys.len());
        for (row, sort_key) in out_rows.into_iter().zip(keys) {
            let h = key::hash_values(&row);
            if index
                .insert(h, rows2.len() as u32, |t| {
                    key::values_key_eq(&rows2[t as usize], &row)
                })
                .is_none()
            {
                rows2.push(row);
                keys2.push(sort_key);
            }
        }
        out_rows = rows2;
        keys = keys2;
        if let Some(op) = op {
            op.rows(rows_in as u64, out_rows.len() as u64);
            prof_elapsed(t0, Some(op));
        }
    }

    let order_op = (!order_by.is_empty() || limit.is_some())
        .then(|| bp.as_ref().and_then(|b| b.fixed(FixedOp::Order)))
        .flatten();
    let order_in = out_rows.len();
    let order_t0 = prof_clock(&bp);

    if !order_by.is_empty() {
        // Total order: ORDER BY keys, then input position — making the
        // bounded top-K heap under LIMIT agree exactly with a stable
        // full sort.
        let cmp = |&a: &usize, &b: &usize| -> Ordering {
            for (item, (ka, kb)) in order_by.iter().zip(keys[a].iter().zip(keys[b].iter())) {
                let ord = ka.total_cmp(kb);
                let ord = if item.desc { ord.reverse() } else { ord };
                if !ord.is_eq() {
                    return ord;
                }
            }
            a.cmp(&b)
        };
        let order = match limit {
            Some(n) if (n as usize) < out_rows.len() => {
                top_k_indices(out_rows.len(), n as usize, cmp)
            }
            _ => {
                let mut idx: Vec<usize> = (0..out_rows.len()).collect();
                idx.sort_unstable_by(&cmp);
                idx
            }
        };
        out_rows = permute(out_rows, &order);
    }

    if let Some(n) = limit {
        out_rows.truncate(n as usize);
    }
    if let Some(op) = order_op {
        op.rows(order_in as u64, out_rows.len() as u64);
        prof_elapsed(order_t0, Some(op));
    }

    ResultSet {
        columns,
        rows: out_rows,
        ordered: !order_by.is_empty(),
    }
}

/// Reorder `rows` to `order` (a set of distinct indices) without cloning
/// any row.
fn permute(rows: Vec<Vec<Value>>, order: &[usize]) -> Vec<Vec<Value>> {
    let mut slots: Vec<Option<Vec<Value>>> = rows.into_iter().map(Some).collect();
    order
        .iter()
        .map(|&i| slots[i].take().expect("indices are distinct"))
        .collect()
}

/// Indices of the least `k` elements under `cmp` (a strict total order),
/// sorted — identical to sorting all of `0..len` and truncating, but via
/// a bounded max-heap: O(len · log k) and O(k) memory.
fn top_k_indices(len: usize, k: usize, cmp: impl Fn(&usize, &usize) -> Ordering) -> Vec<usize> {
    if k == 0 {
        return Vec::new();
    }
    // `heap[0]` is the worst (greatest) element kept so far.
    let mut heap: Vec<usize> = Vec::with_capacity(k);
    let mut pushes: u64 = 0;
    for i in 0..len {
        if heap.len() < k {
            pushes += 1;
            heap.push(i);
            let mut c = heap.len() - 1;
            while c > 0 {
                let p = (c - 1) / 2;
                if cmp(&heap[c], &heap[p]) == Ordering::Greater {
                    heap.swap(c, p);
                    c = p;
                } else {
                    break;
                }
            }
        } else if cmp(&i, &heap[0]) == Ordering::Less {
            pushes += 1;
            heap[0] = i;
            let mut p = 0;
            loop {
                let (l, r) = (2 * p + 1, 2 * p + 2);
                let mut m = p;
                if l < heap.len() && cmp(&heap[l], &heap[m]) == Ordering::Greater {
                    m = l;
                }
                if r < heap.len() && cmp(&heap[r], &heap[m]) == Ordering::Greater {
                    m = r;
                }
                if m == p {
                    break;
                }
                heap.swap(p, m);
                p = m;
            }
        }
    }
    if sb_obs::enabled() {
        note_topk(pushes);
    }
    heap.sort_unstable_by(|a, b| cmp(a, b));
    heap
}

/// Output columns, projected rows, and per-row ORDER BY keys — what a
/// projection pipeline (row or batch) hands to [`finish_select`].
pub(crate) type Projected = (Vec<String>, Vec<Vec<Value>>, Vec<Vec<Value>>);

/// A compiled projection item.
enum ProjProg<'q> {
    Wildcard,
    Expr(CExpr<'q>),
}

/// Non-aggregate path: project each row, computing sort keys in-scope.
fn execute_plain(
    select: &Select,
    order_by: &[OrderItem],
    scope: &Scope,
    rows: Vec<ExecRow>,
    ctx: &EvalContext,
    opts: ExecOptions,
) -> Result<Projected> {
    let mut columns = Vec::new();
    for item in &select.projections {
        match item {
            SelectItem::Wildcard => columns.extend(scope.all_columns()),
            other => columns.push(projection_name(other)),
        }
    }
    // A bare `SELECT *` needs no per-cell work: the row comes back as-is.
    let passthrough =
        matches!(select.projections[..], [SelectItem::Wildcard]) && order_by.is_empty();
    if passthrough {
        let out_rows: Vec<Vec<Value>> = rows.into_iter().map(ExecRow::into_vec).collect();
        let keys = vec![Vec::new(); out_rows.len()];
        return Ok((columns, out_rows, keys));
    }
    let mut out_rows = Vec::with_capacity(rows.len());
    let mut keys = Vec::with_capacity(rows.len());
    if opts.compiled {
        let projs: Vec<ProjProg> = select
            .projections
            .iter()
            .map(|item| match item {
                SelectItem::Wildcard => ProjProg::Wildcard,
                SelectItem::Expr { expr, .. } => ProjProg::Expr(compile(expr, scope, ctx)),
            })
            .collect();
        let order_progs: Vec<OrderProg> = order_by
            .iter()
            .map(|item| compile_order_key(&item.expr, scope, ctx, select))
            .collect();
        for row in &rows {
            let mut out = Vec::with_capacity(columns.len());
            for proj in &projs {
                match proj {
                    ProjProg::Wildcard => out.extend(row.iter().cloned()),
                    ProjProg::Expr(prog) => out.push(prog.eval(row, ctx)?.into_value()),
                }
            }
            let mut key = Vec::with_capacity(order_by.len());
            for prog in &order_progs {
                key.push(prog.eval(row, &out, ctx)?);
            }
            out_rows.push(out);
            keys.push(key);
        }
    } else {
        for row in &rows {
            let mut out = Vec::with_capacity(columns.len());
            for item in &select.projections {
                match item {
                    SelectItem::Wildcard => out.extend(row.iter().cloned()),
                    SelectItem::Expr { expr, .. } => out.push(eval(expr, row, scope, ctx)?),
                }
            }
            let mut key = Vec::with_capacity(order_by.len());
            for item in order_by {
                key.push(eval_order_key(&item.expr, row, scope, ctx, select, &out)?);
            }
            out_rows.push(out);
            keys.push(key);
        }
    }
    Ok((columns, out_rows, keys))
}

/// Evaluate an ORDER BY key: prefer in-scope evaluation; fall back to a
/// projection alias or output-column name.
fn eval_order_key(
    expr: &Expr,
    row: &[Value],
    scope: &Scope,
    ctx: &EvalContext,
    select: &Select,
    projected: &[Value],
) -> Result<Value> {
    match eval(expr, row, scope, ctx) {
        Ok(v) => Ok(v),
        Err(EngineError::UnknownColumn(_)) => {
            // Maybe it names a projection alias.
            if let Expr::Column(c) = expr {
                if c.table.is_none() {
                    for (i, item) in select.projections.iter().enumerate() {
                        if let SelectItem::Expr { alias: Some(a), .. } = item {
                            if a.eq_ignore_ascii_case(&c.column) {
                                return Ok(projected[i].clone());
                            }
                        }
                    }
                }
            }
            Err(EngineError::UnknownColumn(expr.to_string()))
        }
        Err(e) => Err(e),
    }
}

/// Aggregate path: group, filter with HAVING, project per group.
fn execute_grouped(
    select: &Select,
    order_by: &[OrderItem],
    scope: &Scope,
    rows: Vec<ExecRow>,
    ctx: &EvalContext,
    opts: ExecOptions,
    agg_op: Option<&OpStats>,
) -> Result<Projected> {
    // Group rows by evaluated GROUP BY key — hashed `Vec<Value>` keys
    // under the canonical-key relation, no string concatenation.
    let mut groups: Vec<Vec<ExecRow>> = Vec::new();
    if select.group_by.is_empty() {
        // Single implicit group — even over zero rows (COUNT(*) = 0).
        groups.push(rows);
    } else {
        let gprogs: Option<Vec<CExpr>> = opts.compiled.then(|| {
            select
                .group_by
                .iter()
                .map(|ge| compile(ge, scope, ctx))
                .collect()
        });
        let mut index = KeyIndex::default();
        let mut group_keys: Vec<Vec<Value>> = Vec::new();
        match &gprogs {
            Some(progs) => {
                // Hash and compare the key cells as borrows straight out
                // of the row; an owned key is cloned only when the group
                // is new. Re-evaluating a program for the equality (and
                // new-group) probes is sound because compiled evaluation
                // is deterministic — the hash pass already surfaced any
                // error this row can raise.
                for row in rows {
                    let mut hasher = key::FxHasher::default();
                    for prog in progs {
                        prog.eval(&row, ctx)?.hash_key(&mut hasher);
                    }
                    let h = hasher.finish();
                    match index.insert(h, groups.len() as u32, |t| {
                        group_keys[t as usize]
                            .iter()
                            .zip(progs)
                            .all(|(k, p)| p.eval(&row, ctx).is_ok_and(|cv| cv.key_eq(k)))
                    }) {
                        Some(slot) => groups[slot as usize].push(row),
                        None => {
                            let mut gkey = Vec::with_capacity(progs.len());
                            for prog in progs {
                                gkey.push(prog.eval(&row, ctx)?.into_value());
                            }
                            group_keys.push(gkey);
                            groups.push(vec![row]);
                        }
                    }
                }
            }
            None => {
                let mut key_buf: Vec<Value> = Vec::with_capacity(select.group_by.len());
                for row in rows {
                    key_buf.clear();
                    for ge in &select.group_by {
                        key_buf.push(eval(ge, &row, scope, ctx)?);
                    }
                    let h = key::hash_values(&key_buf);
                    match index.insert(h, groups.len() as u32, |t| {
                        key::values_key_eq(&group_keys[t as usize], &key_buf)
                    }) {
                        Some(slot) => groups[slot as usize].push(row),
                        None => {
                            group_keys.push(std::mem::take(&mut key_buf));
                            key_buf = Vec::with_capacity(select.group_by.len());
                            groups.push(vec![row]);
                        }
                    }
                }
            }
        }
    }

    if sb_obs::enabled() {
        note_groups(groups.len());
    }
    if let Some(op) = agg_op {
        op.groups(groups.len() as u64);
    }

    let mut columns = Vec::new();
    for item in &select.projections {
        match item {
            SelectItem::Wildcard => {
                return Err(EngineError::Unsupported(
                    "SELECT * with GROUP BY / aggregates".into(),
                ))
            }
            other => columns.push(projection_name(other)),
        }
    }

    let mut out_rows = Vec::new();
    let mut keys = Vec::new();
    if opts.compiled {
        let having: Option<GExpr> = select
            .having
            .as_ref()
            .map(|h| compile_grouped(h, scope, ctx));
        let projs: Vec<GExpr> = select
            .projections
            .iter()
            .filter_map(|item| match item {
                SelectItem::Wildcard => None,
                SelectItem::Expr { expr, .. } => Some(compile_grouped(expr, scope, ctx)),
            })
            .collect();
        let order_progs: Vec<GExpr> = order_by
            .iter()
            .map(|item| compile_grouped(&item.expr, scope, ctx))
            .collect();
        for group in &groups {
            if let Some(h) = &having {
                if !truth(h.eval(group, ctx)?)?.unwrap_or(false) {
                    continue;
                }
            }
            let mut out = Vec::with_capacity(columns.len());
            for prog in &projs {
                out.push(prog.eval(group, ctx)?);
            }
            let mut key = Vec::with_capacity(order_by.len());
            for prog in &order_progs {
                key.push(prog.eval(group, ctx)?);
            }
            out_rows.push(out);
            keys.push(key);
        }
    } else {
        for group in &groups {
            if let Some(h) = &select.having {
                let v = eval_grouped(h, group, scope, ctx)?;
                if !truth(v)?.unwrap_or(false) {
                    continue;
                }
            }
            let mut out = Vec::with_capacity(columns.len());
            for item in &select.projections {
                if let SelectItem::Expr { expr, .. } = item {
                    out.push(eval_grouped(expr, group, scope, ctx)?);
                }
            }
            let mut key = Vec::with_capacity(order_by.len());
            for item in order_by {
                key.push(eval_grouped(&item.expr, group, scope, ctx)?);
            }
            out_rows.push(out);
            keys.push(key);
        }
    }
    Ok((columns, out_rows, keys))
}

/// Evaluate an expression in group context: aggregate nodes consume the
/// whole group; everything else is evaluated on the group's first row
/// (valid for GROUP BY keys, which are constant within a group).
fn eval_grouped(expr: &Expr, group: &[ExecRow], scope: &Scope, ctx: &EvalContext) -> Result<Value> {
    match expr {
        Expr::Agg {
            func,
            distinct,
            arg,
        } => eval_aggregate(*func, *distinct, arg, group, scope, ctx),
        Expr::Binary { left, op, right } => {
            let l = eval_grouped(left, group, scope, ctx)?;
            let r = eval_grouped(right, group, scope, ctx)?;
            // Reuse scalar machinery by treating computed values as
            // literals.
            let le = value_to_literal_expr(l);
            let re = value_to_literal_expr(r);
            let combined = Expr::Binary {
                left: Box::new(le),
                op: *op,
                right: Box::new(re),
            };
            eval(&combined, &[], &Scope::default(), ctx)
        }
        Expr::Unary { op, expr } => {
            let v = eval_grouped(expr, group, scope, ctx)?;
            let inner = value_to_literal_expr(v);
            eval(
                &Expr::Unary {
                    op: *op,
                    expr: Box::new(inner),
                },
                &[],
                &Scope::default(),
                ctx,
            )
        }
        other => match group.first() {
            Some(row) => eval(other, row, scope, ctx),
            // Empty implicit group: non-aggregate expressions are NULL.
            None => Ok(Value::Null),
        },
    }
}

fn value_to_literal_expr(v: Value) -> Expr {
    use sb_sql::Literal;
    Expr::Literal(match v {
        Value::Null => Literal::Null,
        Value::Int(i) => Literal::Int(i),
        Value::Float(f) => Literal::Float(f),
        Value::Text(s) => Literal::Str(s),
        Value::Bool(b) => Literal::Bool(b),
    })
}

fn eval_aggregate(
    func: AggFunc,
    distinct: bool,
    arg: &AggArg,
    group: &[ExecRow],
    scope: &Scope,
    ctx: &EvalContext,
) -> Result<Value> {
    // COUNT(*) counts rows including NULLs.
    if matches!((func, arg), (AggFunc::Count, AggArg::Star)) {
        return Ok(Value::Int(group.len() as i64));
    }
    let AggArg::Expr(e) = arg else {
        return Err(EngineError::Unsupported(format!(
            "{}(*) is only valid for COUNT",
            func.as_str()
        )));
    };
    let mut values = Vec::with_capacity(group.len());
    for row in group {
        let v = eval(e, row, scope, ctx)?;
        if !v.is_null() {
            values.push(v);
        }
    }
    if distinct {
        key::dedup_values(&mut values);
    }
    finish_aggregate(func, values)
}

/// Reduce the non-NULL (and, for DISTINCT, deduped) argument values of
/// an aggregate call. Shared by the interpreter and the compiled
/// evaluator.
pub(crate) fn finish_aggregate(func: AggFunc, values: Vec<Value>) -> Result<Value> {
    match func {
        AggFunc::Count => Ok(Value::Int(values.len() as i64)),
        AggFunc::Sum => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let all_int = values.iter().all(|v| matches!(v, Value::Int(_)));
            if all_int {
                // Checked: an overflowing SUM is a defined `Overflow`
                // error, byte-identical to the reference interpreter's.
                let mut sum = 0i64;
                for v in &values {
                    if let Value::Int(i) = v {
                        sum = sum
                            .checked_add(*i)
                            .ok_or_else(|| EngineError::Overflow("SUM exceeds i64".to_string()))?;
                    }
                }
                Ok(Value::Int(sum))
            } else {
                let mut sum = 0.0;
                for v in &values {
                    sum += v.as_f64().ok_or_else(|| {
                        EngineError::TypeMismatch(format!("SUM over non-numeric value {v}"))
                    })?;
                }
                Ok(Value::Float(sum))
            }
        }
        AggFunc::Avg => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let mut sum = 0.0;
            for v in &values {
                sum += v.as_f64().ok_or_else(|| {
                    EngineError::TypeMismatch(format!("AVG over non-numeric value {v}"))
                })?;
            }
            Ok(Value::Float(sum / values.len() as f64))
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<Value> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let take_new = match v.compare(&b) {
                            Some(ord) => {
                                (func == AggFunc::Min && ord.is_lt())
                                    || (func == AggFunc::Max && ord.is_gt())
                            }
                            None => {
                                return Err(EngineError::TypeMismatch(
                                    "MIN/MAX over mixed types".into(),
                                ))
                            }
                        };
                        if take_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
    }
}

/// Order a set-operation result by output column names or 1-based
/// ordinals. Under a LIMIT smaller than the result, only the top K rows
/// are kept (bounded heap) instead of sorting everything.
fn apply_output_order(
    rs: &mut ResultSet,
    order_by: &[OrderItem],
    limit: Option<u64>,
) -> Result<()> {
    if order_by.is_empty() {
        return Ok(());
    }
    let mut key_idx = Vec::with_capacity(order_by.len());
    for item in order_by {
        let idx = match &item.expr {
            Expr::Column(c) if c.table.is_none() => rs
                .columns
                .iter()
                .position(|name| name.eq_ignore_ascii_case(&c.column))
                .ok_or_else(|| EngineError::UnknownColumn(c.column.clone()))?,
            // Ordinals are validated even when the result has no rows to
            // sort: `ORDER BY 5` over two columns is an error, not a no-op.
            Expr::Literal(sb_sql::Literal::Int(n)) if *n >= 1 => {
                let idx = (*n as usize) - 1;
                if idx >= rs.columns.len() {
                    return Err(EngineError::UnknownColumn(format!(
                        "ORDER BY position {n} of {} columns",
                        rs.columns.len()
                    )));
                }
                idx
            }
            other => {
                return Err(EngineError::Unsupported(format!(
                    "ORDER BY `{other}` after a set operation (use an output column)"
                )))
            }
        };
        key_idx.push((idx, item.desc));
    }
    let rows = std::mem::take(&mut rs.rows);
    let cmp = |&a: &usize, &b: &usize| -> Ordering {
        for (idx, desc) in &key_idx {
            let ord = rows[a][*idx].total_cmp(&rows[b][*idx]);
            let ord = if *desc { ord.reverse() } else { ord };
            if !ord.is_eq() {
                return ord;
            }
        }
        a.cmp(&b)
    };
    let order = match limit {
        Some(n) if (n as usize) < rows.len() => top_k_indices(rows.len(), n as usize, cmp),
        _ => {
            let mut idx: Vec<usize> = (0..rows.len()).collect();
            idx.sort_unstable_by(&cmp);
            idx
        }
    };
    rs.rows = permute(rows, &order);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_schema::{Column, ColumnType, Schema, TableDef};

    #[test]
    fn capped_workers_divides_the_budget() {
        let base = ExecOptions {
            workers: 8,
            ..ExecOptions::default()
        };
        assert_eq!(base.capped_workers(1).workers, 8);
        assert_eq!(base.capped_workers(2).workers, 4);
        // Zero in-flight (caller races the gate) behaves like one.
        assert_eq!(base.capped_workers(0).workers, 8);
        // Saturated service: never below one worker.
        assert_eq!(base.capped_workers(100).workers, 1);
        // Serial sessions are untouched.
        let off = ExecOptions {
            parallel: false,
            workers: 8,
            ..ExecOptions::default()
        };
        assert_eq!(off.capped_workers(4).workers, 8);
    }

    fn galaxy_db() -> Database {
        let schema = Schema::new("t")
            .with_table(TableDef::new(
                "specobj",
                vec![
                    Column::pk("specobjid", ColumnType::Int),
                    Column::new("class", ColumnType::Text),
                    Column::new("z", ColumnType::Float),
                    Column::new("bestobjid", ColumnType::Int),
                ],
            ))
            .with_table(TableDef::new(
                "photoobj",
                vec![
                    Column::pk("objid", ColumnType::Int),
                    Column::new("u", ColumnType::Float),
                    Column::new("r", ColumnType::Float),
                ],
            ));
        let mut db = Database::new(schema);
        db.table_mut("specobj").unwrap().push_rows(vec![
            vec![1.into(), "GALAXY".into(), 0.7.into(), 10.into()],
            vec![2.into(), "GALAXY".into(), 1.5.into(), 20.into()],
            vec![3.into(), "STAR".into(), 0.0.into(), 30.into()],
            vec![4.into(), "QSO".into(), 2.5.into(), Value::Null],
            vec![5.into(), "GALAXY".into(), Value::Null, 10.into()],
        ]);
        db.table_mut("photoobj").unwrap().push_rows(vec![
            vec![10.into(), 18.0.into(), 16.5.into()],
            vec![20.into(), 19.0.into(), 15.0.into()],
            vec![40.into(), 21.0.into(), 20.5.into()],
        ]);
        db
    }

    #[test]
    fn filter_and_project() {
        let db = galaxy_db();
        let r = db
            .run("SELECT specobjid FROM specobj WHERE class = 'GALAXY' AND z > 0.5")
            .unwrap();
        let ids: Vec<_> = r.rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(ids, vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn wildcard_expansion() {
        let db = galaxy_db();
        let r = db.run("SELECT * FROM photoobj").unwrap();
        assert_eq!(r.columns, vec!["objid", "u", "r"]);
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn distinct_dedupes() {
        let db = galaxy_db();
        let r = db.run("SELECT DISTINCT class FROM specobj").unwrap();
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn group_by_count_and_having() {
        let db = galaxy_db();
        let r = db
            .run("SELECT class, COUNT(*) FROM specobj GROUP BY class HAVING COUNT(*) >= 2")
            .unwrap();
        assert_eq!(r.rows, vec![vec!["GALAXY".into(), Value::Int(3)]]);
    }

    #[test]
    fn aggregates_skip_nulls() {
        let db = galaxy_db();
        let r = db
            .run("SELECT COUNT(z), COUNT(*), AVG(z) FROM specobj")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(4));
        assert_eq!(r.rows[0][1], Value::Int(5));
        let avg = r.rows[0][2].as_f64().unwrap();
        assert!((avg - (0.7 + 1.5 + 0.0 + 2.5) / 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_group_count_is_zero_sum_is_null() {
        let db = galaxy_db();
        let r = db
            .run("SELECT COUNT(*), SUM(z) FROM specobj WHERE class = 'NOPE'")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn inner_join_hash_path() {
        let db = galaxy_db();
        let r = db
            .run(
                "SELECT s.specobjid, p.objid FROM specobj AS s \
                 JOIN photoobj AS p ON s.bestobjid = p.objid",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 3); // ids 1,2,5 match; 3 has no photo 30; 4 is NULL
    }

    #[test]
    fn left_join_pads_nulls() {
        let db = galaxy_db();
        let r = db
            .run(
                "SELECT s.specobjid, p.objid FROM specobj AS s \
                 LEFT JOIN photoobj AS p ON s.bestobjid = p.objid",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 5);
        let unmatched: Vec<_> = r.rows.iter().filter(|r| r[1].is_null()).collect();
        assert_eq!(unmatched.len(), 2);
    }

    #[test]
    fn join_nested_loop_with_inequality() {
        let db = galaxy_db();
        let r = db
            .run(
                "SELECT s.specobjid FROM specobj AS s \
                 JOIN photoobj AS p ON s.bestobjid < p.objid WHERE s.specobjid = 3",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 1); // 30 < 40 only
    }

    #[test]
    fn order_by_and_limit() {
        let db = galaxy_db();
        let r = db
            .run("SELECT specobjid, z FROM specobj WHERE z IS NOT NULL ORDER BY z DESC LIMIT 2")
            .unwrap();
        assert!(r.ordered);
        assert_eq!(r.rows[0][0], Value::Int(4));
        assert_eq!(r.rows[1][0], Value::Int(2));
    }

    #[test]
    fn order_by_aggregate() {
        let db = galaxy_db();
        let r = db
            .run("SELECT class FROM specobj GROUP BY class ORDER BY COUNT(*) DESC LIMIT 1")
            .unwrap();
        assert_eq!(r.rows, vec![vec!["GALAXY".into()]]);
    }

    #[test]
    fn order_by_alias() {
        let db = galaxy_db();
        let r = db
            .run("SELECT z AS redshift FROM specobj WHERE z IS NOT NULL ORDER BY redshift")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Float(0.0));
    }

    #[test]
    fn scalar_subquery_average() {
        let db = galaxy_db();
        let r = db
            .run("SELECT specobjid FROM specobj WHERE z > (SELECT AVG(z) FROM specobj)")
            .unwrap();
        // avg = 1.175; z>avg: 1.5 (id 2), 2.5 (id 4)
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn in_subquery() {
        let db = galaxy_db();
        let r = db
            .run(
                "SELECT specobjid FROM specobj WHERE bestobjid IN \
                 (SELECT objid FROM photoobj WHERE u - r > 3)",
            )
            .unwrap();
        // u-r: 1.5, 4.0, 0.5 → objid 20; specobj with bestobjid 20 = id 2
        assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn not_in_subquery_with_null_probe() {
        let db = galaxy_db();
        // Row 4 has NULL bestobjid: NULL NOT IN (...) is NULL → filtered.
        let r = db
            .run(
                "SELECT specobjid FROM specobj WHERE bestobjid NOT IN \
                 (SELECT objid FROM photoobj)",
            )
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn exists_subquery() {
        let db = galaxy_db();
        let r = db
            .run("SELECT COUNT(*) FROM specobj WHERE EXISTS (SELECT * FROM photoobj)")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(5));
    }

    #[test]
    fn union_and_intersect() {
        let db = galaxy_db();
        let r = db
            .run("SELECT class FROM specobj UNION SELECT class FROM specobj")
            .unwrap();
        assert_eq!(r.rows.len(), 3, "UNION dedupes");
        let r = db
            .run("SELECT class FROM specobj UNION ALL SELECT class FROM specobj")
            .unwrap();
        assert_eq!(r.rows.len(), 10, "UNION ALL keeps duplicates");
        let r = db
            .run(
                "SELECT class FROM specobj WHERE z > 1 \
                 INTERSECT SELECT class FROM specobj WHERE z < 1",
            )
            .unwrap();
        // GALAXY occurs on both sides (z=1.5 and z=0.7); QSO and STAR only
        // on one side each.
        assert_eq!(r.rows, vec![vec![Value::Text("GALAXY".into())]]);
        let r = db
            .run("SELECT class FROM specobj EXCEPT SELECT class FROM specobj WHERE class = 'STAR'")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn set_op_order_by_column_name() {
        let db = galaxy_db();
        let r = db
            .run(
                "SELECT class FROM specobj UNION SELECT class FROM specobj \
                 ORDER BY class DESC LIMIT 1",
            )
            .unwrap();
        assert_eq!(r.rows, vec![vec!["STAR".into()]]);
    }

    #[test]
    fn derived_table() {
        let db = galaxy_db();
        let r = db
            .run(
                "SELECT g.class, g.n FROM \
                 (SELECT class, COUNT(*) AS n FROM specobj GROUP BY class) AS g \
                 WHERE g.n >= 2",
            )
            .unwrap();
        assert_eq!(r.rows, vec![vec!["GALAXY".into(), Value::Int(3)]]);
    }

    #[test]
    fn between_and_in_list() {
        let db = galaxy_db();
        let r = db
            .run("SELECT specobjid FROM specobj WHERE z BETWEEN 0.5 AND 2 AND class IN ('GALAXY', 'QSO')")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let db = galaxy_db();
        assert!(matches!(
            db.run("SELECT * FROM nope"),
            Err(EngineError::UnknownTable(_))
        ));
        assert!(matches!(
            db.run("SELECT nope FROM specobj"),
            Err(EngineError::UnknownColumn(_))
        ));
        assert!(db.run("SELECT objid FROM specobj AS a JOIN photoobj AS b ON a.bestobjid = b.objid JOIN photoobj AS c ON a.bestobjid = c.objid").is_err());
    }

    #[test]
    fn aggregate_with_math_argument() {
        let db = galaxy_db();
        let r = db.run("SELECT AVG(u - r) FROM photoobj").unwrap();
        let avg = r.rows[0][0].as_f64().unwrap();
        assert!((avg - (1.5 + 4.0 + 0.5) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn count_distinct() {
        let db = galaxy_db();
        let r = db.run("SELECT COUNT(DISTINCT class) FROM specobj").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(3));
    }

    #[test]
    fn group_expression_in_projection() {
        let db = galaxy_db();
        let r = db
            .run("SELECT class, MAX(z) - MIN(z) FROM specobj GROUP BY class ORDER BY class")
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        let galaxy = &r.rows[0];
        assert_eq!(galaxy[0], Value::Text("GALAXY".into()));
        assert!((galaxy[1].as_f64().unwrap() - 0.8).abs() < 1e-9);
    }

    // -----------------------------------------------------------------
    // Executor-option equivalence and pushdown semantics.

    /// Queries exercising scans, filters, joins (equi and not), left
    /// joins, grouping, subqueries and derived tables.
    const STRATEGY_CASES: [&str; 8] = [
        "SELECT specobjid FROM specobj WHERE class = 'GALAXY' AND z > 0.5",
        "SELECT s.specobjid, p.objid FROM specobj AS s \
         JOIN photoobj AS p ON s.bestobjid = p.objid",
        "SELECT s.specobjid, p.objid FROM specobj AS s \
         JOIN photoobj AS p ON s.bestobjid = p.objid \
         WHERE s.class = 'GALAXY' AND p.u - p.r < 2.22 AND p.u - p.r > 1",
        "SELECT s.specobjid, p.objid FROM specobj AS s \
         LEFT JOIN photoobj AS p ON s.bestobjid = p.objid WHERE p.objid IS NULL",
        "SELECT s.specobjid FROM specobj AS s \
         JOIN photoobj AS p ON s.bestobjid < p.objid WHERE s.specobjid = 3",
        "SELECT class, COUNT(*) FROM specobj GROUP BY class HAVING COUNT(*) >= 2",
        "SELECT specobjid FROM specobj WHERE bestobjid IN \
         (SELECT objid FROM photoobj) AND class = 'GALAXY' ORDER BY specobjid",
        "SELECT g.class FROM (SELECT class, COUNT(*) AS n FROM specobj \
         GROUP BY class) AS g WHERE g.n >= 2",
    ];

    #[test]
    fn all_strategies_agree_on_rows_and_order() {
        let db = galaxy_db();
        let variants = [
            ExecOptions::default(),
            ExecOptions::legacy(),
            ExecOptions {
                join: JoinStrategy::NestedLoop,
                ..Default::default()
            },
            ExecOptions {
                predicate_pushdown: false,
                ..Default::default()
            },
            ExecOptions {
                join: JoinStrategy::BuildRight,
                ..Default::default()
            },
            ExecOptions {
                compiled: false,
                ..Default::default()
            },
            ExecOptions {
                compiled: false,
                join: JoinStrategy::NestedLoop,
                ..Default::default()
            },
            ExecOptions {
                compiled: true,
                ..ExecOptions::legacy()
            },
            // The columnar batch engine must be invisible: same rows in
            // the same order whether it runs, falls back, or is off.
            ExecOptions {
                columnar: false,
                ..Default::default()
            },
            ExecOptions {
                columnar: false,
                predicate_pushdown: false,
                ..Default::default()
            },
            ExecOptions {
                columnar: false,
                compiled: false,
                join: JoinStrategy::BuildRight,
                ..Default::default()
            },
            ExecOptions {
                columnar: true,
                ..ExecOptions::legacy()
            },
        ];
        for sql in STRATEGY_CASES {
            let baseline = db.run_with(sql, variants[0]).unwrap();
            for opts in &variants[1..] {
                let got = db.run_with(sql, *opts).unwrap();
                // Strict equality: same rows in the same order, not just
                // multiset equivalence.
                assert_eq!(
                    baseline.rows, got.rows,
                    "options {opts:?} changed the result of: {sql}"
                );
            }
        }
    }

    #[test]
    fn pushdown_keeps_left_join_null_padding() {
        let db = galaxy_db();
        // `p.objid IS NULL` references only the nullable side; pushing it
        // into the photoobj scan would keep no rows and pad everything.
        let r = db
            .run(
                "SELECT s.specobjid FROM specobj AS s \
                 LEFT JOIN photoobj AS p ON s.bestobjid = p.objid \
                 WHERE p.objid IS NULL",
            )
            .unwrap();
        let ids: Vec<_> = r.rows.iter().map(|row| row[0].clone()).collect();
        assert_eq!(ids, vec![Value::Int(3), Value::Int(4)]);
    }

    #[test]
    fn pushdown_preserves_ambiguity_errors() {
        let db = galaxy_db();
        let schema_dup = Schema::new("d")
            .with_table(TableDef::new("a", vec![Column::pk("id", ColumnType::Int)]))
            .with_table(TableDef::new("b", vec![Column::pk("id", ColumnType::Int)]));
        let mut dup = Database::new(schema_dup);
        dup.table_mut("a").unwrap().push_rows(vec![vec![1.into()]]);
        dup.table_mut("b").unwrap().push_rows(vec![vec![1.into()]]);
        // `id` is ambiguous across a and b: must error with and without
        // pushdown, not silently bind to one side.
        for opts in [ExecOptions::default(), ExecOptions::legacy()] {
            assert!(matches!(
                dup.run_with(
                    "SELECT a.id FROM a JOIN b ON a.id = b.id WHERE id = 1",
                    opts
                ),
                Err(EngineError::AmbiguousColumn(_))
            ));
        }
        // Sanity: unambiguous qualified pushdown still works.
        let r = db
            .run(
                "SELECT s.specobjid FROM specobj AS s JOIN photoobj AS p \
                  ON s.bestobjid = p.objid WHERE s.class = 'STAR'",
            )
            .unwrap();
        assert!(r.rows.is_empty());
    }

    #[test]
    fn build_side_selection_matches_input_sizes() {
        // Left (5 rows) larger than right (3): Auto builds on the right;
        // flip the join order and it builds on the left. Either way the
        // results must agree with the nested loop.
        let db = galaxy_db();
        for sql in [
            "SELECT s.specobjid, p.objid FROM specobj AS s \
             JOIN photoobj AS p ON s.bestobjid = p.objid",
            "SELECT s.specobjid, p.objid FROM photoobj AS p \
             JOIN specobj AS s ON s.bestobjid = p.objid",
        ] {
            let auto = db.run_with(sql, ExecOptions::default()).unwrap();
            let nested = db
                .run_with(
                    sql,
                    ExecOptions {
                        join: JoinStrategy::NestedLoop,
                        ..Default::default()
                    },
                )
                .unwrap();
            assert_eq!(auto.rows, nested.rows, "strategy mismatch for: {sql}");
        }
    }

    #[test]
    fn conjunct_splitting_and_subquery_detection() {
        let q = sb_sql::parse(
            "SELECT specobjid FROM specobj WHERE class = 'GALAXY' AND z > 0.5 \
             AND bestobjid IN (SELECT objid FROM photoobj)",
        )
        .unwrap();
        let SetExpr::Select(select) = &q.body else {
            panic!("select expected")
        };
        let mut conj = Vec::new();
        sb_opt::split_conjuncts(select.selection.as_ref().unwrap(), &mut conj);
        assert_eq!(conj.len(), 3);
        assert!(!sb_opt::has_subquery(conj[0]));
        assert!(!sb_opt::has_subquery(conj[1]));
        assert!(sb_opt::has_subquery(conj[2]));
    }
}
