//! Compile-once expression programs.
//!
//! The tree-walking interpreter in [`crate::eval`] re-resolves every
//! `ColumnRef` by linear name comparison on every row. This module
//! lowers an [`Expr`] against its [`Scope`] exactly once, producing a
//! [`CExpr`] program in which column references are positional slots,
//! literal subtrees are constant-folded, and subqueries carry a
//! per-statement result cache — so per-row evaluation does zero name
//! lookups, zero `String` formatting, and no `Value` clones for
//! comparisons.
//!
//! Error parity with the interpreter is load-bearing: the differential
//! fuzzer runs both paths against each other. Binding errors
//! (`UnknownColumn`, `AmbiguousColumn`, …) discovered at compile time
//! are *not* raised immediately — the interpreter only reports them
//! when a row actually reaches the expression, so a pushdown-emptied
//! scan must still succeed. They become [`CExpr::Fail`] poison nodes
//! that reproduce the error if (and only if) evaluation touches them,
//! preserving short-circuit semantics such as `FALSE AND nope = 1`.

use crate::error::{EngineError, Result};
use crate::eval::{self, truth_ref, EvalContext, Scope};
use crate::exec::{finish_aggregate, ExecRow};
use crate::result::ResultSet;
use crate::value::Value;
use sb_sql::{AggArg, AggFunc, BinaryOp, Expr, Query, Select, SelectItem, UnaryOp};
use std::cell::RefCell;
use std::ops::Deref;
use std::rc::Rc;

/// A value produced by compiled evaluation: either a borrow into the row
/// (column slots) or into the program (constants), or a computed value.
/// Dereferences to [`Value`] so comparisons never clone.
pub(crate) enum CV<'a> {
    /// Borrowed from the row or the program.
    Ref(&'a Value),
    /// Computed during evaluation.
    Owned(Value),
}

impl Deref for CV<'_> {
    type Target = Value;

    fn deref(&self) -> &Value {
        match self {
            CV::Ref(v) => v,
            CV::Owned(v) => v,
        }
    }
}

impl CV<'_> {
    /// Take ownership, cloning only when the value was borrowed.
    pub(crate) fn into_value(self) -> Value {
        match self {
            CV::Ref(v) => v.clone(),
            CV::Owned(v) => v,
        }
    }
}

/// A compiled subquery: executed through the statement-level memo on
/// first evaluation, then pinned locally so later rows skip even the
/// memo's SQL-text key construction.
pub(crate) struct SubPlan<'q> {
    query: &'q Query,
    cache: RefCell<Option<Rc<ResultSet>>>,
}

impl<'q> SubPlan<'q> {
    fn new(query: &'q Query) -> Self {
        SubPlan {
            query,
            cache: RefCell::new(None),
        }
    }

    fn run(&self, ctx: &EvalContext) -> Result<Rc<ResultSet>> {
        if let Some(rs) = &*self.cache.borrow() {
            return Ok(Rc::clone(rs));
        }
        if sb_obs::enabled() {
            sb_obs::count("engine.compile.subquery_exec", 1);
        }
        let rs = ctx.subquery(self.query)?;
        *self.cache.borrow_mut() = Some(Rc::clone(&rs));
        Ok(rs)
    }
}

/// A compiled scalar expression. Mirrors [`Expr`] shape for shared
/// machinery, but with names resolved, constants folded, and binding
/// errors reified as poison nodes.
pub(crate) enum CExpr<'q> {
    /// Column resolved to an index into the concatenated row.
    Slot(usize),
    /// A literal, or a folded constant subtree.
    Const(Value),
    /// A poison node: raises its error when evaluated, exactly where the
    /// interpreter would raise it row-side.
    Fail(EngineError),
    /// Unary operator.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand program.
        expr: Box<CExpr<'q>>,
    },
    /// Three-valued AND/OR with interpreter-identical short-circuiting.
    Logical {
        /// `And` or `Or`.
        op: BinaryOp,
        /// Left operand program.
        left: Box<CExpr<'q>>,
        /// Right operand program.
        right: Box<CExpr<'q>>,
    },
    /// Arithmetic operator.
    Arith {
        /// Operator.
        op: BinaryOp,
        /// Left operand program.
        left: Box<CExpr<'q>>,
        /// Right operand program.
        right: Box<CExpr<'q>>,
    },
    /// Comparison operator.
    Cmp {
        /// Operator.
        op: BinaryOp,
        /// Left operand program.
        left: Box<CExpr<'q>>,
        /// Right operand program.
        right: Box<CExpr<'q>>,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested program.
        expr: Box<CExpr<'q>>,
        /// Whether `NOT` was specified.
        negated: bool,
        /// Lower bound program.
        low: Box<CExpr<'q>>,
        /// Upper bound program.
        high: Box<CExpr<'q>>,
    },
    /// `expr [NOT] IN (e1, e2, …)`.
    InList {
        /// Tested program.
        expr: Box<CExpr<'q>>,
        /// Whether `NOT` was specified.
        negated: bool,
        /// Candidate programs.
        list: Vec<CExpr<'q>>,
    },
    /// `expr [NOT] IN (SELECT …)`.
    InSubquery {
        /// Tested program.
        expr: Box<CExpr<'q>>,
        /// Whether `NOT` was specified.
        negated: bool,
        /// Candidate subquery.
        sub: SubPlan<'q>,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// Tested program.
        expr: Box<CExpr<'q>>,
        /// Whether `NOT` was specified.
        negated: bool,
        /// Pattern program.
        pattern: Box<CExpr<'q>>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested program.
        expr: Box<CExpr<'q>>,
        /// Whether `NOT` was specified.
        negated: bool,
    },
    /// Scalar subquery.
    Subquery(SubPlan<'q>),
    /// `[NOT] EXISTS (SELECT …)`.
    Exists {
        /// Whether `NOT` was specified.
        negated: bool,
        /// Probed subquery.
        sub: SubPlan<'q>,
    },
}

/// Lower `expr` against `scope`. Never fails: binding errors become
/// [`CExpr::Fail`] poison nodes so zero-row inputs keep succeeding the
/// way the interpreter does.
pub(crate) fn compile<'q>(expr: &'q Expr, scope: &Scope, ctx: &EvalContext) -> CExpr<'q> {
    let node = match expr {
        Expr::Column(c) => match scope.resolve(c) {
            Ok(i) => CExpr::Slot(i),
            Err(e) => CExpr::Fail(e),
        },
        Expr::Literal(l) => CExpr::Const(eval::literal_value(l)),
        Expr::Unary { op, expr } => CExpr::Unary {
            op: *op,
            expr: Box::new(compile(expr, scope, ctx)),
        },
        Expr::Binary { left, op, right } => {
            let left = Box::new(compile(left, scope, ctx));
            let right = Box::new(compile(right, scope, ctx));
            if matches!(op, BinaryOp::And | BinaryOp::Or) {
                CExpr::Logical {
                    op: *op,
                    left,
                    right,
                }
            } else if op.is_arithmetic() {
                CExpr::Arith {
                    op: *op,
                    left,
                    right,
                }
            } else {
                CExpr::Cmp {
                    op: *op,
                    left,
                    right,
                }
            }
        }
        Expr::Agg { .. } => CExpr::Fail(EngineError::Unsupported(
            "aggregate function outside GROUP BY context".into(),
        )),
        Expr::Between {
            expr,
            negated,
            low,
            high,
        } => CExpr::Between {
            expr: Box::new(compile(expr, scope, ctx)),
            negated: *negated,
            low: Box::new(compile(low, scope, ctx)),
            high: Box::new(compile(high, scope, ctx)),
        },
        Expr::InList {
            expr,
            negated,
            list,
        } => CExpr::InList {
            expr: Box::new(compile(expr, scope, ctx)),
            negated: *negated,
            list: list.iter().map(|e| compile(e, scope, ctx)).collect(),
        },
        Expr::InSubquery {
            expr,
            negated,
            subquery,
        } => CExpr::InSubquery {
            expr: Box::new(compile(expr, scope, ctx)),
            negated: *negated,
            sub: SubPlan::new(subquery),
        },
        Expr::Like {
            expr,
            negated,
            pattern,
        } => CExpr::Like {
            expr: Box::new(compile(expr, scope, ctx)),
            negated: *negated,
            pattern: Box::new(compile(pattern, scope, ctx)),
        },
        Expr::IsNull { expr, negated } => CExpr::IsNull {
            expr: Box::new(compile(expr, scope, ctx)),
            negated: *negated,
        },
        Expr::Subquery(q) => CExpr::Subquery(SubPlan::new(q)),
        Expr::Exists { negated, subquery } => CExpr::Exists {
            negated: *negated,
            sub: SubPlan::new(subquery),
        },
    };
    maybe_fold(node, ctx)
}

/// Fold a node whose children are all constants. Evaluation errors fold
/// to poison, not to an immediate failure: `1 + 'x'` only errors when a
/// row reaches it, same as the interpreter.
fn maybe_fold<'q>(node: CExpr<'q>, ctx: &EvalContext) -> CExpr<'q> {
    if !node.foldable() {
        return node;
    }
    match node.eval(&[], ctx) {
        Ok(v) => CExpr::Const(v.into_value()),
        Err(e) => CExpr::Fail(e),
    }
}

impl<'q> CExpr<'q> {
    fn is_const(&self) -> bool {
        matches!(self, CExpr::Const(_))
    }

    /// Whether the node can be evaluated now, once, instead of per row.
    /// Children were already folded bottom-up, so "all children are
    /// `Const`" is the full recursive condition. Subquery nodes never
    /// fold: their execution order against the statement memo must match
    /// the interpreter's.
    fn foldable(&self) -> bool {
        match self {
            CExpr::Slot(_)
            | CExpr::Const(_)
            | CExpr::Fail(_)
            | CExpr::InSubquery { .. }
            | CExpr::Subquery(_)
            | CExpr::Exists { .. } => false,
            CExpr::Unary { expr, .. } | CExpr::IsNull { expr, .. } => expr.is_const(),
            CExpr::Logical { left, right, .. }
            | CExpr::Arith { left, right, .. }
            | CExpr::Cmp { left, right, .. } => left.is_const() && right.is_const(),
            CExpr::Between {
                expr, low, high, ..
            } => expr.is_const() && low.is_const() && high.is_const(),
            CExpr::InList { expr, list, .. } => expr.is_const() && list.iter().all(CExpr::is_const),
            CExpr::Like { expr, pattern, .. } => expr.is_const() && pattern.is_const(),
        }
    }

    /// Borrow a leaf node's value without going through the recursive
    /// evaluator: slots and constants cannot fail and need no context.
    /// The hot comparison/arithmetic arms use this to skip a call frame
    /// and a `Result<CV>` round-trip per operand — the dominant per-row
    /// cost for typical `col OP literal` predicates.
    #[inline(always)]
    fn leaf<'a>(&'a self, row: &'a [Value]) -> Option<&'a Value> {
        match self {
            CExpr::Slot(i) => Some(&row[*i]),
            CExpr::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Evaluate against one row. Semantically identical to
    /// [`eval::eval`] on the source expression, including error text,
    /// error order, and three-valued logic.
    pub(crate) fn eval<'a>(&'a self, row: &'a [Value], ctx: &EvalContext) -> Result<CV<'a>> {
        match self {
            CExpr::Slot(i) => Ok(CV::Ref(&row[*i])),
            CExpr::Const(v) => Ok(CV::Ref(v)),
            CExpr::Fail(e) => Err(e.clone()),
            CExpr::Unary { op, expr } => Ok(CV::Owned(eval::apply_unary(
                *op,
                expr.eval(row, ctx)?.into_value(),
            )?)),
            CExpr::Logical { op, left, right } => {
                let lv = left.eval(row, ctx)?;
                let l = truth_ref(&lv)?;
                // Short-circuit where three-valued logic allows it — the
                // right side must stay untouched (it may be poison).
                match (op, l) {
                    (BinaryOp::And, Some(false)) => return Ok(CV::Owned(Value::Bool(false))),
                    (BinaryOp::Or, Some(true)) => return Ok(CV::Owned(Value::Bool(true))),
                    _ => {}
                }
                let rv = right.eval(row, ctx)?;
                let r = truth_ref(&rv)?;
                Ok(CV::Owned(match eval::combine_logical(*op, l, r) {
                    Some(b) => Value::Bool(b),
                    None => Value::Null,
                }))
            }
            CExpr::Arith { op, left, right } => {
                if let (Some(l), Some(r)) = (left.leaf(row), right.leaf(row)) {
                    return Ok(CV::Owned(eval::arith(*op, l, r)?));
                }
                let l = left.eval(row, ctx)?;
                let r = right.eval(row, ctx)?;
                Ok(CV::Owned(eval::arith(*op, &l, &r)?))
            }
            CExpr::Cmp { op, left, right } => {
                if let (Some(l), Some(r)) = (left.leaf(row), right.leaf(row)) {
                    return Ok(CV::Owned(eval::apply_cmp(*op, l, r)?));
                }
                let l = left.eval(row, ctx)?;
                let r = right.eval(row, ctx)?;
                Ok(CV::Owned(eval::apply_cmp(*op, &l, &r)?))
            }
            CExpr::Between {
                expr,
                negated,
                low,
                high,
            } => {
                let v = expr.eval(row, ctx)?;
                let lo = low.eval(row, ctx)?;
                let hi = high.eval(row, ctx)?;
                let ge = v.compare(&lo).map(|o| o.is_ge());
                let le = v.compare(&hi).map(|o| o.is_le());
                let within = match (ge, le) {
                    (Some(a), Some(b)) => Some(a && b),
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    _ => None,
                };
                Ok(CV::Owned(match within {
                    Some(b) => Value::Bool(b != *negated),
                    None => Value::Null,
                }))
            }
            CExpr::InList {
                expr,
                negated,
                list,
            } => {
                let v = expr.eval(row, ctx)?;
                let mut saw_null = v.is_null();
                let mut found = false;
                for item in list {
                    let iv = item.eval(row, ctx)?;
                    match v.sql_eq(&iv) {
                        Some(true) => {
                            found = true;
                            break;
                        }
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                Ok(CV::Owned(in_result(found, saw_null, *negated)))
            }
            CExpr::InSubquery { expr, negated, sub } => {
                let v = expr.eval(row, ctx)?;
                let rs = sub.run(ctx)?;
                if rs.columns.len() != 1 {
                    return Err(EngineError::CardinalityViolation(format!(
                        "IN subquery returns {} columns",
                        rs.columns.len()
                    )));
                }
                let mut saw_null = v.is_null();
                let mut found = false;
                for r in &rs.rows {
                    match v.sql_eq(&r[0]) {
                        Some(true) => {
                            found = true;
                            break;
                        }
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                Ok(CV::Owned(in_result(found, saw_null, *negated)))
            }
            CExpr::Like {
                expr,
                negated,
                pattern,
            } => {
                let v = expr.eval(row, ctx)?;
                let p = pattern.eval(row, ctx)?;
                match (&*v, &*p) {
                    (Value::Null, _) | (_, Value::Null) => Ok(CV::Owned(Value::Null)),
                    (Value::Text(s), Value::Text(pat)) => {
                        Ok(CV::Owned(Value::Bool(eval::like_match(s, pat) != *negated)))
                    }
                    (a, b) => Err(EngineError::TypeMismatch(format!(
                        "LIKE requires text operands, got {a} and {b}"
                    ))),
                }
            }
            CExpr::IsNull { expr, negated } => {
                let v = expr.eval(row, ctx)?;
                Ok(CV::Owned(Value::Bool(v.is_null() != *negated)))
            }
            CExpr::Subquery(sub) => {
                let rs = sub.run(ctx)?;
                if rs.columns.len() != 1 {
                    return Err(EngineError::CardinalityViolation(format!(
                        "scalar subquery returns {} columns",
                        rs.columns.len()
                    )));
                }
                match rs.rows.len() {
                    0 => Ok(CV::Owned(Value::Null)),
                    1 => Ok(CV::Owned(rs.rows[0][0].clone())),
                    n => Err(EngineError::CardinalityViolation(format!(
                        "scalar subquery returns {n} rows"
                    ))),
                }
            }
            CExpr::Exists { negated, sub } => {
                let rs = sub.run(ctx)?;
                Ok(CV::Owned(Value::Bool(rs.rows.is_empty() == *negated)))
            }
        }
    }

    /// Evaluate as a filter predicate: NULL counts as not-true.
    ///
    /// The `Cmp` and `Const` arms are unrolled here: a comparison yields
    /// only `Bool` or `Null` (see [`eval::apply_cmp`]), so its truth is
    /// `Bool(true)` exactly, with no error case — skipping the generic
    /// `CV` + [`truth_ref`] round-trip on the per-row hot path.
    #[inline]
    pub(crate) fn eval_filter(&self, row: &[Value], ctx: &EvalContext) -> Result<bool> {
        match self {
            CExpr::Const(v) => Ok(truth_ref(v)?.unwrap_or(false)),
            CExpr::Cmp { op, left, right } => {
                if let (Some(l), Some(r)) = (left.leaf(row), right.leaf(row)) {
                    return Ok(matches!(eval::apply_cmp(*op, l, r)?, Value::Bool(true)));
                }
                let l = left.eval(row, ctx)?;
                let r = right.eval(row, ctx)?;
                Ok(matches!(eval::apply_cmp(*op, &l, &r)?, Value::Bool(true)))
            }
            _ => {
                let v = self.eval(row, ctx)?;
                Ok(truth_ref(&v)?.unwrap_or(false))
            }
        }
    }
}

fn in_result(found: bool, saw_null: bool, negated: bool) -> Value {
    if found {
        Value::Bool(!negated)
    } else if saw_null {
        Value::Null
    } else {
        Value::Bool(negated)
    }
}

/// Argument of a compiled aggregate call.
pub(crate) enum GArg<'q> {
    /// `COUNT(*)`.
    Star,
    /// A compiled expression argument.
    Expr(CExpr<'q>),
}

/// A compiled group-context expression, mirroring the interpreter's
/// `eval_grouped` recursion: aggregates consume the group, `Binary`/
/// `Unary` combine grouped results, anything else evaluates on the
/// group's first row (NULL on an empty implicit group).
pub(crate) enum GExpr<'q> {
    /// Aggregate call over the group's rows.
    Agg {
        /// Aggregate function.
        func: AggFunc,
        /// Whether `DISTINCT` was specified inside the call.
        distinct: bool,
        /// Argument program.
        arg: GArg<'q>,
    },
    /// Binary combination of grouped operands (evaluated eagerly, like
    /// the interpreter, even for AND/OR).
    Binary {
        /// Left operand program.
        left: Box<GExpr<'q>>,
        /// Operator.
        op: BinaryOp,
        /// Right operand program.
        right: Box<GExpr<'q>>,
    },
    /// Unary operator over a grouped operand.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand program.
        expr: Box<GExpr<'q>>,
    },
    /// Evaluated on the group's first row.
    Scalar(CExpr<'q>),
}

/// Lower a group-context expression. Like [`compile`], never fails.
pub(crate) fn compile_grouped<'q>(expr: &'q Expr, scope: &Scope, ctx: &EvalContext) -> GExpr<'q> {
    match expr {
        Expr::Agg {
            func,
            distinct,
            arg,
        } => GExpr::Agg {
            func: *func,
            distinct: *distinct,
            arg: match arg {
                AggArg::Star => GArg::Star,
                AggArg::Expr(e) => GArg::Expr(compile(e, scope, ctx)),
            },
        },
        Expr::Binary { left, op, right } => GExpr::Binary {
            left: Box::new(compile_grouped(left, scope, ctx)),
            op: *op,
            right: Box::new(compile_grouped(right, scope, ctx)),
        },
        Expr::Unary { op, expr } => GExpr::Unary {
            op: *op,
            expr: Box::new(compile_grouped(expr, scope, ctx)),
        },
        other => GExpr::Scalar(compile(other, scope, ctx)),
    }
}

impl<'q> GExpr<'q> {
    /// Evaluate over one group of rows.
    pub(crate) fn eval(&self, group: &[ExecRow], ctx: &EvalContext) -> Result<Value> {
        match self {
            GExpr::Agg {
                func,
                distinct,
                arg,
            } => fold_group_aggregate(*func, *distinct, arg, group, ctx),
            GExpr::Binary { left, op, right } => {
                // Both sides evaluate eagerly — the interpreter computes
                // grouped operands before any logical short-circuiting.
                let l = left.eval(group, ctx)?;
                let r = right.eval(group, ctx)?;
                if matches!(op, BinaryOp::And | BinaryOp::Or) {
                    let lt = truth_ref(&l)?;
                    match (op, lt) {
                        (BinaryOp::And, Some(false)) => return Ok(Value::Bool(false)),
                        (BinaryOp::Or, Some(true)) => return Ok(Value::Bool(true)),
                        _ => {}
                    }
                    let rt = truth_ref(&r)?;
                    return Ok(match eval::combine_logical(*op, lt, rt) {
                        Some(b) => Value::Bool(b),
                        None => Value::Null,
                    });
                }
                if op.is_arithmetic() {
                    eval::arith(*op, &l, &r)
                } else {
                    eval::apply_cmp(*op, &l, &r)
                }
            }
            GExpr::Unary { op, expr } => eval::apply_unary(*op, expr.eval(group, ctx)?),
            GExpr::Scalar(c) => match group.first() {
                Some(row) => Ok(c.eval(row, ctx)?.into_value()),
                // Empty implicit group: non-aggregate expressions are NULL.
                None => Ok(Value::Null),
            },
        }
    }
}

fn fold_group_aggregate(
    func: AggFunc,
    distinct: bool,
    arg: &GArg,
    group: &[ExecRow],
    ctx: &EvalContext,
) -> Result<Value> {
    // COUNT(*) counts rows including NULLs.
    if matches!((func, arg), (AggFunc::Count, GArg::Star)) {
        return Ok(Value::Int(group.len() as i64));
    }
    let GArg::Expr(e) = arg else {
        return Err(EngineError::Unsupported(format!(
            "{}(*) is only valid for COUNT",
            func.as_str()
        )));
    };
    let mut values = Vec::with_capacity(group.len());
    for row in group {
        let v = e.eval(row, ctx)?;
        if !v.is_null() {
            values.push(v.into_value());
        }
    }
    if distinct {
        crate::key::dedup_values(&mut values);
    }
    finish_aggregate(func, values)
}

/// A compiled ORDER BY key for the non-grouped path. The interpreter's
/// alias fallback (a bare column that fails to resolve may name a
/// projection alias) is decided once at compile time; the expression's
/// display text is precomputed so the interpreter's error-rewrapping
/// (`UnknownColumn(expr.to_string())`) costs nothing per row.
pub(crate) enum OrderProg<'q> {
    /// Evaluate the program against the input row.
    Expr {
        /// The compiled key expression.
        prog: CExpr<'q>,
        /// `expr.to_string()`, for `UnknownColumn` rewrapping.
        display: String,
    },
    /// Read column `i` of the already-projected output row.
    Projected(usize),
}

/// Lower an ORDER BY key, resolving the projection-alias fallback.
pub(crate) fn compile_order_key<'q>(
    expr: &'q Expr,
    scope: &Scope,
    ctx: &EvalContext,
    select: &Select,
) -> OrderProg<'q> {
    let prog = compile(expr, scope, ctx);
    if let CExpr::Fail(EngineError::UnknownColumn(_)) = &prog {
        if let Expr::Column(c) = expr {
            if c.table.is_none() {
                for (i, item) in select.projections.iter().enumerate() {
                    if let SelectItem::Expr { alias: Some(a), .. } = item {
                        if a.eq_ignore_ascii_case(&c.column) {
                            return OrderProg::Projected(i);
                        }
                    }
                }
            }
        }
    }
    OrderProg::Expr {
        prog,
        display: expr.to_string(),
    }
}

impl OrderProg<'_> {
    /// Evaluate the key for one row, given that row's projected output.
    pub(crate) fn eval(
        &self,
        row: &[Value],
        projected: &[Value],
        ctx: &EvalContext,
    ) -> Result<Value> {
        match self {
            OrderProg::Projected(i) => Ok(projected[*i].clone()),
            OrderProg::Expr { prog, display } => match prog.eval(row, ctx) {
                Ok(v) => Ok(v.into_value()),
                // Any unknown-column error — including one surfacing from
                // a subquery at runtime — is reported under the ORDER BY
                // expression's own text, exactly like the interpreter.
                Err(EngineError::UnknownColumn(_)) => {
                    Err(EngineError::UnknownColumn(display.clone()))
                }
                Err(e) => Err(e),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use sb_schema::{Column, ColumnType, Schema, TableDef};
    use sb_sql::Literal;

    fn db() -> Database {
        let schema = Schema::new("t").with_table(TableDef::new(
            "r",
            vec![
                Column::pk("id", ColumnType::Int),
                Column::new("name", ColumnType::Text),
            ],
        ));
        Database::new(schema)
    }

    #[test]
    fn constant_subtrees_fold_to_const() {
        let db = db();
        let ctx = EvalContext::new(&db);
        let scope = Scope::default();
        // 1 + 2 < 5  →  Const(true)
        let expr = Expr::binary(
            Expr::binary(Expr::int(1), BinaryOp::Add, Expr::int(2)),
            BinaryOp::Lt,
            Expr::int(5),
        );
        let prog = compile(&expr, &scope, &ctx);
        assert!(matches!(&prog, CExpr::Const(Value::Bool(true))));
    }

    #[test]
    fn folded_type_errors_become_poison_not_immediate_failures() {
        let db = db();
        let ctx = EvalContext::new(&db);
        let scope = Scope::default();
        // 1 + 'x' folds to a poison node; compiling must not error.
        let expr = Expr::binary(
            Expr::int(1),
            BinaryOp::Add,
            Expr::Literal(Literal::Str("x".into())),
        );
        let prog = compile(&expr, &scope, &ctx);
        assert!(matches!(&prog, CExpr::Fail(EngineError::TypeMismatch(_))));
        assert!(matches!(
            prog.eval(&[], &ctx),
            Err(EngineError::TypeMismatch(_))
        ));
    }

    #[test]
    fn short_circuit_protects_poison_operands() {
        let db = db();
        let ctx = EvalContext::new(&db);
        let mut scope = Scope::default();
        scope.push("r", vec!["id".into(), "name".into()]);
        // id = 0 AND nope = 1: the unknown column only errors when the
        // left side doesn't short-circuit — same as the interpreter.
        let expr = Expr::binary(
            Expr::binary(Expr::col(None, "id"), BinaryOp::Eq, Expr::int(0)),
            BinaryOp::And,
            Expr::binary(Expr::col(None, "nope"), BinaryOp::Eq, Expr::int(1)),
        );
        let prog = compile(&expr, &scope, &ctx);
        let row = [Value::Int(1), Value::Text("a".into())];
        assert_eq!(
            prog.eval(&row, &ctx).unwrap().into_value(),
            Value::Bool(false)
        );
        let row = [Value::Int(0), Value::Text("a".into())];
        assert!(matches!(
            prog.eval(&row, &ctx),
            Err(EngineError::UnknownColumn(_))
        ));
    }

    #[test]
    fn slots_borrow_rows_without_cloning() {
        let db = db();
        let ctx = EvalContext::new(&db);
        let mut scope = Scope::default();
        scope.push("r", vec!["id".into(), "name".into()]);
        let expr = Expr::col(None, "name");
        let prog = compile(&expr, &scope, &ctx);
        let row = [Value::Int(1), Value::Text("deep".into())];
        let v = prog.eval(&row, &ctx).unwrap();
        assert!(matches!(v, CV::Ref(_)), "slot reads must not clone");
        assert_eq!(*v, row[1]);
    }
}
