//! In-memory tables and databases.

use crate::column::ColumnarTable;
use crate::error::{EngineError, Result};
use crate::exec::ExecOptions;
use crate::result::ResultSet;
use crate::value::Value;
use sb_schema::{ColumnType, Schema, TableDef};
use std::sync::{Arc, OnceLock};

/// One stored row. Rows are reference-counted so scans hand out handles
/// instead of deep-copying cell data; cloning a `Row` is a pointer bump.
/// `Arc` (not `Rc`) so shared tables can be scanned from worker threads.
pub type Row = Arc<[Value]>;

/// A row-oriented in-memory table.
///
/// Row storage is the source of truth and what row-at-a-time execution
/// scans. A columnar image ([`ColumnarTable`]) is built lazily on first
/// use by the batch executor and cached until the next mutation; the
/// two views always describe the same rows.
#[derive(Debug, Clone)]
pub struct Table {
    /// The table's definition (name + typed columns).
    pub def: TableDef,
    /// Row data; every row has exactly `def.columns.len()` values.
    pub rows: Vec<Row>,
    /// Lazily built columnar image, invalidated by [`Table::push_row`].
    columnar: OnceLock<Arc<ColumnarTable>>,
}

impl Table {
    /// Create an empty table for a definition.
    pub fn new(def: TableDef) -> Self {
        Table {
            def,
            rows: Vec::new(),
            columnar: OnceLock::new(),
        }
    }

    /// The columnar image of this table, built on first call and shared
    /// afterwards. Returns `None` when the cached image has drifted from
    /// the row storage (possible only through direct `rows` mutation,
    /// which bypasses [`Table::push_row`]'s invalidation) — callers fall
    /// back to the row path.
    pub fn columnar(&self) -> Option<Arc<ColumnarTable>> {
        let ct = self
            .columnar
            .get_or_init(|| Arc::new(ColumnarTable::build(self)));
        (ct.len == self.rows.len()).then(|| Arc::clone(ct))
    }

    /// Append one row, validating arity and (loosely) types: NULL fits any
    /// column, ints are accepted by float columns.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.def.columns.len() {
            return Err(EngineError::TypeMismatch(format!(
                "table `{}` expects {} values, got {}",
                self.def.name,
                self.def.columns.len(),
                row.len()
            )));
        }
        for (v, c) in row.iter().zip(&self.def.columns) {
            let ok = match (v.column_type(), c.ty) {
                (None, _) => true,
                (Some(ColumnType::Int), ColumnType::Float) => true,
                (Some(t), expected) => t == expected,
            };
            if !ok {
                return Err(EngineError::TypeMismatch(format!(
                    "value {v} does not fit column `{}.{}` of type {}",
                    self.def.name, c.name, c.ty
                )));
            }
        }
        self.rows.push(row.into());
        // The cached columnar image (if any) no longer matches.
        self.columnar = OnceLock::new();
        Ok(())
    }

    /// Append many rows, panicking on arity/type errors — intended for the
    /// deterministic generators, whose output is well-formed by
    /// construction.
    pub fn push_rows(&mut self, rows: Vec<Vec<Value>>) {
        for row in rows {
            self.push_row(row).expect("generated row must be valid");
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Values of one column by index.
    pub fn column_values(&self, idx: usize) -> impl Iterator<Item = &Value> {
        self.rows.iter().map(move |r| &r[idx])
    }

    /// Approximate byte footprint of the stored data (used by Table 1).
    pub fn approx_bytes(&self) -> usize {
        let mut total = 0;
        for row in &self.rows {
            for v in row.iter() {
                total += match v {
                    Value::Null => 1,
                    Value::Int(_) => 8,
                    Value::Float(_) => 8,
                    Value::Bool(_) => 1,
                    Value::Text(s) => s.len() + 8,
                };
            }
        }
        total
    }
}

/// A database: a schema plus one [`Table`] of content per schema table.
#[derive(Debug, Clone)]
pub struct Database {
    /// The schema (shape + foreign keys).
    pub schema: Schema,
    tables: Vec<Table>,
}

impl Database {
    /// Create a database with empty tables for every table in the schema.
    pub fn new(schema: Schema) -> Self {
        let tables = schema.tables.iter().cloned().map(Table::new).collect();
        Database { schema, tables }
    }

    /// Look up a table's content by (case-insensitive) name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables
            .iter()
            .find(|t| t.def.name.eq_ignore_ascii_case(name))
    }

    /// Mutable table lookup.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables
            .iter_mut()
            .find(|t| t.def.name.eq_ignore_ascii_case(name))
    }

    /// All tables.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Total row count across tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::len).sum()
    }

    /// Approximate byte footprint across tables.
    pub fn approx_bytes(&self) -> usize {
        self.tables.iter().map(Table::approx_bytes).sum()
    }

    /// Parse and execute a SQL string against this database.
    pub fn run(&self, sql: &str) -> Result<ResultSet> {
        let query = sb_sql::parse(sql)?;
        crate::exec::execute(self, &query)
    }

    /// Execute an already-parsed query.
    pub fn run_query(&self, query: &sb_sql::Query) -> Result<ResultSet> {
        crate::exec::execute(self, query)
    }

    /// Parse and execute with explicit executor options (used by the
    /// benchmarks and the join-equivalence tests).
    pub fn run_with(&self, sql: &str, opts: ExecOptions) -> Result<ResultSet> {
        let query = sb_sql::parse(sql)?;
        crate::exec::execute_with(self, &query, opts)
    }

    /// Execute an already-parsed query with explicit executor options.
    pub fn run_query_with(&self, query: &sb_sql::Query, opts: ExecOptions) -> Result<ResultSet> {
        crate::exec::execute_with(self, query, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_schema::Column;

    fn db() -> Database {
        let schema = Schema::new("t").with_table(TableDef::new(
            "x",
            vec![
                Column::pk("id", ColumnType::Int),
                Column::new("v", ColumnType::Float),
            ],
        ));
        Database::new(schema)
    }

    #[test]
    fn push_row_validates_arity() {
        let mut d = db();
        let t = d.table_mut("x").unwrap();
        assert!(t.push_row(vec![Value::Int(1)]).is_err());
        assert!(t.push_row(vec![Value::Int(1), Value::Float(0.5)]).is_ok());
    }

    #[test]
    fn push_row_validates_types_with_coercions() {
        let mut d = db();
        let t = d.table_mut("x").unwrap();
        // Int into Float column is fine; Text into Int is not.
        assert!(t.push_row(vec![Value::Int(1), Value::Int(2)]).is_ok());
        assert!(t
            .push_row(vec![Value::Text("a".into()), Value::Float(0.0)])
            .is_err());
        // NULL fits anywhere.
        assert!(t.push_row(vec![Value::Null, Value::Null]).is_ok());
    }

    #[test]
    fn bytes_and_rows_accumulate() {
        let mut d = db();
        d.table_mut("x")
            .unwrap()
            .push_rows(vec![vec![Value::Int(1), Value::Float(0.5)]]);
        assert_eq!(d.total_rows(), 1);
        assert!(d.approx_bytes() >= 16);
    }
}
