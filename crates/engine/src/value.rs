//! Runtime values and their SQL comparison/arithmetic semantics.

use sb_schema::ColumnType;
use std::cmp::Ordering;
use std::fmt;

/// A runtime SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Whether this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, when it has one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The logical column type of this value, when not NULL.
    pub fn column_type(&self) -> Option<ColumnType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ColumnType::Int),
            Value::Float(_) => Some(ColumnType::Float),
            Value::Text(_) => Some(ColumnType::Text),
            Value::Bool(_) => Some(ColumnType::Bool),
        }
    }

    /// SQL comparison. Returns `None` when either side is NULL or the types
    /// are incomparable; numeric types compare cross-type via f64.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// SQL equality: NULL never equals anything (returns `None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.compare(other).map(|o| o == Ordering::Equal)
    }

    /// Total ordering for sorting output rows: NULLs sort first, then
    /// booleans, numbers, text. This is the engine's deterministic sort
    /// order, used by ORDER BY and by result-set canonicalization.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Text(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                let x = a.as_f64().expect("numeric");
                let y = b.as_f64().expect("numeric");
                x.total_cmp(&y)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// A canonical key for multiset comparison of result rows. Floats are
    /// rounded to 6 decimal places so that `1.0` (float) and `1` (int)
    /// produced by different but equivalent queries compare equal — the
    /// same tolerance Spider's execution-accuracy checker applies.
    pub fn canonical_key(&self) -> String {
        match self {
            Value::Null => "∅".to_string(),
            Value::Int(v) => format!("n:{:.6}", *v as f64),
            Value::Float(v) => format!("n:{v:.6}"),
            Value::Text(s) => format!("t:{s}"),
            Value::Bool(b) => format!("b:{b}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_type_numeric_comparison() {
        assert_eq!(
            Value::Int(1).compare(&Value::Float(1.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).compare(&Value::Float(1.5)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn text_and_number_incomparable() {
        assert_eq!(Value::Text("a".into()).compare(&Value::Int(1)), None);
    }

    #[test]
    fn total_cmp_is_deterministic_across_types() {
        let mut vals = [
            Value::Text("b".into()),
            Value::Int(2),
            Value::Null,
            Value::Float(1.5),
            Value::Bool(true),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Float(1.5));
        assert_eq!(vals[3], Value::Int(2));
        assert_eq!(vals[4], Value::Text("b".into()));
    }

    #[test]
    fn canonical_key_unifies_int_and_float() {
        assert_eq!(
            Value::Int(3).canonical_key(),
            Value::Float(3.0).canonical_key()
        );
        assert_ne!(
            Value::Int(3).canonical_key(),
            Value::Text("3".into()).canonical_key()
        );
    }
}
