//! Runtime values and their SQL comparison/arithmetic semantics.

use sb_schema::ColumnType;
use std::cmp::Ordering;
use std::fmt;
use std::hash::Hasher;

/// Numeric canonicalization behind every grouping / dedup / multiset key:
/// round to 6 decimal places, the tolerance Spider's execution-accuracy
/// checker applies, so `1` (int) and `1.0` (float) — and any two floats
/// within rounding distance — fall into the same key class.
///
/// Where `|v * 1e6|` exceeds 2^53 the rounded value can no longer be
/// represented any more precisely than `v` itself (adjacent doubles are
/// further than 1e-6 apart), so `v` passes through unchanged. NaN is
/// normalized to one bit pattern so that bit-equality of canonicalized
/// values coincides exactly with equality of [`Value::canonical_key`]
/// strings — the property the executor's hash keys rely on.
pub fn canon_num(v: f64) -> f64 {
    if !v.is_finite() {
        return if v.is_nan() { f64::NAN } else { v };
    }
    let scaled = v * 1e6;
    if scaled.abs() >= 9_007_199_254_740_992.0 {
        return v;
    }
    scaled.round() / 1e6
}

/// Whether an i64 survives a round trip through f64 unchanged. Every
/// integer with |v| ≤ 2^53 does; beyond that only multiples of the local
/// ulp do. The i128 comparison sidesteps the saturating f64→i64 cast,
/// which would falsely report `i64::MAX` (not representable — it rounds
/// up to 2^63) as exact.
#[inline]
fn int_fits_f64(v: i64) -> bool {
    (v as f64) as i128 == v as i128
}

/// Exact ordering of an i64 against a non-NaN f64 — no i64→f64 cast, so
/// integers beyond 2^53 do not collapse onto their float neighbours.
///
/// Any float with |b| ≥ 2^53 is an integer, so after the range clamp the
/// truncation `b as i64` and the fraction `b - t` are both exact.
/// `pub(crate)` so the vectorized comparison kernels share the exact
/// semantics without materializing `Value`s.
#[inline]
pub(crate) fn cmp_int_f64(a: i64, b: f64) -> Ordering {
    const TWO_63: f64 = 9_223_372_036_854_775_808.0; // 2^63, exact as f64
    if b >= TWO_63 {
        return Ordering::Less;
    }
    if b < -TWO_63 {
        return Ordering::Greater;
    }
    let t = b as i64; // |b| < 2^63: truncation toward zero, exact
    match a.cmp(&t) {
        Ordering::Equal => {
            // a == trunc(b): decided by b's fractional part.
            let frac = b - t as f64;
            if frac > 0.0 {
                Ordering::Less
            } else if frac < 0.0 {
                Ordering::Greater
            } else {
                Ordering::Equal
            }
        }
        ord => ord,
    }
}

/// A runtime SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Whether this value is NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, when it has one.
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The logical column type of this value, when not NULL.
    pub fn column_type(&self) -> Option<ColumnType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ColumnType::Int),
            Value::Float(_) => Some(ColumnType::Float),
            Value::Text(_) => Some(ColumnType::Text),
            Value::Bool(_) => Some(ColumnType::Bool),
        }
    }

    /// SQL comparison. Returns `None` when either side is NULL, the types
    /// are incomparable, or a float side is NaN. Numeric comparison is
    /// **exact**: int/int compares as i64, int/float splits the float into
    /// integer and fraction ([`cmp_int_f64`]) instead of casting the i64
    /// to f64, so integers beyond 2^53 never compare equal to nearby
    /// floats (or to each other).
    #[inline]
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (!b.is_nan()).then(|| cmp_int_f64(*a, *b)),
            (Value::Float(a), Value::Int(b)) => {
                (!a.is_nan()).then(|| cmp_int_f64(*b, *a).reverse())
            }
            _ => None,
        }
    }

    /// SQL equality: NULL never equals anything (returns `None`).
    #[inline]
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.compare(other).map(|o| o == Ordering::Equal)
    }

    /// Total ordering for sorting output rows: NULLs sort first, then
    /// booleans, numbers, text. This is the engine's deterministic sort
    /// order, used by ORDER BY and by result-set canonicalization.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Text(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            // Mixed int/float: exact comparison. NaN keeps its
            // `f64::total_cmp` placement (after +inf), and a mathematical
            // tie falls back to `f64::total_cmp` as well (exact, since a
            // tie means the int is representable) so that `-0.0 < 0 = 0.0`
            // stays transitive against the float/float arm.
            (Value::Int(a), Value::Float(b)) => {
                if b.is_nan() {
                    (*a as f64).total_cmp(b)
                } else {
                    match cmp_int_f64(*a, *b) {
                        Ordering::Equal => (*a as f64).total_cmp(b),
                        ord => ord,
                    }
                }
            }
            (Value::Float(a), Value::Int(b)) => {
                if a.is_nan() {
                    a.total_cmp(&(*b as f64))
                } else {
                    match cmp_int_f64(*b, *a).reverse() {
                        Ordering::Equal => a.total_cmp(&(*b as f64)),
                        ord => ord,
                    }
                }
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// A canonical key for multiset comparison of result rows. Numbers are
    /// canonicalized through [`canon_num`] (6-decimal-place rounding) so
    /// that `1.0` (float) and `1` (int) produced by different but
    /// equivalent queries compare equal — the same tolerance Spider's
    /// execution-accuracy checker applies.
    ///
    /// Two values have equal keys **iff** [`Value::key_eq`] holds and
    /// [`Value::hash_key`] feeds identical bytes — the executor's
    /// allocation-free grouping relies on that equivalence, so the three
    /// must only change together.
    /// Integers too large for f64 keep their exact decimal digits under a
    /// distinct `i:` prefix: collapsing them through f64 (the pre-fix
    /// behaviour) merged distinct 19-digit identifiers — SDSS `objid`s —
    /// into one key class. The prefix cannot collide with a float's `n:`
    /// key by construction.
    pub fn canonical_key(&self) -> String {
        match self {
            Value::Null => "∅".to_string(),
            Value::Int(v) if int_fits_f64(*v) => format!("n:{}", canon_num(*v as f64)),
            Value::Int(v) => format!("i:{v}"),
            Value::Float(v) => format!("n:{}", canon_num(*v)),
            Value::Text(s) => format!("t:{s}"),
            Value::Bool(b) => format!("b:{b}"),
        }
    }

    /// Feed this value's canonical identity into a hasher without
    /// allocating. Hashes collide exactly when [`Value::canonical_key`]
    /// strings are equal (modulo ordinary hash collisions, which callers
    /// must resolve with [`Value::key_eq`]).
    #[inline]
    pub fn hash_key<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Int(v) if int_fits_f64(*v) => {
                state.write_u8(1);
                state.write_u64(canon_num(*v as f64).to_bits());
            }
            Value::Int(v) => {
                // `i:` key class: exact integer identity.
                state.write_u8(4);
                state.write_i64(*v);
            }
            Value::Float(v) => {
                state.write_u8(1);
                state.write_u64(canon_num(*v).to_bits());
            }
            Value::Text(s) => {
                state.write_u8(2);
                state.write(s.as_bytes());
                state.write_u8(0xFF);
            }
            Value::Bool(b) => {
                state.write_u8(3);
                state.write_u8(*b as u8);
            }
        }
    }

    /// Canonical-key equality without materializing the key strings:
    /// `a.key_eq(&b)` ⇔ `a.canonical_key() == b.canonical_key()`. This is
    /// a total equivalence (NULL equals NULL here), distinct from SQL
    /// equality — it exists for grouping, DISTINCT and set operations.
    #[inline]
    pub fn key_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Text(a), Value::Text(b)) => a == b,
            // Ints compare exactly (f64-representable ints map injectively
            // into the `n:` class, the rest carry their own `i:` class).
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                int_fits_f64(*a) && canon_num(*a as f64).to_bits() == canon_num(*b).to_bits()
            }
            (Value::Float(a), Value::Float(b)) => {
                canon_num(*a).to_bits() == canon_num(*b).to_bits()
            }
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_type_numeric_comparison() {
        assert_eq!(
            Value::Int(1).compare(&Value::Float(1.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).compare(&Value::Float(1.5)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn text_and_number_incomparable() {
        assert_eq!(Value::Text("a".into()).compare(&Value::Int(1)), None);
    }

    #[test]
    fn total_cmp_is_deterministic_across_types() {
        let mut vals = [
            Value::Text("b".into()),
            Value::Int(2),
            Value::Null,
            Value::Float(1.5),
            Value::Bool(true),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Float(1.5));
        assert_eq!(vals[3], Value::Int(2));
        assert_eq!(vals[4], Value::Text("b".into()));
    }

    #[test]
    fn canonical_key_unifies_int_and_float() {
        assert_eq!(
            Value::Int(3).canonical_key(),
            Value::Float(3.0).canonical_key()
        );
        assert_ne!(
            Value::Int(3).canonical_key(),
            Value::Text("3".into()).canonical_key()
        );
    }

    /// The load-bearing invariant of the allocation-free keys: `key_eq`
    /// and `hash_key` agree with `canonical_key` string equality on every
    /// pairing, including the awkward numeric corners.
    #[test]
    #[allow(clippy::excessive_precision)] // the near-9.3e18 literal documents intent: it rounds to the same f64
    fn key_eq_and_hash_match_canonical_key_equality() {
        use std::hash::{DefaultHasher, Hasher};
        let hash = |v: &Value| {
            let mut h = DefaultHasher::new();
            v.hash_key(&mut h);
            h.finish()
        };
        let values = [
            Value::Null,
            Value::Int(0),
            Value::Int(3),
            Value::Int(-3),
            Value::Float(0.0),
            Value::Float(-0.0),
            Value::Float(3.0),
            Value::Float(3.0000001),
            Value::Float(3.1),
            Value::Float(f64::NAN),
            Value::Float(f64::INFINITY),
            Value::Float(f64::NEG_INFINITY),
            Value::Float(9.3e18),
            Value::Float(9.300000000000001e18),
            Value::Int(9_007_199_254_740_992),     // 2^53: fits f64
            Value::Int(9_007_199_254_740_993),     // 2^53 + 1: does not
            Value::Int(9_007_199_254_740_994),     // 2^53 + 2: fits again
            Value::Float(9_007_199_254_740_992.0), // 2^53 as a float
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Float(9.223372036854776e18), // 2^63: i64::MAX rounds here
            Value::Text("3".into()),
            Value::Text("".into()),
            Value::Bool(true),
            Value::Bool(false),
        ];
        for a in &values {
            for b in &values {
                let by_string = a.canonical_key() == b.canonical_key();
                assert_eq!(
                    a.key_eq(b),
                    by_string,
                    "key_eq disagrees with canonical_key for {a:?} vs {b:?}"
                );
                if by_string {
                    assert_eq!(hash(a), hash(b), "equal keys must hash equal: {a:?} {b:?}");
                }
            }
        }
        // Rounding unifies near-equal floats the way the string keys do.
        assert!(Value::Float(3.0000001).key_eq(&Value::Float(3.0)));
        assert!(!Value::Float(3.1).key_eq(&Value::Float(3.0)));
    }

    /// Regression (cross-type precision): i64 values beyond 2^53 used to
    /// compare through f64, so adjacent 19-digit identifiers — and ints
    /// one ulp away from a float — reported `Equal`.
    #[test]
    fn compare_is_exact_beyond_2_53() {
        const BIG: i64 = 9_007_199_254_740_993; // 2^53 + 1, not an f64
        let as_float = Value::Float(9_007_199_254_740_992.0); // nearest f64
        assert_eq!(
            Value::Int(BIG).compare(&as_float),
            Some(Ordering::Greater),
            "2^53+1 must compare greater than the float 2^53"
        );
        assert_eq!(as_float.compare(&Value::Int(BIG)), Some(Ordering::Less));
        assert_eq!(Value::Int(BIG).sql_eq(&as_float), Some(false));
        // Adjacent big ints are distinct even though they share an f64.
        assert_eq!(
            Value::Int(BIG).compare(&Value::Int(BIG + 1)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(BIG).total_cmp(&Value::Int(BIG + 1)),
            Ordering::Less
        );
        // i64::MAX rounds *up* to 2^63 as a float; exact comparison must
        // still place the int below it.
        let two_63 = Value::Float(9.223372036854776e18);
        assert_eq!(Value::Int(i64::MAX).compare(&two_63), Some(Ordering::Less));
        assert_eq!(
            Value::Int(i64::MIN).compare(&Value::Float(-9.223372036854776e18)),
            Some(Ordering::Equal),
            "-2^63 is exactly representable"
        );
        // Representable cross-type equality still holds exactly.
        assert_eq!(
            Value::Int(9_007_199_254_740_992).sql_eq(&as_float),
            Some(true)
        );
        // Fractions decide ties against the truncated integer part.
        assert_eq!(
            Value::Int(3).compare(&Value::Float(3.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(-3).compare(&Value::Float(-3.5)),
            Some(Ordering::Greater)
        );
        // Infinities and NaN.
        assert_eq!(
            Value::Int(i64::MAX).compare(&Value::Float(f64::INFINITY)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(i64::MIN).compare(&Value::Float(f64::NEG_INFINITY)),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::Int(0).compare(&Value::Float(f64::NAN)), None);
    }

    /// The total order must keep its historical `-0.0 < 0.0` refinement
    /// without breaking transitivity against exact int/float ties.
    #[test]
    fn total_cmp_zero_classes_stay_transitive() {
        let neg0 = Value::Float(-0.0);
        let pos0 = Value::Float(0.0);
        let int0 = Value::Int(0);
        assert_eq!(neg0.total_cmp(&pos0), Ordering::Less);
        assert_eq!(int0.total_cmp(&neg0), Ordering::Greater);
        assert_eq!(int0.total_cmp(&pos0), Ordering::Equal);
        assert_eq!(int0.compare(&neg0), Some(Ordering::Equal), "SQL: -0.0 = 0");
    }

    /// Big integers get their own key class: grouping must not merge
    /// distinct identifiers, while representable ints still unify with
    /// their float doubles.
    #[test]
    fn key_class_of_big_ints_is_exact() {
        const BIG: i64 = 9_007_199_254_740_993;
        assert!(!Value::Int(BIG).key_eq(&Value::Int(BIG + 1)));
        assert_ne!(
            Value::Int(BIG).canonical_key(),
            Value::Int(BIG + 1).canonical_key()
        );
        assert!(!Value::Int(BIG).key_eq(&Value::Float(9_007_199_254_740_992.0)));
        assert!(Value::Int(9_007_199_254_740_992).key_eq(&Value::Float(9_007_199_254_740_992.0)));
    }
}
