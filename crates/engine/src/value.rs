//! Runtime values and their SQL comparison/arithmetic semantics.

use sb_schema::ColumnType;
use std::cmp::Ordering;
use std::fmt;
use std::hash::Hasher;

/// Numeric canonicalization behind every grouping / dedup / multiset key:
/// round to 6 decimal places, the tolerance Spider's execution-accuracy
/// checker applies, so `1` (int) and `1.0` (float) — and any two floats
/// within rounding distance — fall into the same key class.
///
/// Where `|v * 1e6|` exceeds 2^53 the rounded value can no longer be
/// represented any more precisely than `v` itself (adjacent doubles are
/// further than 1e-6 apart), so `v` passes through unchanged. NaN is
/// normalized to one bit pattern so that bit-equality of canonicalized
/// values coincides exactly with equality of [`Value::canonical_key`]
/// strings — the property the executor's hash keys rely on.
pub fn canon_num(v: f64) -> f64 {
    if !v.is_finite() {
        return if v.is_nan() { f64::NAN } else { v };
    }
    let scaled = v * 1e6;
    if scaled.abs() >= 9_007_199_254_740_992.0 {
        return v;
    }
    scaled.round() / 1e6
}

/// A runtime SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Whether this value is NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, when it has one.
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The logical column type of this value, when not NULL.
    pub fn column_type(&self) -> Option<ColumnType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ColumnType::Int),
            Value::Float(_) => Some(ColumnType::Float),
            Value::Text(_) => Some(ColumnType::Text),
            Value::Bool(_) => Some(ColumnType::Bool),
        }
    }

    /// SQL comparison. Returns `None` when either side is NULL or the types
    /// are incomparable; numeric types compare cross-type via f64.
    #[inline]
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// SQL equality: NULL never equals anything (returns `None`).
    #[inline]
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.compare(other).map(|o| o == Ordering::Equal)
    }

    /// Total ordering for sorting output rows: NULLs sort first, then
    /// booleans, numbers, text. This is the engine's deterministic sort
    /// order, used by ORDER BY and by result-set canonicalization.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Text(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                let x = a.as_f64().expect("numeric");
                let y = b.as_f64().expect("numeric");
                x.total_cmp(&y)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// A canonical key for multiset comparison of result rows. Numbers are
    /// canonicalized through [`canon_num`] (6-decimal-place rounding) so
    /// that `1.0` (float) and `1` (int) produced by different but
    /// equivalent queries compare equal — the same tolerance Spider's
    /// execution-accuracy checker applies.
    ///
    /// Two values have equal keys **iff** [`Value::key_eq`] holds and
    /// [`Value::hash_key`] feeds identical bytes — the executor's
    /// allocation-free grouping relies on that equivalence, so the three
    /// must only change together.
    pub fn canonical_key(&self) -> String {
        match self {
            Value::Null => "∅".to_string(),
            Value::Int(v) => format!("n:{}", canon_num(*v as f64)),
            Value::Float(v) => format!("n:{}", canon_num(*v)),
            Value::Text(s) => format!("t:{s}"),
            Value::Bool(b) => format!("b:{b}"),
        }
    }

    /// Feed this value's canonical identity into a hasher without
    /// allocating. Hashes collide exactly when [`Value::canonical_key`]
    /// strings are equal (modulo ordinary hash collisions, which callers
    /// must resolve with [`Value::key_eq`]).
    #[inline]
    pub fn hash_key<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Int(v) => {
                state.write_u8(1);
                state.write_u64(canon_num(*v as f64).to_bits());
            }
            Value::Float(v) => {
                state.write_u8(1);
                state.write_u64(canon_num(*v).to_bits());
            }
            Value::Text(s) => {
                state.write_u8(2);
                state.write(s.as_bytes());
                state.write_u8(0xFF);
            }
            Value::Bool(b) => {
                state.write_u8(3);
                state.write_u8(*b as u8);
            }
        }
    }

    /// Canonical-key equality without materializing the key strings:
    /// `a.key_eq(&b)` ⇔ `a.canonical_key() == b.canonical_key()`. This is
    /// a total equivalence (NULL equals NULL here), distinct from SQL
    /// equality — it exists for grouping, DISTINCT and set operations.
    #[inline]
    pub fn key_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
                let a = self.as_f64().expect("numeric");
                let b = other.as_f64().expect("numeric");
                canon_num(a).to_bits() == canon_num(b).to_bits()
            }
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_type_numeric_comparison() {
        assert_eq!(
            Value::Int(1).compare(&Value::Float(1.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).compare(&Value::Float(1.5)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn text_and_number_incomparable() {
        assert_eq!(Value::Text("a".into()).compare(&Value::Int(1)), None);
    }

    #[test]
    fn total_cmp_is_deterministic_across_types() {
        let mut vals = [
            Value::Text("b".into()),
            Value::Int(2),
            Value::Null,
            Value::Float(1.5),
            Value::Bool(true),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Float(1.5));
        assert_eq!(vals[3], Value::Int(2));
        assert_eq!(vals[4], Value::Text("b".into()));
    }

    #[test]
    fn canonical_key_unifies_int_and_float() {
        assert_eq!(
            Value::Int(3).canonical_key(),
            Value::Float(3.0).canonical_key()
        );
        assert_ne!(
            Value::Int(3).canonical_key(),
            Value::Text("3".into()).canonical_key()
        );
    }

    /// The load-bearing invariant of the allocation-free keys: `key_eq`
    /// and `hash_key` agree with `canonical_key` string equality on every
    /// pairing, including the awkward numeric corners.
    #[test]
    #[allow(clippy::excessive_precision)] // the near-9.3e18 literal documents intent: it rounds to the same f64
    fn key_eq_and_hash_match_canonical_key_equality() {
        use std::hash::{DefaultHasher, Hasher};
        let hash = |v: &Value| {
            let mut h = DefaultHasher::new();
            v.hash_key(&mut h);
            h.finish()
        };
        let values = [
            Value::Null,
            Value::Int(0),
            Value::Int(3),
            Value::Int(-3),
            Value::Float(0.0),
            Value::Float(-0.0),
            Value::Float(3.0),
            Value::Float(3.0000001),
            Value::Float(3.1),
            Value::Float(f64::NAN),
            Value::Float(f64::INFINITY),
            Value::Float(f64::NEG_INFINITY),
            Value::Float(9.3e18),
            Value::Float(9.300000000000001e18),
            Value::Text("3".into()),
            Value::Text("".into()),
            Value::Bool(true),
            Value::Bool(false),
        ];
        for a in &values {
            for b in &values {
                let by_string = a.canonical_key() == b.canonical_key();
                assert_eq!(
                    a.key_eq(b),
                    by_string,
                    "key_eq disagrees with canonical_key for {a:?} vs {b:?}"
                );
                if by_string {
                    assert_eq!(hash(a), hash(b), "equal keys must hash equal: {a:?} {b:?}");
                }
            }
        }
        // Rounding unifies near-equal floats the way the string keys do.
        assert!(Value::Float(3.0000001).key_eq(&Value::Float(3.0)));
        assert!(!Value::Float(3.1).key_eq(&Value::Float(3.0)));
    }
}
