//! EXPLAIN: render the planner's decisions for a statement as an
//! operator tree, without executing the outer query.
//!
//! The tree is built from the exact [`sb_opt::PlannedSelect`] the
//! executor would consume under the same [`ExecOptions`], so the text
//! is a faithful record of pushdown, pruning, join order and build-side
//! choices. Derived tables are materialized (they must be, for the
//! planner's row counts to mean anything) and their subplans nest under
//! the `DerivedScan` operator that consumes them.

use crate::database::Database;
use crate::error::Result;
use crate::eval::Scope;
use crate::exec::{rel_metas, resolve_relation, ExecOptions, ScopeResolver};
use sb_opt::PlanNode;
use sb_sql::{OrderItem, Query, Select, SetExpr, SetOp, TableFactor};

/// Render the execution plan for `query` under `opts` as indented text.
pub fn explain(db: &Database, query: &Query, opts: ExecOptions) -> Result<String> {
    let node = plan_set_expr(db, &query.body, &query.order_by, query.limit, opts)?;
    Ok(sb_opt::render(&node))
}

fn plan_set_expr(
    db: &Database,
    body: &SetExpr,
    order_by: &[OrderItem],
    limit: Option<u64>,
    opts: ExecOptions,
) -> Result<PlanNode> {
    match body {
        SetExpr::Select(select) => plan_select_node(db, select, order_by, limit, opts),
        SetExpr::SetOp {
            op,
            all,
            left,
            right,
        } => {
            let l = plan_set_expr(db, left, &[], None, opts)?;
            let r = plan_set_expr(db, right, &[], None, opts)?;
            let name = match op {
                SetOp::Union => "Union",
                SetOp::Intersect => "Intersect",
                SetOp::Except => "Except",
            };
            let mut node = PlanNode {
                label: format!("{name}{}", if *all { " ALL" } else { "" }),
                children: vec![l, r],
            };
            // Set operations sort and truncate after combining; no
            // top-K fusion on this path (matching the executor).
            if !order_by.is_empty() {
                let keys: Vec<String> = order_by
                    .iter()
                    .map(|o| format!("{}{}", o.expr, if o.desc { " DESC" } else { " ASC" }))
                    .collect();
                node = PlanNode::unary(format!("Sort keys=[{}]", keys.join(", ")), node);
            }
            if let Some(k) = limit {
                node = PlanNode::unary(format!("Limit k={k}"), node);
            }
            Ok(node)
        }
    }
}

fn plan_select_node(
    db: &Database,
    select: &Select,
    order_by: &[OrderItem],
    limit: Option<u64>,
    opts: ExecOptions,
) -> Result<PlanNode> {
    let mut relations = vec![resolve_relation(db, &select.from, opts)?];
    for join in &select.joins {
        relations.push(resolve_relation(db, &join.table, opts)?);
    }

    // Subplans for derived tables, aligned with the relations.
    let mut derived = Vec::with_capacity(relations.len());
    for tr in std::iter::once(&select.from).chain(select.joins.iter().map(|j| &j.table)) {
        derived.push(match &tr.factor {
            TableFactor::Derived(q) => {
                Some(plan_set_expr(db, &q.body, &q.order_by, q.limit, opts)?)
            }
            TableFactor::Table(_) => None,
        });
    }

    let mut full_scope = Scope::default();
    for rel in &relations {
        full_scope.push(&rel.binding, rel.columns.clone());
    }
    let resolver = ScopeResolver(&full_scope);
    let rels = rel_metas(&relations);
    let input = sb_opt::PlanInput {
        select,
        order_by,
        limit,
        rels: &rels,
        opts: opts.opt_options(),
    };
    let planned = sb_opt::plan_select(&input, &resolver);
    Ok(sb_opt::build_plan(&input, &planned, &derived))
}
