//! EXPLAIN: render the planner's decisions for a statement as an
//! operator tree, without executing the outer query.
//!
//! The tree is built from the exact [`sb_opt::PlannedSelect`] the
//! executor would consume under the same [`ExecOptions`], so the text
//! is a faithful record of pushdown, pruning, join order and build-side
//! choices. Derived tables are materialized (they must be, for the
//! planner's row counts to mean anything) and their subplans nest under
//! the `DerivedScan` operator that consumes them.

use crate::database::Database;
use crate::error::Result;
use crate::eval::Scope;
use crate::exec::{rel_metas, resolve_relation, ExecOptions, ScopeResolver};
use sb_obs::{BlockSnapshot, OpSnapshot, ProfileSnapshot, QueryProfile};
use sb_opt::PlanNode;
use sb_sql::{OrderItem, Query, Select, SetExpr, SetOp, TableFactor};

/// Render the execution plan for `query` under `opts` as indented text.
pub fn explain(db: &Database, query: &Query, opts: ExecOptions) -> Result<String> {
    let node = plan_set_expr(db, &query.body, &query.order_by, query.limit, opts)?;
    Ok(sb_opt::render(&node))
}

/// EXPLAIN ANALYZE: execute `query` with a fresh [`QueryProfile`] and
/// render the plan annotated with the recorded operator statistics.
///
/// With `include_timings = false` the rendering is deterministic for a
/// fixed database and options at any worker count: wall-clock times and
/// steal counts (scheduling noise) are omitted, while row counts,
/// selectivities, build/probe sizes and morsel counts — all pure
/// functions of the workload — are kept. The plan-analyzed goldens pin
/// this mode.
pub fn explain_analyze(
    db: &Database,
    query: &Query,
    opts: ExecOptions,
    include_timings: bool,
) -> Result<String> {
    let prof = QueryProfile::new();
    crate::exec::execute_with_profile(db, query, opts, Some(&prof))?;
    explain_with_profile(db, query, opts, &prof, include_timings)
}

/// Render the plan for `query` annotated with an already-recorded
/// profile (no re-execution). `sb-serve` uses this to attach analyzed
/// plans to slow-query log entries from the profile the request already
/// paid for.
pub fn explain_with_profile(
    db: &Database,
    query: &Query,
    opts: ExecOptions,
    prof: &QueryProfile,
    include_timings: bool,
) -> Result<String> {
    let snap = prof.snapshot();
    let mut cursor = 0usize;
    let node = plan_set_expr_analyzed(
        db,
        &query.body,
        &query.order_by,
        query.limit,
        opts,
        &snap,
        &mut cursor,
        include_timings,
    )?;
    Ok(sb_opt::render(&node))
}

fn plan_set_expr(
    db: &Database,
    body: &SetExpr,
    order_by: &[OrderItem],
    limit: Option<u64>,
    opts: ExecOptions,
) -> Result<PlanNode> {
    match body {
        SetExpr::Select(select) => plan_select_node(db, select, order_by, limit, opts),
        SetExpr::SetOp {
            op,
            all,
            left,
            right,
        } => {
            let l = plan_set_expr(db, left, &[], None, opts)?;
            let r = plan_set_expr(db, right, &[], None, opts)?;
            let name = match op {
                SetOp::Union => "Union",
                SetOp::Intersect => "Intersect",
                SetOp::Except => "Except",
            };
            let mut node = PlanNode {
                label: format!("{name}{}", if *all { " ALL" } else { "" }),
                children: vec![l, r],
            };
            // Set operations sort and truncate after combining; no
            // top-K fusion on this path (matching the executor).
            if !order_by.is_empty() {
                let keys: Vec<String> = order_by
                    .iter()
                    .map(|o| format!("{}{}", o.expr, if o.desc { " DESC" } else { " ASC" }))
                    .collect();
                node = PlanNode::unary(format!("Sort keys=[{}]", keys.join(", ")), node);
            }
            if let Some(k) = limit {
                node = PlanNode::unary(format!("Limit k={k}"), node);
            }
            Ok(node)
        }
    }
}

fn plan_select_node(
    db: &Database,
    select: &Select,
    order_by: &[OrderItem],
    limit: Option<u64>,
    opts: ExecOptions,
) -> Result<PlanNode> {
    let mut relations = vec![resolve_relation(db, &select.from, opts, None)?];
    for join in &select.joins {
        relations.push(resolve_relation(db, &join.table, opts, None)?);
    }

    // Subplans for derived tables, aligned with the relations.
    let mut derived = Vec::with_capacity(relations.len());
    for tr in std::iter::once(&select.from).chain(select.joins.iter().map(|j| &j.table)) {
        derived.push(match &tr.factor {
            TableFactor::Derived(q) => {
                Some(plan_set_expr(db, &q.body, &q.order_by, q.limit, opts)?)
            }
            TableFactor::Table(_) => None,
        });
    }

    let mut full_scope = Scope::default();
    for rel in &relations {
        full_scope.push(&rel.binding, rel.columns.clone());
    }
    let resolver = ScopeResolver(&full_scope);
    let rels = rel_metas(&relations);
    let input = sb_opt::PlanInput {
        select,
        order_by,
        limit,
        rels: &rels,
        opts: opts.opt_options(),
    };
    let planned = sb_opt::plan_select(&input, &resolver);
    Ok(sb_opt::build_plan(&input, &planned, &derived))
}

/// Analyzed twin of [`plan_set_expr`]: walks the statement in the exact
/// order the executor reserves profile blocks (top-level select first,
/// derived tables in FROM/JOIN order recursively, set-operation leaves
/// left to right), consuming one block per SELECT via `cursor`.
#[allow(clippy::too_many_arguments)]
fn plan_set_expr_analyzed(
    db: &Database,
    body: &SetExpr,
    order_by: &[OrderItem],
    limit: Option<u64>,
    opts: ExecOptions,
    snap: &ProfileSnapshot,
    cursor: &mut usize,
    timings: bool,
) -> Result<PlanNode> {
    match body {
        SetExpr::Select(select) => {
            plan_select_node_analyzed(db, select, order_by, limit, opts, snap, cursor, timings)
        }
        SetExpr::SetOp {
            op,
            all,
            left,
            right,
        } => {
            let l = plan_set_expr_analyzed(db, left, &[], None, opts, snap, cursor, timings)?;
            let r = plan_set_expr_analyzed(db, right, &[], None, opts, snap, cursor, timings)?;
            let name = match op {
                SetOp::Union => "Union",
                SetOp::Intersect => "Intersect",
                SetOp::Except => "Except",
            };
            // The combining operator and its sort/limit run outside any
            // profile block; their lines stay unannotated.
            let mut node = PlanNode {
                label: format!("{name}{}", if *all { " ALL" } else { "" }),
                children: vec![l, r],
            };
            if !order_by.is_empty() {
                let keys: Vec<String> = order_by
                    .iter()
                    .map(|o| format!("{}{}", o.expr, if o.desc { " DESC" } else { " ASC" }))
                    .collect();
                node = PlanNode::unary(format!("Sort keys=[{}]", keys.join(", ")), node);
            }
            if let Some(k) = limit {
                node = PlanNode::unary(format!("Limit k={k}"), node);
            }
            Ok(node)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn plan_select_node_analyzed(
    db: &Database,
    select: &Select,
    order_by: &[OrderItem],
    limit: Option<u64>,
    opts: ExecOptions,
    snap: &ProfileSnapshot,
    cursor: &mut usize,
    timings: bool,
) -> Result<PlanNode> {
    // This SELECT's block precedes its derived tables' blocks.
    let my_block = *cursor;
    *cursor += 1;

    let mut relations = vec![resolve_relation(db, &select.from, opts, None)?];
    for join in &select.joins {
        relations.push(resolve_relation(db, &join.table, opts, None)?);
    }

    let mut derived = Vec::with_capacity(relations.len());
    for tr in std::iter::once(&select.from).chain(select.joins.iter().map(|j| &j.table)) {
        derived.push(match &tr.factor {
            TableFactor::Derived(q) => Some(plan_set_expr_analyzed(
                db,
                &q.body,
                &q.order_by,
                q.limit,
                opts,
                snap,
                cursor,
                timings,
            )?),
            TableFactor::Table(_) => None,
        });
    }

    let mut full_scope = Scope::default();
    for rel in &relations {
        full_scope.push(&rel.binding, rel.columns.clone());
    }
    let resolver = ScopeResolver(&full_scope);
    let rels = rel_metas(&relations);
    let input = sb_opt::PlanInput {
        select,
        order_by,
        limit,
        rels: &rels,
        opts: opts.opt_options(),
    };
    let planned = sb_opt::plan_select(&input, &resolver);
    Ok(match snap.blocks.get(my_block) {
        Some(block) => {
            let ann = BlockAnnotator { block, timings };
            sb_opt::build_plan_annotated(&input, &planned, &derived, &ann)
        }
        None => sb_opt::build_plan(&input, &planned, &derived),
    })
}

/// [`sb_opt::PlanAnnotator`] over one recorded [`BlockSnapshot`].
struct BlockAnnotator<'s> {
    block: &'s BlockSnapshot,
    timings: bool,
}

impl BlockAnnotator<'_> {
    /// ` (in=A out=B …)` with the optional pieces each operator kind
    /// asks for. Steal counts and wall time appear only under
    /// `timings` — both vary run to run.
    fn fmt(&self, op: &OpSnapshot, sel: bool, extra: &str) -> String {
        let mut s = format!(" (in={} out={}", op.rows_in, op.rows_out);
        if sel {
            if let Some(p) = op.selectivity_pct() {
                s.push_str(&format!(" sel={p}%"));
            }
        }
        s.push_str(extra);
        if op.morsels > 0 {
            s.push_str(&format!(" morsels={}", op.morsels));
            if self.timings {
                s.push_str(&format!(" steals={}", op.steals));
            }
        }
        if self.timings {
            s.push_str(&format!(" time={}us", op.elapsed_ns / 1_000));
        }
        s.push(')');
        s
    }
}

impl sb_opt::PlanAnnotator for BlockAnnotator<'_> {
    fn scan(&self, rel: usize) -> Option<String> {
        let op = self.block.scans.get(rel).copied().flatten()?;
        Some(self.fmt(&op, true, ""))
    }

    fn join(&self, step: usize, _rel: usize) -> Option<String> {
        let op = self.block.joins.get(step).copied().flatten()?;
        let extra = format!(" build={} probe={}", op.build_rows, op.probe_rows);
        Some(self.fmt(&op, false, &extra))
    }

    fn filter(&self) -> Option<String> {
        let op = self.block.filter?;
        Some(self.fmt(&op, true, ""))
    }

    fn aggregate(&self) -> Option<String> {
        let op = self.block.aggregate?;
        let extra = format!(" groups={}", op.build_rows);
        Some(self.fmt(&op, false, &extra))
    }

    fn distinct(&self) -> Option<String> {
        let op = self.block.distinct?;
        Some(self.fmt(&op, true, ""))
    }

    fn order(&self) -> Option<String> {
        let op = self.block.order?;
        Some(self.fmt(&op, false, ""))
    }

    fn root(&self) -> Option<String> {
        let mut s = format!(
            " | actual={}",
            if self.block.columnar {
                "columnar"
            } else {
                "row"
            }
        );
        if let Some(reason) = self.block.fallback {
            s.push_str(&format!(" fallback={reason}"));
        }
        if !self.block.slotted {
            s.push_str(" unslotted");
        }
        Some(s)
    }
}
