//! Allocation-free canonical row keys.
//!
//! Grouping, `DISTINCT`, set operations and `COUNT(DISTINCT …)` all
//! partition rows by the canonical-key equivalence of
//! [`Value::canonical_key`]. Historically each row was keyed by joining
//! those strings — one `String` allocation (plus one per cell) per row.
//! This module replaces the strings with a hash-first scheme: every row
//! hashes its cells via [`Value::hash_key`] (no allocation), buckets are
//! plain `u64 → candidate` maps, and candidates within a bucket are
//! verified with [`Value::key_eq`], so hash collisions can never merge
//! distinct keys.
//!
//! The equivalence relation is *identical* to the string keys' — the
//! reference interpreter still uses the strings, and the differential
//! fuzzer holds the two implementations against each other.

use crate::value::Value;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style multiply-rotate seed (an odd constant derived from π).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast non-cryptographic hasher for hot per-row keying (grouping,
/// dedup, join keys). Every consumer pairs the hash with a full equality
/// check, so hash quality only affects bucket balance, never
/// correctness. SipHash's DoS resistance buys nothing here and costs
/// ~20ns per row.
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Multiplication only propagates bit variation upward, so keys
        // differing in high bits alone (e.g. f64 bit patterns of large
        // power-of-two-strided ids) would collide in the low bits the
        // hash table indexes by. A xor-shift-multiply finalizer folds
        // the high bits back down.
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(SEED);
        h ^ (h >> 29)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = 0u64;
            for &b in rem {
                last = last << 8 | u64::from(b);
            }
            self.add(last ^ bytes.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// Build-hasher alias for maps keyed by values we hash ourselves.
pub(crate) type FxBuild = BuildHasherDefault<FxHasher>;

/// Hash a row (or key tuple) of values under the canonical-key relation.
pub fn hash_values(values: &[Value]) -> u64 {
    let mut h = FxHasher::default();
    for v in values {
        v.hash_key(&mut h);
    }
    h.finish()
}

/// Canonical-key equality of two rows (or key tuples).
pub fn values_key_eq(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.key_eq(y))
}

/// A hash-first identity map over canonical row keys. It stores only
/// `u32` tags; the caller owns the keyed data and supplies an equality
/// closure resolving a tag back to its key, so inserting never clones a
/// row.
#[derive(Default)]
pub struct KeyIndex {
    buckets: HashMap<u64, Vec<u32>, FxBuild>,
}

impl KeyIndex {
    /// An empty index expecting around `cap` distinct keys.
    pub fn with_capacity(cap: usize) -> Self {
        KeyIndex {
            buckets: HashMap::with_capacity_and_hasher(cap, FxBuild::default()),
        }
    }

    /// Look up the tag whose key matches, given the key's hash and an
    /// equality predicate over previously inserted tags.
    pub fn get(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        self.buckets
            .get(&hash)?
            .iter()
            .copied()
            .find(|&tag| eq(tag))
    }

    /// Insert `tag` under `hash` if no existing tag matches `eq`.
    /// Returns the previously present tag, or `None` when `tag` was
    /// inserted (i.e. the key is new).
    pub fn insert(&mut self, hash: u64, tag: u32, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        let bucket = self.buckets.entry(hash).or_default();
        if let Some(&hit) = bucket.iter().find(|&&t| eq(t)) {
            return Some(hit);
        }
        bucket.push(tag);
        None
    }
}

/// Dedup rows in place under the canonical-key relation, keeping first
/// occurrences in order — byte-for-byte the behavior of the old joined
/// string keys, without the per-row allocations.
pub fn dedup_values_rows(rows: &mut Vec<Vec<Value>>) {
    let mut index = KeyIndex::with_capacity(rows.len());
    let mut kept: Vec<Vec<Value>> = Vec::with_capacity(rows.len());
    for row in rows.drain(..) {
        let h = hash_values(&row);
        if index
            .insert(h, kept.len() as u32, |t| {
                values_key_eq(&kept[t as usize], &row)
            })
            .is_none()
        {
            kept.push(row);
        }
    }
    *rows = kept;
}

/// Dedup single values in place under the canonical-key relation,
/// keeping first occurrences in order (aggregate `DISTINCT`).
pub fn dedup_values(values: &mut Vec<Value>) {
    let mut index = KeyIndex::with_capacity(values.len());
    let mut kept: Vec<Value> = Vec::with_capacity(values.len());
    for v in values.drain(..) {
        let h = {
            let mut hasher = FxHasher::default();
            v.hash_key(&mut hasher);
            hasher.finish()
        };
        if index
            .insert(h, kept.len() as u32, |t| kept[t as usize].key_eq(&v))
            .is_none()
        {
            kept.push(v);
        }
    }
    *values = kept;
}

/// A set of rows, used for `INTERSECT` / `EXCEPT` membership probes.
/// Borrows nothing: rows stay with the caller, probes are by reference.
pub struct RowSet<'a> {
    index: KeyIndex,
    rows: &'a [Vec<Value>],
}

impl<'a> RowSet<'a> {
    /// Index every row of `rows`.
    pub fn build(rows: &'a [Vec<Value>]) -> Self {
        let mut index = KeyIndex::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            let h = hash_values(row);
            index.insert(h, i as u32, |t| values_key_eq(&rows[t as usize], row));
        }
        RowSet { index, rows }
    }

    /// Whether a row with this canonical key was indexed.
    pub fn contains(&self, row: &[Value]) -> bool {
        let h = hash_values(row);
        self.index
            .get(h, |t| values_key_eq(&self.rows[t as usize], row))
            .is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_keeps_first_occurrences_in_order() {
        let mut rows = vec![
            vec![Value::Int(1), Value::Text("a".into())],
            vec![Value::Float(1.0), Value::Text("a".into())], // key-equal to row 0
            vec![Value::Int(2), Value::Text("a".into())],
            vec![Value::Null, Value::Null],
            vec![Value::Null, Value::Null],
        ];
        dedup_values_rows(&mut rows);
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1), Value::Text("a".into())],
                vec![Value::Int(2), Value::Text("a".into())],
                vec![Value::Null, Value::Null],
            ]
        );
    }

    #[test]
    fn row_set_membership_uses_canonical_keys() {
        let rows = vec![
            vec![Value::Int(7)],
            vec![Value::Text("x".into())],
            vec![Value::Null],
        ];
        let set = RowSet::build(&rows);
        assert!(set.contains(&[Value::Float(7.0)]));
        assert!(set.contains(&[Value::Null]));
        assert!(!set.contains(&[Value::Int(8)]));
        assert!(!set.contains(&[Value::Text("7".into())]));
    }

    #[test]
    fn key_index_separates_hash_collisions_by_eq() {
        // Force a collision by inserting two distinct keys under the same
        // hash; the index must keep both.
        let mut idx = KeyIndex::default();
        assert_eq!(idx.insert(42, 0, |_| false), None);
        assert_eq!(idx.insert(42, 1, |t| t == 99), None);
        assert_eq!(idx.insert(42, 2, |t| t == 1), Some(1));
    }
}
