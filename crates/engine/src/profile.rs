//! Data profiling: extract a [`DataProfile`] from database content for
//! automatic enhanced-schema inference.

use crate::database::Database;
use crate::key::KeyIndex;
use crate::value::Value;
use sb_schema::{ColumnProfile, DataProfile};
use std::collections::hash_map::DefaultHasher;
use std::hash::Hasher;

/// How many frequent values to retain per column. Value samplers and schema
/// linkers only need a handful of representative literals.
const FREQUENT_VALUES: usize = 24;

/// Hash a non-NULL value under *literal identity* — the equivalence of
/// [`sql_literal`] renderings, which is exact per-type value identity
/// (notably finer than canonical-key rounding: `3` and `3.0` are
/// distinct literals). NaN is normalized to one bit pattern since every
/// NaN renders as the same literal.
fn lit_hash(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    match v {
        Value::Null => h.write_u8(0),
        Value::Int(i) => {
            h.write_u8(1);
            h.write_i64(*i);
        }
        Value::Float(f) => {
            h.write_u8(2);
            let f = if f.is_nan() { f64::NAN } else { *f };
            h.write_u64(f.to_bits());
        }
        Value::Text(s) => {
            h.write_u8(3);
            h.write(s.as_bytes());
        }
        Value::Bool(b) => {
            h.write_u8(4);
            h.write_u8(*b as u8);
        }
    }
    h.finish()
}

/// Literal-identity equality matching [`lit_hash`].
fn lit_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => {
            x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan())
        }
        (Value::Text(x), Value::Text(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        _ => false,
    }
}

/// Profile every column of every table in `db`. Frequencies are counted
/// by hashed value identity and only the retained distinct values are
/// rendered as literals — not one `String` per cell, which dominated
/// profiling cost on the larger size classes.
pub fn profile_database(db: &Database) -> DataProfile {
    let mut profile = DataProfile::new();
    for table in db.tables() {
        profile.set_row_count(&table.def.name, table.len());
        for (idx, col) in table.def.columns.iter().enumerate() {
            let mut count = 0usize;
            let mut index = KeyIndex::default();
            let mut freq: Vec<(&Value, usize)> = Vec::new();
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            let mut saw_numeric = false;
            for v in table.column_values(idx) {
                if v.is_null() {
                    continue;
                }
                count += 1;
                let h = lit_hash(v);
                match index.insert(h, freq.len() as u32, |t| lit_eq(freq[t as usize].0, v)) {
                    Some(t) => freq[t as usize].1 += 1,
                    None => freq.push((v, 1)),
                }
                if let Some(x) = v.as_f64() {
                    saw_numeric = true;
                    min = min.min(x);
                    max = max.max(x);
                }
            }
            let distinct = freq.len();
            let mut by_freq: Vec<(String, usize)> =
                freq.into_iter().map(|(v, n)| (sql_literal(v), n)).collect();
            // Most frequent first; ties broken by value for determinism.
            by_freq.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            by_freq.truncate(FREQUENT_VALUES);
            profile.insert(
                &table.def.name,
                &col.name,
                ColumnProfile {
                    count,
                    distinct,
                    min: saw_numeric.then_some(min),
                    max: saw_numeric.then_some(max),
                    frequent_values: by_freq.into_iter().map(|(v, _)| v).collect(),
                },
            );
        }
    }
    profile
}

/// Render a value as a SQL literal (the form the value sampler splices into
/// generated queries).
pub fn sql_literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            if f.fract() == 0.0 && f.abs() < 1e15 {
                format!("{f:.1}")
            } else {
                format!("{f}")
            }
        }
        Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_schema::{Column, ColumnType, Schema, TableDef};

    #[test]
    fn profiles_counts_distinct_and_ranges() {
        let schema = Schema::new("t").with_table(TableDef::new(
            "x",
            vec![
                Column::new("class", ColumnType::Text),
                Column::new("z", ColumnType::Float),
            ],
        ));
        let mut db = Database::new(schema);
        db.table_mut("x").unwrap().push_rows(vec![
            vec!["GALAXY".into(), 0.5.into()],
            vec!["GALAXY".into(), 1.5.into()],
            vec!["STAR".into(), Value::Null],
        ]);
        let p = profile_database(&db);
        let class = p.column("x", "class").unwrap();
        assert_eq!(class.count, 3);
        assert_eq!(class.distinct, 2);
        assert_eq!(class.frequent_values[0], "'GALAXY'");
        let z = p.column("x", "z").unwrap();
        assert_eq!(z.count, 2);
        assert_eq!(z.min, Some(0.5));
        assert_eq!(z.max, Some(1.5));
        assert_eq!(p.row_count("x"), Some(3));
    }

    #[test]
    fn literals_round_trip_through_parser() {
        for v in [
            Value::Int(42),
            Value::Float(2.22),
            Value::Float(3.0),
            Value::Text("it's".into()),
            Value::Bool(true),
            Value::Null,
        ] {
            let lit = sql_literal(&v);
            let sql = format!("SELECT a FROM t WHERE a = {lit}");
            assert!(sb_sql::parse(&sql).is_ok(), "literal `{lit}` must re-parse");
        }
    }
}
