//! # sb-engine — in-memory relational execution engine
//!
//! Executes the `sb-sql` dialect against in-memory tables. This is the
//! substrate standing in for the paper's Postgres deployment: it powers
//!
//! - the **execution-accuracy** metric of Table 5 (run gold and predicted
//!   SQL, compare result sets),
//! - the **executability filter** of the synthetic-SQL generator (Phase 2),
//! - **data profiling** for automatic enhanced-schema inference.
//!
//! Supported: projections (incl. expressions and aliases), `DISTINCT`,
//! inner/left joins with `ON`, `WHERE` with the full predicate language,
//! grouped aggregation with `HAVING`, `ORDER BY`/`LIMIT`, set operators,
//! and non-correlated subqueries (`IN`, scalar comparison, `EXISTS`,
//! derived tables). Correlated subqueries are rejected with a clear error —
//! the benchmark pipeline never generates them.
//!
//! Semantics follow Postgres where the dialect overlaps: three-valued NULL
//! logic collapsed to "NULL is not TRUE" in filters, aggregates skip NULLs,
//! `COUNT(*)` counts rows, integer division truncates.

pub(crate) mod batch;
pub mod column;
pub(crate) mod compile;
pub mod database;
pub mod error;
pub mod eval;
pub mod exec;
pub mod explain;
pub mod key;
pub mod profile;
pub mod reference;
pub mod result;
pub mod value;

pub use column::{Column, ColumnData, ColumnarTable, DictColumn, NullMask};
pub use database::{Database, Row, Table};
pub use error::{EngineError, Result};
pub use exec::{
    execute, execute_with, execute_with_plan, execute_with_plan_profile, execute_with_profile,
    plan_top_select, ExecOptions, JoinStrategy,
};
pub use explain::{explain, explain_analyze, explain_with_profile};
pub use profile::{profile_database, sql_literal};
pub use reference::execute_reference;
pub use result::ResultSet;
pub use value::Value;

#[cfg(test)]
mod tests {
    use super::*;
    use sb_schema::{Column, ColumnType, Schema, TableDef};

    /// End-to-end smoke test over the paper's Q1/Q2/Q3 running examples.
    #[test]
    fn runs_paper_examples() {
        let schema = Schema::new("sdss")
            .with_table(TableDef::new(
                "specobj",
                vec![
                    Column::pk("specobjid", ColumnType::Int),
                    Column::new("bestobjid", ColumnType::Int),
                    Column::new("class", ColumnType::Text),
                    Column::new("subclass", ColumnType::Text),
                    Column::new("ra", ColumnType::Float),
                    Column::new("dec", ColumnType::Float),
                    Column::new("z", ColumnType::Float),
                ],
            ))
            .with_table(TableDef::new(
                "photoobj",
                vec![
                    Column::pk("objid", ColumnType::Int),
                    Column::new("u", ColumnType::Float),
                    Column::new("r", ColumnType::Float),
                ],
            ));
        let mut db = Database::new(schema);
        db.table_mut("specobj").unwrap().push_rows(vec![
            vec![
                Value::Int(1),
                Value::Int(10),
                Value::Text("GALAXY".into()),
                Value::Text("STARBURST".into()),
                Value::Float(10.0),
                Value::Float(-3.0),
                Value::Float(0.7),
            ],
            vec![
                Value::Int(2),
                Value::Int(20),
                Value::Text("GALAXY".into()),
                Value::Text("AGN".into()),
                Value::Float(11.0),
                Value::Float(4.0),
                Value::Float(1.5),
            ],
            vec![
                Value::Int(3),
                Value::Int(30),
                Value::Text("STAR".into()),
                Value::Text("".into()),
                Value::Float(12.0),
                Value::Float(5.0),
                Value::Float(0.0),
            ],
        ]);
        db.table_mut("photoobj").unwrap().push_rows(vec![
            vec![Value::Int(10), Value::Float(18.0), Value::Float(16.5)],
            vec![Value::Int(20), Value::Float(19.0), Value::Float(15.0)],
        ]);

        // Q1
        let r = db
            .run("SELECT s.specobjid FROM specobj AS s WHERE s.subclass = 'STARBURST'")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(1)]]);

        // Q2
        let r = db
            .run(
                "SELECT s.bestobjid, s.ra, s.dec, s.z FROM specobj AS s \
                 WHERE s.class = 'GALAXY' AND s.z > 0.5 AND s.z < 1",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(10));

        // Q3 (math operators between attributes)
        let r = db
            .run(
                "SELECT p.objid, s.specobjid FROM photoobj AS p \
                 JOIN specobj AS s ON s.bestobjid = p.objid \
                 WHERE s.class = 'GALAXY' AND p.u - p.r < 2.22 AND p.u - p.r > 1",
            )
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(10), Value::Int(1)]]);
    }
}
