//! Engine error taxonomy.

use std::fmt;

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Errors raised while binding or executing a query.
///
/// The variants matter to callers: the generator's executability filter
/// rejects a candidate query on *any* error, while the NL-to-SQL evaluation
/// counts a prediction that fails to parse or bind as simply wrong.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The SQL text failed to parse.
    Parse(String),
    /// A referenced table does not exist.
    UnknownTable(String),
    /// A referenced column does not exist in scope.
    UnknownColumn(String),
    /// An unqualified column name matched more than one table in scope.
    AmbiguousColumn(String),
    /// A value had the wrong type for an operation.
    TypeMismatch(String),
    /// The query used a feature the engine does not support
    /// (e.g. correlated subqueries).
    Unsupported(String),
    /// A scalar subquery returned more than one row/column.
    CardinalityViolation(String),
    /// Integer arithmetic exceeded the i64 range. A defined error in both
    /// the executor and the reference interpreter — never a silent wrap
    /// (release) or panic (debug).
    Overflow(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(m) => write!(f, "parse error: {m}"),
            EngineError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            EngineError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            EngineError::AmbiguousColumn(c) => write!(f, "ambiguous column `{c}`"),
            EngineError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
            EngineError::CardinalityViolation(m) => write!(f, "cardinality violation: {m}"),
            EngineError::Overflow(m) => write!(f, "numeric overflow: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<sb_sql::ParseError> for EngineError {
    fn from(e: sb_sql::ParseError) -> Self {
        EngineError::Parse(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        assert_eq!(
            EngineError::UnknownColumn("s.zz".into()).to_string(),
            "unknown column `s.zz`"
        );
    }

    #[test]
    fn parse_error_converts() {
        let pe = sb_sql::ParseError::new("bad", 3);
        let ee: EngineError = pe.into();
        assert!(matches!(ee, EngineError::Parse(_)));
    }
}
